//! Statistical equivalence of the batched noise sampler and the per-round
//! reference samplers.
//!
//! The stochastic channel draws noise in batches — geometric skip-sampling
//! for shared/one-sided flips, 64-round flip buckets for independent
//! noise — instead of one RNG draw per round. The batched draws consume
//! the seed stream differently, so transcripts are **not** expected to be
//! byte-identical to the old per-round code; what must hold is that the
//! *distribution* of corruptions is unchanged. These tests pin that with
//! fixed seeds (fully deterministic) and generous chi-squared / z-score
//! thresholds, comparing the channel against
//! [`NoiseModel::corrupt_shared`] / [`NoiseModel::corrupt_per_party`],
//! the documented per-round reference samplers.

use beeps_channel::{Channel, Delivery, NoiseModel, StochasticChannel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `rounds` rounds through the batched channel with the given sent-OR
/// pattern and returns, per round, whether the delivery was corrupted.
fn channel_corruptions(
    model: NoiseModel,
    seed: u64,
    rounds: usize,
    or_pattern: impl Fn(usize) -> bool,
) -> Vec<bool> {
    let mut ch = StochasticChannel::new(1, model, seed);
    (0..rounds)
        .map(|r| {
            let or = or_pattern(r);
            match ch.transmit(or) {
                Delivery::Shared(bit) => bit != or,
                Delivery::PerParty(bits) => bits.uniform() != Some(or),
                Delivery::Sparse(sparse) => sparse.uniform() != Some(or),
            }
        })
        .collect()
}

/// Same experiment through the per-round reference sampler.
fn reference_corruptions(
    model: NoiseModel,
    seed: u64,
    rounds: usize,
    or_pattern: impl Fn(usize) -> bool,
) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rounds)
        .map(|r| {
            let or = or_pattern(r);
            model.corrupt_shared(or, &mut rng) != or
        })
        .collect()
}

/// Asserts two Bernoulli-count observations are consistent: the gap must
/// stay within `sigmas` standard deviations of a Binomial(rounds, eps).
fn assert_counts_close(obs_a: usize, obs_b: usize, rounds: usize, eps: f64, sigmas: f64) {
    let sd = (rounds as f64 * eps * (1.0 - eps)).sqrt();
    let diff = (obs_a as f64 - obs_b as f64).abs();
    // Both counts fluctuate, so the difference has variance 2·σ².
    let bound = sigmas * sd * std::f64::consts::SQRT_2;
    assert!(
        diff <= bound,
        "flip counts {obs_a} vs {obs_b} differ by {diff:.0} > {bound:.0} \
         (rounds={rounds}, eps={eps})"
    );
}

/// Chi-squared statistic of observed gap counts against the geometric
/// pmf `P(gap = k) = eps·(1-eps)^k`, binned `0..tail` plus a tail bin.
fn geometric_chi_squared(gaps: &[u64], eps: f64, tail: usize) -> f64 {
    let total = gaps.len() as f64;
    let mut observed = vec![0f64; tail + 1];
    for &g in gaps {
        observed[(g as usize).min(tail)] += 1.0;
    }
    let mut stat = 0.0;
    let mut tail_mass = 1.0;
    for (k, &obs) in observed.iter().enumerate() {
        let p = if k < tail {
            let p = eps * (1.0 - eps).powi(k as i32);
            tail_mass -= p;
            p
        } else {
            tail_mass
        };
        let exp = total * p;
        if exp > 0.0 {
            stat += (obs - exp).powi(2) / exp;
        }
    }
    stat
}

/// Gaps (clean-round runs) between consecutive corruptions.
fn gaps_of(corruptions: &[bool]) -> Vec<u64> {
    let mut gaps = Vec::new();
    let mut run = 0u64;
    for &c in corruptions {
        if c {
            gaps.push(run);
            run = 0;
        } else {
            run += 1;
        }
    }
    gaps
}

const ROUNDS: usize = 40_000;

#[test]
fn correlated_flip_rate_matches_reference() {
    let eps = 0.2;
    let model = NoiseModel::Correlated { epsilon: eps };
    for seed in [1u64, 77, 4242] {
        let batched = channel_corruptions(model, seed, ROUNDS, |r| r % 3 == 0);
        let reference = reference_corruptions(model, seed.wrapping_add(1), ROUNDS, |r| r % 3 == 0);
        let a = batched.iter().filter(|&&c| c).count();
        let b = reference.iter().filter(|&&c| c).count();
        assert_counts_close(a, b, ROUNDS, eps, 5.0);
    }
}

#[test]
fn correlated_gaps_are_geometric() {
    let eps = 0.15;
    let model = NoiseModel::Correlated { epsilon: eps };
    // Every round is eligible under correlated noise, so skip-sampled flip
    // positions must look like iid geometric gaps. Apply the identical
    // chi-squared machinery to the reference sampler as calibration: the
    // batched statistic must not be materially worse.
    let batched = gaps_of(&channel_corruptions(model, 9, ROUNDS, |_| false));
    let reference = gaps_of(&reference_corruptions(model, 10, ROUNDS, |_| false));
    let stat_batched = geometric_chi_squared(&batched, eps, 10);
    let stat_reference = geometric_chi_squared(&reference, eps, 10);
    // df = 10; the 0.001 critical value is 29.6. 40 is deliberately slack
    // because the test must never flake across toolchains.
    assert!(
        stat_batched < 40.0,
        "batched gap chi-squared {stat_batched:.1} (reference ran {stat_reference:.1})"
    );
    assert!(stat_reference < 40.0, "reference sampler miscalibrated");
}

#[test]
fn one_sided_zero_to_one_only_flips_eligible_rounds() {
    let eps = 0.3;
    let model = NoiseModel::OneSidedZeroToOne { epsilon: eps };
    // ORs: true on multiples of 4 — those rounds are ineligible (noise
    // can only create beeps) and must never be corrupted.
    let pattern = |r: usize| r.is_multiple_of(4);
    for seed in [3u64, 51] {
        let batched = channel_corruptions(model, seed, ROUNDS, pattern);
        for (r, &c) in batched.iter().enumerate() {
            assert!(!(pattern(r) && c), "0->1 noise erased a beep at round {r}");
        }
        let eligible = (0..ROUNDS).filter(|&r| !pattern(r)).count();
        let reference = reference_corruptions(model, seed.wrapping_add(9), ROUNDS, pattern);
        let a = batched.iter().filter(|&&c| c).count();
        let b = reference.iter().filter(|&&c| c).count();
        assert_counts_close(a, b, eligible, eps, 5.0);
    }
}

#[test]
fn one_sided_one_to_zero_only_flips_eligible_rounds() {
    let eps = 0.25;
    let model = NoiseModel::OneSidedOneToZero { epsilon: eps };
    // ORs: true except on multiples of 5; silent rounds are ineligible.
    let pattern = |r: usize| !r.is_multiple_of(5);
    for seed in [8u64, 1234] {
        let batched = channel_corruptions(model, seed, ROUNDS, pattern);
        for (r, &c) in batched.iter().enumerate() {
            assert!(
                pattern(r) || !c,
                "1->0 noise fabricated a beep at round {r}"
            );
        }
        let eligible = (0..ROUNDS).filter(|&r| pattern(r)).count();
        let reference = reference_corruptions(model, seed.wrapping_add(9), ROUNDS, pattern);
        let a = batched.iter().filter(|&&c| c).count();
        let b = reference.iter().filter(|&&c| c).count();
        assert_counts_close(a, b, eligible, eps, 5.0);
    }
}

#[test]
fn independent_per_party_flip_rates_match_reference() {
    let n = 32;
    let eps = 0.1;
    let rounds = 20_000;
    let model = NoiseModel::Independent { epsilon: eps };

    let mut ch = StochasticChannel::new(n, model, 21);
    let mut per_party = vec![0usize; n];
    for _ in 0..rounds {
        match ch.transmit(false) {
            Delivery::Shared(bit) => {
                if bit {
                    for c in per_party.iter_mut() {
                        *c += 1;
                    }
                }
            }
            Delivery::PerParty(bits) => {
                for (i, c) in per_party.iter_mut().enumerate() {
                    *c += usize::from(bits.get(i));
                }
            }
            Delivery::Sparse(sparse) => {
                // Sent OR is false, so heard 1s are exactly the flips.
                assert!(!sparse.base());
                for &p in sparse.flips() {
                    per_party[p as usize] += 1;
                }
            }
        }
    }

    // Per-party counts must be Binomial(rounds, eps): chi-squared over the
    // 32 parties. df = 31, 0.001 critical value 61.1; 75 is slack.
    let exp = rounds as f64 * eps;
    let stat: f64 = per_party
        .iter()
        .map(|&c| (c as f64 - exp).powi(2) / (exp * (1.0 - eps)))
        .sum();
    assert!(
        stat < 75.0,
        "per-party chi-squared {stat:.1}, counts {per_party:?}"
    );

    // Aggregate mass vs the per-round reference sampler.
    let mut rng = StdRng::seed_from_u64(22);
    let mut reference = 0usize;
    for _ in 0..rounds {
        reference += model
            .corrupt_per_party(false, n, &mut rng)
            .iter()
            .filter(|&&b| b)
            .count();
    }
    let total: usize = per_party.iter().sum();
    assert_counts_close(total, reference, rounds * n, eps, 5.0);
}

#[test]
fn independent_flips_land_on_every_block_offset() {
    // The flip buckets cover 64 rounds at a time; a refill bug would bias
    // flips toward particular offsets within a block. Chi-squared of flip
    // positions mod 64 against uniform: df = 63, 0.001 critical 103.4.
    let n = 8;
    let eps = 0.1;
    let rounds = 64 * 1024;
    let model = NoiseModel::Independent { epsilon: eps };
    let mut ch = StochasticChannel::new(n, model, 5);
    let mut by_offset = vec![0f64; 64];
    let mut total = 0f64;
    for r in 0..rounds {
        let flips = match ch.transmit(false) {
            // Sent OR is false, so heard 1s are exactly the flips.
            Delivery::PerParty(bits) => bits.count_ones() as f64,
            Delivery::Sparse(sparse) => sparse.flips().len() as f64,
            Delivery::Shared(_) => panic!("independent noise must deliver per party"),
        };
        by_offset[r % 64] += flips;
        total += flips;
    }
    let exp = total / 64.0;
    let stat: f64 = by_offset.iter().map(|&o| (o - exp).powi(2) / exp).sum();
    assert!(stat < 120.0, "block-offset chi-squared {stat:.1}");
}
