//! Property-based tests for the channel substrate: model invariants that
//! must hold for arbitrary beep sequences, not just curated ones.

use beeps_channel::{
    run_noiseless, Channel, CorrectingAdversaryChannel, CorrectionPolicy, Delivery,
    MultiplicationChannel, NoiseModel, Protocol, ReducedTwoSidedChannel, ScriptedChannel,
    StochasticChannel,
};
use proptest::prelude::*;

/// A protocol defined by an explicit per-party beep schedule.
struct Table {
    n: usize,
    t: usize,
}

impl Protocol for Table {
    type Input = Vec<bool>;
    type Output = Vec<bool>;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.t
    }

    fn beep(&self, _party: usize, input: &Vec<bool>, transcript: &[bool]) -> bool {
        input[transcript.len()]
    }

    fn output(&self, _party: usize, _input: &Vec<bool>, transcript: &[bool]) -> Vec<bool> {
        transcript.to_vec()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Noiseless transcript = round-wise OR of the schedules, always.
    #[test]
    fn noiseless_transcript_is_roundwise_or(
        schedules in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 6),
            1..5,
        ),
    ) {
        let n = schedules.len();
        let p = Table { n, t: 6 };
        let exec = run_noiseless(&p, &schedules);
        for m in 0..6 {
            let or = schedules.iter().any(|s| s[m]);
            prop_assert_eq!(exec.transcript()[m], or);
        }
    }

    /// The one-sided 0->1 channel never erases a true 1; the 1->0 channel
    /// never fabricates one — for arbitrary input sequences and seeds.
    #[test]
    fn one_sided_channels_respect_their_direction(
        bits in prop::collection::vec(any::<bool>(), 1..64),
        seed in any::<u64>(),
    ) {
        let mut up = StochasticChannel::new(
            3,
            NoiseModel::OneSidedZeroToOne { epsilon: 0.5 },
            seed,
        );
        let mut down = StochasticChannel::new(
            3,
            NoiseModel::OneSidedOneToZero { epsilon: 0.5 },
            seed,
        );
        for &b in &bits {
            let heard_up = up.transmit(b).shared().unwrap();
            if b {
                prop_assert!(heard_up, "0->1 channel erased a beep");
            }
            let heard_down = down.transmit(b).shared().unwrap();
            if !b {
                prop_assert!(!heard_down, "1->0 channel fabricated a beep");
            }
        }
    }

    /// A scripted channel applies exactly its script.
    #[test]
    fn scripted_channel_applies_script(
        sent in prop::collection::vec(any::<bool>(), 1..32),
        flips in prop::collection::vec(any::<bool>(), 1..32),
    ) {
        let mut ch = ScriptedChannel::new(2, flips.clone());
        for (i, &b) in sent.iter().enumerate() {
            let expect = b ^ flips.get(i).copied().unwrap_or(false);
            prop_assert_eq!(ch.transmit(b).shared(), Some(expect));
        }
        let expected_corrupted = flips
            .iter()
            .take(sent.len())
            .filter(|&&f| f)
            .count();
        prop_assert_eq!(ch.corrupted_rounds(), expected_corrupted);
    }

    /// Per-party deliveries always carry exactly n bits and shared
    /// regimes always produce Shared deliveries.
    #[test]
    fn delivery_shapes(seed in any::<u64>(), n in 1usize..10, or in any::<bool>()) {
        let mut shared = StochasticChannel::new(
            n,
            NoiseModel::Correlated { epsilon: 0.3 },
            seed,
        );
        prop_assert!(matches!(shared.transmit(or), Delivery::Shared(_)));
        let mut indep = StochasticChannel::new(
            n,
            NoiseModel::Independent { epsilon: 0.3 },
            seed,
        );
        match indep.transmit(or) {
            Delivery::PerParty(bits) => prop_assert_eq!(bits.len(), n),
            Delivery::Sparse(sparse) => prop_assert_eq!(sparse.len(), n),
            Delivery::Shared(_) => prop_assert!(false, "independent must be per-party"),
        }
    }

    /// The correcting adversary with the `DownFlips` policy is
    /// trace-equivalent to a one-sided 0->1 channel: beeps always arrive.
    #[test]
    fn adversary_down_policy_protects_beeps(
        bits in prop::collection::vec(any::<bool>(), 1..64),
        seed in any::<u64>(),
    ) {
        let mut ch = CorrectingAdversaryChannel::new(
            2,
            0.45,
            CorrectionPolicy::DownFlips,
            seed,
        );
        for &b in &bits {
            let heard = ch.transmit(b).shared().unwrap();
            if b {
                prop_assert!(heard);
            }
        }
    }

    /// De Morgan: the multiplication channel computes AND noiselessly for
    /// every bit pair sequence.
    #[test]
    fn multiplication_channel_is_and(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..32),
        seed in any::<u64>(),
    ) {
        let mut ch = MultiplicationChannel::noiseless(seed);
        for &(a, b) in &pairs {
            prop_assert_eq!(ch.transmit(a, b), a && b);
        }
    }

    /// Determinism: same seed, same channel behaviour.
    #[test]
    fn channels_are_seed_deterministic(
        bits in prop::collection::vec(any::<bool>(), 1..48),
        seed in any::<u64>(),
    ) {
        let mut a = ReducedTwoSidedChannel::new(2, seed);
        let mut b = ReducedTwoSidedChannel::new(2, seed);
        for &bit in &bits {
            prop_assert_eq!(a.transmit(bit), b.transmit(bit));
        }
    }
}
