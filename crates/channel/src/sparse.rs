//! Sparse channel deliveries: a round's per-party bits as a broadcast
//! base plus a sorted list of flipped parties.
//!
//! Under independent noise at realistic ε, almost every party hears the
//! true OR: a round's delivery is `n` copies of one bit except for a
//! handful of flips. The dense representation ([`crate::BitVec`]) costs
//! `⌈n/64⌉` words per round no matter how few flips occurred — at
//! `n = 10⁶` that is 125 KB per round before a single party reads it.
//! [`SparseDelivery`] stores only the exceptions, so the per-round cost
//! scales with the *flip count* (`≈ εn`), and consumers that iterate
//! parties in order can merge against the sorted flip list with an
//! amortized O(1) cursor instead of a bit lookup.
//!
//! Above [`sparse_crossover`] flips per round the dense form is cheaper
//! (fewer branches, word-level operations), so the stochastic channel
//! falls back to [`crate::Delivery::PerParty`] for heavily corrupted
//! rounds; both forms expand the same skip-sampled flip set, and
//! [`crate::Delivery`]'s semantic equality lets tests pin the two
//! representations against each other with `assert_eq!`.

use crate::bits::BitVec;

/// Flip count per round at which the dense per-party representation
/// overtakes the sparse flip list for `n` parties.
///
/// One word of dense delivery covers 64 parties, so a flip list longer
/// than about `n/16` entries (4 bytes each) outweighs the dense row in
/// memory and loses its branch-prediction advantage; the floor of 4
/// keeps tiny channels (where the dense row is a single word anyway)
/// from bouncing between representations on every flip.
#[inline]
#[must_use]
pub fn sparse_crossover(n: usize) -> usize {
    (n / 16).max(4)
}

/// One round's delivery as `base` (the bit broadcast to everyone) plus
/// the sorted list of parties whose copy was flipped.
///
/// # Examples
///
/// ```
/// use beeps_channel::SparseDelivery;
///
/// let d = SparseDelivery::new(true, 5, vec![1, 3]);
/// assert!(d.heard_by(0) && !d.heard_by(1) && !d.heard_by(3));
/// assert_eq!(d.uniform(), None);
/// assert_eq!(d.flips(), &[1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct SparseDelivery {
    base: bool,
    n: usize,
    flips: Vec<u32>,
}

impl SparseDelivery {
    /// Wraps a flip list over `n` parties: party `p` hears `!base` iff
    /// `p` appears in `flips`, everyone else hears `base`.
    ///
    /// `flips` must be strictly ascending (sorted, no duplicates) with
    /// every entry below `n` — debug-asserted, relied upon by the
    /// cursor-merge consumers and [`SparseDelivery::heard_by`]'s binary
    /// search.
    #[must_use]
    pub fn new(base: bool, n: usize, flips: Vec<u32>) -> Self {
        debug_assert!(
            flips.windows(2).all(|w| w[0] < w[1]),
            "flip list must be strictly ascending"
        );
        debug_assert!(
            flips.last().is_none_or(|&p| (p as usize) < n),
            "flip index out of range for {n} parties"
        );
        Self { base, n, flips }
    }

    /// Number of parties the round was delivered to.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the delivery covers no parties (channels reject `n = 0`,
    /// so this is only reachable for hand-built values).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The bit broadcast to every non-flipped party.
    #[inline]
    #[must_use]
    pub fn base(&self) -> bool {
        self.base
    }

    /// The sorted indices of parties whose copy was flipped.
    #[inline]
    #[must_use]
    pub fn flips(&self) -> &[u32] {
        &self.flips
    }

    /// Whether any party's copy differs from `base`.
    #[inline]
    #[must_use]
    pub fn corrupted(&self) -> bool {
        !self.flips.is_empty()
    }

    /// The bit heard by party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn heard_by(&self, i: usize) -> bool {
        assert!(i < self.n, "party {i} out of range for {} parties", self.n);
        self.base ^ self.flips.binary_search(&(i as u32)).is_ok()
    }

    /// `Some(bit)` if every party heard `bit`, `None` if copies diverge.
    #[inline]
    #[must_use]
    pub fn uniform(&self) -> Option<bool> {
        if self.flips.is_empty() {
            Some(self.base)
        } else if self.flips.len() == self.n {
            Some(!self.base)
        } else {
            None
        }
    }
}

/// Bit-semantic equality: two sparse deliveries are equal iff every
/// party hears the same bit — including the degenerate pair of opposite
/// bases with complementary flip sets.
impl PartialEq for SparseDelivery {
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n {
            return false;
        }
        if self.base == other.base {
            return self.flips == other.flips;
        }
        // Opposite bases agree iff the flip lists partition `0..n`:
        // sizes sum to n and the sorted lists never collide.
        if self.flips.len() + other.flips.len() != self.n {
            return false;
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.flips.len() && j < other.flips.len() {
            match self.flips[i].cmp(&other.flips[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
}

impl Eq for SparseDelivery {}

/// Bit-semantic equality against the dense representation, so tests can
/// pin the sparse fast path against a dense-forced channel directly.
impl PartialEq<BitVec> for SparseDelivery {
    fn eq(&self, bits: &BitVec) -> bool {
        if bits.len() != self.n {
            return false;
        }
        let mut next = self.flips.iter().peekable();
        for i in 0..self.n {
            let flipped = next.next_if(|&&p| p as usize == i).is_some();
            if bits.get(i) != (self.base ^ flipped) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heard_by_flips_listed_parties() {
        let d = SparseDelivery::new(false, 200, vec![0, 64, 199]);
        assert!(d.heard_by(0) && d.heard_by(64) && d.heard_by(199));
        assert!(!d.heard_by(1) && !d.heard_by(63) && !d.heard_by(198));
        assert!(d.corrupted());
        assert_eq!(d.len(), 200);
    }

    #[test]
    fn uniform_detects_clean_and_fully_flipped_rounds() {
        assert_eq!(SparseDelivery::new(true, 8, vec![]).uniform(), Some(true));
        assert_eq!(
            SparseDelivery::new(true, 3, vec![0, 1, 2]).uniform(),
            Some(false)
        );
        assert_eq!(SparseDelivery::new(true, 3, vec![1]).uniform(), None);
    }

    #[test]
    fn semantic_equality_spans_representations() {
        let sparse = SparseDelivery::new(true, 5, vec![1, 3]);
        let dense = BitVec::from_bools(&[true, false, true, false, true]);
        assert_eq!(sparse, dense);
        let wrong = BitVec::from_bools(&[true, false, true, false, false]);
        assert_ne!(sparse, wrong);
        let short = BitVec::from_bools(&[true, false, true, false]);
        assert_ne!(sparse, short);
    }

    #[test]
    fn opposite_bases_with_complementary_flips_are_equal() {
        let a = SparseDelivery::new(true, 4, vec![1, 3]);
        let b = SparseDelivery::new(false, 4, vec![0, 2]);
        assert_eq!(a, b);
        let c = SparseDelivery::new(false, 4, vec![0, 1]);
        assert_ne!(a, c);
        let overlapping = SparseDelivery::new(false, 4, vec![1, 2]);
        assert_ne!(a, overlapping);
    }

    #[test]
    fn crossover_scales_with_parties() {
        assert_eq!(sparse_crossover(1), 4);
        assert_eq!(sparse_crossover(64), 4);
        assert_eq!(sparse_crossover(1_000), 62);
        assert_eq!(sparse_crossover(1_000_000), 62_500);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn heard_by_rejects_out_of_range_party() {
        let _ = SparseDelivery::new(false, 2, vec![1]).heard_by(2);
    }
}
