//! The *n*-party beeping channel of **Noisy Beeps** (Efremenko, Kol,
//! Saxena; PODC 2020), Appendix A.
//!
//! In every synchronous round each of `n` parties either *beeps* (sends 1)
//! or stays silent (sends 0); the channel computes the OR of the sent bits
//! and delivers a possibly noise-corrupted copy:
//!
//! * [`NoiseModel::Noiseless`] — everyone hears the true OR;
//! * [`NoiseModel::Correlated`] — with probability ε the OR is flipped and
//!   **all parties receive the same flipped bit** (the paper's main model,
//!   A.1.1);
//! * [`NoiseModel::OneSidedZeroToOne`] — noise can only turn a silent round
//!   into a beep (the relaxation under which the Ω(log n) lower bound is
//!   proved, A.1.2);
//! * [`NoiseModel::OneSidedOneToZero`] — noise can only erase beeps; §2 of
//!   the paper observes this regime admits constant-overhead coding;
//! * [`NoiseModel::Independent`] — every party receives its own
//!   independently-corrupted copy (§1.2).
//!
//! The crate provides:
//!
//! * the [`Protocol`] trait — the paper's `(T, {f_m^i}, {g^i})` formalism;
//! * [`run_noiseless`] / [`run_protocol`] — deterministic and noisy
//!   executions of a protocol;
//! * the [`Party`] trait and [`Executor`] — a round-driven state-machine
//!   runner used by the interactive-coding schemes in `beeps-core`, which
//!   interleave simulation, owner-finding, and verification phases and so
//!   cannot be expressed as a fixed `(T, f, g)` table;
//! * [`channel`] implementations: stochastic, scripted (failure injection),
//!   and the shared-randomness reduction of two-sided to one-sided noise
//!   (A.1.2).
//!
//! # Examples
//!
//! Run the trivial one-round OR protocol under correlated noise:
//!
//! ```
//! use beeps_channel::{run_protocol, NoiseModel, Protocol};
//!
//! /// One round; party i beeps its input bit; everyone outputs the OR.
//! struct Or;
//! impl Protocol for Or {
//!     type Input = bool;
//!     type Output = bool;
//!     fn num_parties(&self) -> usize { 4 }
//!     fn length(&self) -> usize { 1 }
//!     fn beep(&self, _i: usize, input: &bool, _t: &[bool]) -> bool { *input }
//!     fn output(&self, _i: usize, _input: &bool, t: &[bool]) -> bool { t[0] }
//! }
//!
//! let exec = run_protocol(
//!     &Or,
//!     &[false, true, false, false],
//!     NoiseModel::Correlated { epsilon: 0.1 },
//!     42,
//! );
//! // Under correlated noise all parties share one transcript.
//! assert_eq!(exec.views().shared().unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod bits;
pub mod burst;
pub mod channel;
pub mod executor;
pub mod lanes;
pub mod multiplication;
pub mod noise;
pub mod protocol;
pub mod sparse;
pub mod trace;

pub use adversary::{CorrectingAdversaryChannel, CorrectionPolicy};
pub use bits::BitVec;
pub use burst::BurstNoiseChannel;
pub use channel::{Channel, ReducedTwoSidedChannel, ScriptedChannel, StochasticChannel};
pub use executor::{ExecutionStats, Executor, Party};
pub use lanes::{IndependentLaneChannel, LaneChannel, LaneExecutor, LaneParty, LaneStats, LANES};
pub use multiplication::MultiplicationChannel;
pub use noise::{Delivery, NoiseModel};
pub use protocol::{
    run_noiseless, run_protocol, run_protocol_over, EnumerableInputs, Execution, NoisyExecution,
    PartyViews, Protocol, Transcript, UniquelyOwned,
};
pub use sparse::{sparse_crossover, SparseDelivery};
pub use trace::{RoundTrace, TraceSummary, TracingChannel, DEFAULT_TRACE_CAPACITY};
