//! The correcting adversary of subsection A.1.2 (second remark).
//!
//! The paper offers a second lens on why one-sided noise dominates
//! two-sided noise: take the two-sided ε-noisy channel and add an
//! *adversary* that may **correct** bits the channel flipped (but can
//! never introduce fresh errors). A protocol facing this adversary cannot
//! rely on the noise being "exactly" two-sided; and an adversary that
//! corrects precisely the `1→0` flips turns the two-sided channel into
//! the one-sided `0→1` channel — so one-sided lower bounds carry over.

use crate::channel::Channel;
use crate::noise::{Delivery, NoiseModel};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// What the adversary chooses to correct.
///
/// The adversary observes, per round, the true OR and the channel's
/// proposed (possibly flipped) delivery, and may restore the true value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionPolicy {
    /// Correct every `1→0` flip (erasures of beeps). The resulting channel
    /// is exactly the one-sided `0→1` channel — the reduction the paper
    /// uses.
    DownFlips,
    /// Correct every `0→1` flip (fabricated beeps), yielding the one-sided
    /// `1→0` channel — the *benign* regime of §2.
    UpFlips,
    /// Correct everything: a noiseless channel in disguise.
    All,
    /// Correct nothing: the plain two-sided channel.
    Nothing,
}

/// A correlated two-sided ε-noisy channel composed with a correcting
/// adversary.
///
/// # Examples
///
/// ```
/// use beeps_channel::{Channel, CorrectingAdversaryChannel, CorrectionPolicy};
///
/// // Two-sided noise + an adversary fixing all 1->0 flips: beeps are
/// // never erased.
/// let mut ch = CorrectingAdversaryChannel::new(4, 0.4, CorrectionPolicy::DownFlips, 7);
/// for _ in 0..100 {
///     assert_eq!(ch.transmit(true).shared(), Some(true));
/// }
/// ```
#[derive(Debug)]
pub struct CorrectingAdversaryChannel {
    n: usize,
    epsilon: f64,
    policy: CorrectionPolicy,
    rng: StdRng,
    rounds: usize,
    corrupted: usize,
    corrections: usize,
}

impl CorrectingAdversaryChannel {
    /// A channel for `n` parties with two-sided flip probability
    /// `epsilon` and the given adversary policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon` is outside `[0, 1)`.
    pub fn new(n: usize, epsilon: f64, policy: CorrectionPolicy, seed: u64) -> Self {
        assert!(n > 0, "channel needs at least one party");
        NoiseModel::Correlated { epsilon }
            .validate()
            .expect("invalid noise parameter");
        Self {
            n,
            epsilon,
            policy,
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
            corrupted: 0,
            corrections: 0,
        }
    }

    /// Number of flips the adversary has corrected so far.
    pub fn corrections(&self) -> usize {
        self.corrections
    }
}

impl Channel for CorrectingAdversaryChannel {
    fn num_parties(&self) -> usize {
        self.n
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        self.rounds += 1;
        let flipped = self.rng.gen_bool(self.epsilon);
        let proposed = true_or ^ flipped;
        let corrected = if flipped {
            let fix = match self.policy {
                CorrectionPolicy::DownFlips => true_or, // 1->0 means OR was 1
                CorrectionPolicy::UpFlips => !true_or,
                CorrectionPolicy::All => true,
                CorrectionPolicy::Nothing => false,
            };
            if fix {
                self.corrections += 1;
                true_or
            } else {
                proposed
            }
        } else {
            proposed
        };
        if corrected != true_or {
            self.corrupted += 1;
        }
        Delivery::Shared(corrected)
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn corrupted_rounds(&self) -> usize {
        self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip_rate(policy: CorrectionPolicy, true_or: bool, seed: u64) -> f64 {
        let trials = 100_000u32;
        let mut ch = CorrectingAdversaryChannel::new(2, 1.0 / 3.0, policy, seed);
        let mut flips = 0u32;
        for _ in 0..trials {
            if ch.transmit(true_or).shared() != Some(true_or) {
                flips += 1;
            }
        }
        f64::from(flips) / f64::from(trials)
    }

    #[test]
    fn down_policy_yields_one_sided_up_channel() {
        // 1s are always protected; 0s still flip at rate eps.
        assert_eq!(flip_rate(CorrectionPolicy::DownFlips, true, 1), 0.0);
        let r0 = flip_rate(CorrectionPolicy::DownFlips, false, 2);
        assert!((r0 - 1.0 / 3.0).abs() < 0.01, "0->1 rate {r0}");
    }

    #[test]
    fn up_policy_yields_one_sided_down_channel() {
        assert_eq!(flip_rate(CorrectionPolicy::UpFlips, false, 3), 0.0);
        let r1 = flip_rate(CorrectionPolicy::UpFlips, true, 4);
        assert!((r1 - 1.0 / 3.0).abs() < 0.01, "1->0 rate {r1}");
    }

    #[test]
    fn all_policy_is_noiseless() {
        assert_eq!(flip_rate(CorrectionPolicy::All, true, 5), 0.0);
        assert_eq!(flip_rate(CorrectionPolicy::All, false, 6), 0.0);
    }

    #[test]
    fn nothing_policy_is_plain_two_sided() {
        let r1 = flip_rate(CorrectionPolicy::Nothing, true, 7);
        let r0 = flip_rate(CorrectionPolicy::Nothing, false, 8);
        assert!((r1 - 1.0 / 3.0).abs() < 0.01);
        assert!((r0 - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn corrections_are_counted() {
        let mut ch = CorrectingAdversaryChannel::new(2, 0.5, CorrectionPolicy::All, 9);
        for _ in 0..1_000 {
            ch.transmit(true);
        }
        assert!(ch.corrections() > 300, "got {}", ch.corrections());
        assert_eq!(ch.corrupted_rounds(), 0);
    }
}
