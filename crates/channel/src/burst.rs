//! Bursty (Markov-modulated) noise — a robustness model beyond the
//! paper's i.i.d. assumption.
//!
//! The paper's channels flip each round independently. Real interference
//! (the "global network problems due to weather" of §1.2) comes in
//! bursts. The Gilbert–Elliott channel switches between a *good* and a
//! *bad* state by a two-state Markov chain and flips the OR with a
//! state-dependent probability; the rewind-based schemes should survive
//! it (a burst ruins one chunk, which is re-simulated), and the
//! `extensions` integration tests confirm they do.

use crate::channel::Channel;
use crate::noise::Delivery;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A correlated-output Gilbert–Elliott beeping channel.
///
/// # Examples
///
/// ```
/// use beeps_channel::{BurstNoiseChannel, Channel};
///
/// let mut ch = BurstNoiseChannel::new(4, 0.01, 0.45, 0.05, 0.2, 7);
/// let _ = ch.transmit(true);
/// assert_eq!(ch.rounds(), 1);
/// ```
#[derive(Debug)]
pub struct BurstNoiseChannel {
    n: usize,
    good_eps: f64,
    bad_eps: f64,
    /// P[good → bad] per round.
    p_enter_burst: f64,
    /// P[bad → good] per round.
    p_exit_burst: f64,
    in_burst: bool,
    rng: StdRng,
    rounds: usize,
    corrupted: usize,
    burst_rounds: usize,
}

impl BurstNoiseChannel {
    /// A channel for `n` parties flipping with probability `good_eps`
    /// outside bursts and `bad_eps` inside, entering bursts with
    /// probability `p_enter_burst` and leaving with `p_exit_burst` per
    /// round. Starts in the good state.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any probability is outside `[0, 1)` (burst
    /// transition probabilities may be 1.0 at most exclusive too).
    pub fn new(
        n: usize,
        good_eps: f64,
        bad_eps: f64,
        p_enter_burst: f64,
        p_exit_burst: f64,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "channel needs at least one party");
        for (name, p) in [
            ("good_eps", good_eps),
            ("bad_eps", bad_eps),
            ("p_enter_burst", p_enter_burst),
            ("p_exit_burst", p_exit_burst),
        ] {
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "{name} must be in [0, 1), got {p}"
            );
        }
        Self {
            n,
            good_eps,
            bad_eps,
            p_enter_burst,
            p_exit_burst,
            in_burst: false,
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
            corrupted: 0,
            burst_rounds: 0,
        }
    }

    /// Rounds spent inside a burst so far.
    pub fn burst_rounds(&self) -> usize {
        self.burst_rounds
    }

    /// The stationary per-round flip probability of the chain.
    pub fn stationary_flip_rate(&self) -> f64 {
        let denom = self.p_enter_burst + self.p_exit_burst;
        if denom == 0.0 {
            return self.good_eps;
        }
        let pi_bad = self.p_enter_burst / denom;
        pi_bad * self.bad_eps + (1.0 - pi_bad) * self.good_eps
    }
}

impl Channel for BurstNoiseChannel {
    fn num_parties(&self) -> usize {
        self.n
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        self.rounds += 1;
        // State transition, then emission.
        let switch = if self.in_burst {
            self.rng.gen_bool(self.p_exit_burst)
        } else {
            self.rng.gen_bool(self.p_enter_burst)
        };
        if switch {
            self.in_burst = !self.in_burst;
        }
        let eps = if self.in_burst {
            self.burst_rounds += 1;
            self.bad_eps
        } else {
            self.good_eps
        };
        let heard = true_or ^ self.rng.gen_bool(eps);
        if heard != true_or {
            self.corrupted += 1;
        }
        Delivery::Shared(heard)
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn corrupted_rounds(&self) -> usize {
        self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_rate_matches_stationary_prediction() {
        let mut ch = BurstNoiseChannel::new(2, 0.02, 0.4, 0.05, 0.15, 3);
        let trials = 300_000u32;
        let mut flips = 0u32;
        for _ in 0..trials {
            if ch.transmit(false).shared() == Some(true) {
                flips += 1;
            }
        }
        let rate = f64::from(flips) / f64::from(trials);
        let predicted = ch.stationary_flip_rate();
        assert!(
            (rate - predicted).abs() < 0.01,
            "measured {rate} vs stationary {predicted}"
        );
    }

    #[test]
    fn flips_are_bursty_not_iid() {
        // Adjacent-round flip correlation: P[flip at t+1 | flip at t]
        // must exceed the marginal flip rate.
        let mut ch = BurstNoiseChannel::new(2, 0.01, 0.45, 0.02, 0.1, 9);
        let rounds = 200_000;
        let mut flips = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            flips.push(ch.transmit(false).shared() == Some(true));
        }
        let marginal = flips.iter().filter(|&&f| f).count() as f64 / rounds as f64;
        let mut after_flip = 0u32;
        let mut flip_pairs = 0u32;
        for w in flips.windows(2) {
            if w[0] {
                flip_pairs += 1;
                after_flip += u32::from(w[1]);
            }
        }
        let conditional = f64::from(after_flip) / f64::from(flip_pairs.max(1));
        assert!(
            conditional > marginal * 2.0,
            "conditional {conditional} should far exceed marginal {marginal}"
        );
    }

    #[test]
    fn zero_transition_channel_never_bursts() {
        let mut ch = BurstNoiseChannel::new(2, 0.0, 0.9, 0.0, 0.0, 1);
        for _ in 0..1_000 {
            assert_eq!(ch.transmit(true).shared(), Some(true));
        }
        assert_eq!(ch.burst_rounds(), 0);
        assert_eq!(ch.stationary_flip_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bad_eps")]
    fn invalid_probability_rejected() {
        BurstNoiseChannel::new(2, 0.0, 1.5, 0.1, 0.1, 0);
    }
}
