//! Noise regimes of the beeping channel (Appendix A.1 of the paper).

use crate::bits::BitVec;
use crate::sparse::SparseDelivery;
use rand::Rng;
use std::fmt;

/// The five noise regimes studied by the paper.
///
/// Every regime acts on the *OR* of the bits sent in a round: the channel
/// first computes `⋁_i b^i` and then corrupts that single bit.
///
/// # Examples
///
/// ```
/// use beeps_channel::NoiseModel;
///
/// let m = NoiseModel::Correlated { epsilon: 0.25 };
/// assert!(m.is_shared());
/// assert_eq!(m.epsilon(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// ε = 0: every party hears the true OR.
    Noiseless,
    /// The paper's main model (A.1.1): with probability ε the OR is flipped,
    /// independently per round, and all parties receive the same bit.
    Correlated {
        /// Per-round flip probability.
        epsilon: f64,
    },
    /// One-sided noise that can only change a 0 into a 1 (A.1.2): a round in
    /// which somebody beeped is always heard as 1; a silent round is heard
    /// as 1 with probability ε. The Ω(log n) lower bound (Theorem C.1) is
    /// proved against this regime.
    OneSidedZeroToOne {
        /// Probability a silent round is heard as a beep.
        epsilon: f64,
    },
    /// One-sided noise that can only erase a beep (§2): a silent round is
    /// always heard as 0; a round with a beep is heard as 0 with
    /// probability ε. In this regime every error is witnessed by a beeping
    /// party, enabling constant-overhead coding.
    OneSidedOneToZero {
        /// Probability a beeping round is heard as silence.
        epsilon: f64,
    },
    /// Independent noise (§1.2): every party receives its own ε-noisy copy
    /// of the OR; transcripts may diverge across parties.
    Independent {
        /// Per-party, per-round flip probability.
        epsilon: f64,
    },
}

impl NoiseModel {
    /// The noise parameter ε (0 for [`NoiseModel::Noiseless`]).
    #[inline]
    pub fn epsilon(&self) -> f64 {
        match *self {
            NoiseModel::Noiseless => 0.0,
            NoiseModel::Correlated { epsilon }
            | NoiseModel::OneSidedZeroToOne { epsilon }
            | NoiseModel::OneSidedOneToZero { epsilon }
            | NoiseModel::Independent { epsilon } => epsilon,
        }
    }

    /// Whether all parties are guaranteed to hear the same bit each round.
    ///
    /// True for every regime except [`NoiseModel::Independent`]; the paper
    /// calls this property "the parties agree on the (noisy) transcript"
    /// (§1.2).
    #[inline]
    pub fn is_shared(&self) -> bool {
        !matches!(self, NoiseModel::Independent { .. })
    }

    /// Validates the noise parameter.
    ///
    /// # Errors
    ///
    /// Returns a description when ε is outside `[0, 1)` or non-finite.
    /// ε = 1 is rejected because a deterministic flip is not noise, and the
    /// paper's probability calculations divide by `1 − ε`.
    pub fn validate(&self) -> Result<(), InvalidNoise> {
        let eps = self.epsilon();
        if eps.is_finite() && (0.0..1.0).contains(&eps) {
            Ok(())
        } else {
            Err(InvalidNoise { epsilon: eps })
        }
    }

    /// Corrupts the true OR for regimes where all parties hear one bit.
    ///
    /// This is the *per-round reference sampler*: one Bernoulli draw per
    /// (eligible) round. [`crate::StochasticChannel`] batches the same
    /// distribution with geometric skip-sampling; the chi-squared tests
    /// in the channel test suite pin the two against each other.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when called on
    /// [`NoiseModel::Independent`]; use [`NoiseModel::corrupt_per_party`].
    #[inline]
    pub fn corrupt_shared<R: Rng + ?Sized>(&self, true_or: bool, rng: &mut R) -> bool {
        debug_assert!(self.is_shared(), "independent noise has no shared output");
        match *self {
            NoiseModel::Noiseless => true_or,
            NoiseModel::Correlated { epsilon } => true_or ^ rng.gen_bool(epsilon),
            NoiseModel::OneSidedZeroToOne { epsilon } => {
                if true_or {
                    true
                } else {
                    rng.gen_bool(epsilon)
                }
            }
            NoiseModel::OneSidedOneToZero { epsilon } => {
                if true_or {
                    !rng.gen_bool(epsilon)
                } else {
                    false
                }
            }
            NoiseModel::Independent { .. } => unreachable!("checked by debug_assert"),
        }
    }

    /// Produces each party's independently corrupted copy of the true OR.
    ///
    /// For shared regimes this returns `n` copies of the single shared bit,
    /// so the method is safe to call for any regime. Like
    /// [`NoiseModel::corrupt_shared`], this is the per-round reference
    /// sampler; the stochastic channel's batched mask blocks must match
    /// its flip-count distribution.
    pub fn corrupt_per_party<R: Rng + ?Sized>(
        &self,
        true_or: bool,
        n: usize,
        rng: &mut R,
    ) -> Vec<bool> {
        match *self {
            NoiseModel::Independent { epsilon } => {
                (0..n).map(|_| true_or ^ rng.gen_bool(epsilon)).collect()
            }
            _ => vec![self.corrupt_shared(true_or, rng); n],
        }
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NoiseModel::Noiseless => write!(f, "noiseless"),
            NoiseModel::Correlated { epsilon } => write!(f, "correlated(eps={epsilon})"),
            NoiseModel::OneSidedZeroToOne { epsilon } => {
                write!(f, "one-sided 0->1 (eps={epsilon})")
            }
            NoiseModel::OneSidedOneToZero { epsilon } => {
                write!(f, "one-sided 1->0 (eps={epsilon})")
            }
            NoiseModel::Independent { epsilon } => write!(f, "independent(eps={epsilon})"),
        }
    }
}

/// Error returned by [`NoiseModel::validate`] for out-of-range ε.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidNoise {
    /// The offending noise parameter.
    pub epsilon: f64,
}

impl fmt::Display for InvalidNoise {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "noise parameter {} outside [0, 1)", self.epsilon)
    }
}

impl std::error::Error for InvalidNoise {}

/// What the channel delivered in one round: a single bit heard by
/// everyone (shared-noise regimes), one bit per party (independent
/// noise, dense), or a broadcast base plus a flip list (independent
/// noise, sparse).
///
/// Per-party deliveries are word-packed ([`BitVec`]): for up to 128
/// parties the whole delivery lives inline, so independent-noise rounds
/// allocate nothing. Lightly corrupted rounds at large `n` instead use
/// [`SparseDelivery`], whose cost scales with the flip count rather
/// than the party count; the stochastic channel picks per round via
/// [`crate::sparse::sparse_crossover`].
#[derive(Debug, Clone)]
pub enum Delivery {
    /// All parties heard this bit.
    Shared(bool),
    /// Party `i` heard `bits.get(i)`.
    PerParty(BitVec),
    /// Party `i` heard the base bit unless listed as flipped.
    Sparse(SparseDelivery),
}

impl Delivery {
    /// The bit heard by party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for a per-party or sparse delivery.
    #[inline]
    pub fn heard_by(&self, i: usize) -> bool {
        match self {
            Delivery::Shared(b) => *b,
            Delivery::PerParty(bits) => bits.get(i),
            Delivery::Sparse(sparse) => sparse.heard_by(i),
        }
    }

    /// The shared bit, if this delivery was shared.
    #[inline]
    pub fn shared(&self) -> Option<bool> {
        match self {
            Delivery::Shared(b) => Some(*b),
            Delivery::PerParty(_) | Delivery::Sparse(_) => None,
        }
    }

    /// The single bit everyone heard, whether the delivery is `Shared`
    /// or a per-party/sparse delivery whose bits happen to agree.
    #[inline]
    pub fn uniform(&self) -> Option<bool> {
        match self {
            Delivery::Shared(b) => Some(*b),
            Delivery::PerParty(bits) => bits.uniform(),
            Delivery::Sparse(sparse) => sparse.uniform(),
        }
    }
}

/// Equality is bit-semantic across the per-party representations: a
/// sparse delivery equals a dense one when every party hears the same
/// bit, so equivalence tests can compare a sparse-producing channel
/// against a dense-forced one with plain `assert_eq!`. `Shared` stays
/// distinct from both — being shared is a channel-level guarantee, not
/// just a bit pattern, and collapsing it would hide a regime bug.
impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Delivery::Shared(a), Delivery::Shared(b)) => a == b,
            (Delivery::PerParty(a), Delivery::PerParty(b)) => a == b,
            (Delivery::Sparse(a), Delivery::Sparse(b)) => a == b,
            (Delivery::Sparse(sparse), Delivery::PerParty(bits))
            | (Delivery::PerParty(bits), Delivery::Sparse(sparse)) => sparse == bits,
            (Delivery::Shared(_), _) | (_, Delivery::Shared(_)) => false,
        }
    }
}

impl Eq for Delivery {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn flip_rate(model: NoiseModel, true_or: bool, trials: u32, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flips = 0u32;
        for _ in 0..trials {
            if model.corrupt_shared(true_or, &mut rng) != true_or {
                flips += 1;
            }
        }
        f64::from(flips) / f64::from(trials)
    }

    #[test]
    fn noiseless_never_flips() {
        assert_eq!(flip_rate(NoiseModel::Noiseless, true, 1_000, 1), 0.0);
        assert_eq!(flip_rate(NoiseModel::Noiseless, false, 1_000, 2), 0.0);
    }

    #[test]
    fn correlated_flips_both_directions_at_eps() {
        let m = NoiseModel::Correlated { epsilon: 0.25 };
        let r1 = flip_rate(m, true, 100_000, 3);
        let r0 = flip_rate(m, false, 100_000, 4);
        assert!((r1 - 0.25).abs() < 0.01, "1->0 rate {r1}");
        assert!((r0 - 0.25).abs() < 0.01, "0->1 rate {r0}");
    }

    #[test]
    fn one_sided_up_never_erases_beeps() {
        let m = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
        assert_eq!(flip_rate(m, true, 10_000, 5), 0.0);
        let r0 = flip_rate(m, false, 100_000, 6);
        assert!((r0 - 1.0 / 3.0).abs() < 0.01, "0->1 rate {r0}");
    }

    #[test]
    fn one_sided_down_never_creates_beeps() {
        let m = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
        assert_eq!(flip_rate(m, false, 10_000, 7), 0.0);
        let r1 = flip_rate(m, true, 100_000, 8);
        assert!((r1 - 1.0 / 3.0).abs() < 0.01, "1->0 rate {r1}");
    }

    #[test]
    fn independent_copies_differ_across_parties() {
        let m = NoiseModel::Independent { epsilon: 0.5 };
        let mut rng = StdRng::seed_from_u64(9);
        let bits = m.corrupt_per_party(false, 64, &mut rng);
        assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
    }

    #[test]
    fn shared_regimes_deliver_identical_copies() {
        let mut rng = StdRng::seed_from_u64(10);
        for m in [
            NoiseModel::Noiseless,
            NoiseModel::Correlated { epsilon: 0.3 },
            NoiseModel::OneSidedZeroToOne { epsilon: 0.3 },
            NoiseModel::OneSidedOneToZero { epsilon: 0.3 },
        ] {
            for _ in 0..50 {
                let bits = m.corrupt_per_party(true, 8, &mut rng);
                assert!(bits.windows(2).all(|w| w[0] == w[1]), "{m} diverged");
            }
        }
    }

    #[test]
    fn validate_accepts_and_rejects() {
        assert!(NoiseModel::Correlated { epsilon: 0.0 }.validate().is_ok());
        assert!(NoiseModel::Correlated { epsilon: 0.999 }.validate().is_ok());
        assert!(NoiseModel::Correlated { epsilon: 1.0 }.validate().is_err());
        assert!(NoiseModel::Correlated { epsilon: -0.1 }.validate().is_err());
        assert!(NoiseModel::Correlated { epsilon: f64::NAN }
            .validate()
            .is_err());
        assert!(NoiseModel::Noiseless.validate().is_ok());
    }

    #[test]
    fn delivery_accessors() {
        let d = Delivery::Shared(true);
        assert!(d.heard_by(7));
        assert_eq!(d.shared(), Some(true));
        let p = Delivery::PerParty(BitVec::from_bools(&[true, false]));
        assert!(!p.heard_by(1));
        assert_eq!(p.shared(), None);
        assert_eq!(p.uniform(), None);
        let agree = Delivery::PerParty(BitVec::from_bools(&[true, true]));
        assert_eq!(agree.shared(), None);
        assert_eq!(agree.uniform(), Some(true));
        assert_eq!(d.uniform(), Some(true));
    }

    #[test]
    fn display_mentions_regime() {
        let s = NoiseModel::OneSidedZeroToOne { epsilon: 0.5 }.to_string();
        assert!(s.contains("0->1"));
    }
}
