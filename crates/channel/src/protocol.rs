//! The paper's protocol formalism and direct (non-simulated) execution.
//!
//! Appendix A.1.1 defines a deterministic protocol over the beeping model
//! as a tuple `(T, {f_m^i}, {g^i})`: a length, per-round broadcast
//! functions `f_m^i : X^i × {0,1}^{m-1} → {0,1}`, and output functions
//! `g^i : X^i × {0,1}^T → Y^i`. The [`Protocol`] trait is that tuple:
//! [`Protocol::beep`] is `f`, [`Protocol::output`] is `g`, and the round
//! index is the length of the transcript seen so far.

use crate::channel::{Channel, StochasticChannel};
use crate::noise::{Delivery, NoiseModel};

/// A sequence of channel outputs `π_1 π_2 ⋯`, one bit per round.
pub type Transcript = Vec<bool>;

/// A deterministic protocol over the *n*-party beeping model — the
/// `(T, {f_m^i}, {g^i})` tuple of Appendix A.1.1.
///
/// Randomized protocols are distributions over deterministic ones; model
/// them by putting the party's random string inside `Input`.
///
/// # Examples
///
/// See the crate-level example, or [`run_noiseless`].
pub trait Protocol {
    /// Input domain `X^i` of each party.
    type Input: Clone;
    /// Output space `Y^i`.
    type Output: PartialEq + std::fmt::Debug;

    /// Number of parties `n`.
    fn num_parties(&self) -> usize;

    /// Protocol length `T` in rounds.
    fn length(&self) -> usize;

    /// Broadcast function `f_m^i(x^i, π_{<m})` with `m = transcript.len() + 1`:
    /// whether party `i` beeps in the next round after observing
    /// `transcript`.
    fn beep(&self, party: usize, input: &Self::Input, transcript: &[bool]) -> bool;

    /// Output function `g^i(x^i, π)` applied to the full transcript.
    fn output(&self, party: usize, input: &Self::Input, transcript: &[bool]) -> Self::Output;

    /// The true OR `⋁_i f^i` of all parties' beeps for the next round —
    /// the bit the channel would carry absent noise.
    ///
    /// Provided for analysis code (the lower-bound machinery recomputes
    /// `B_m`, the set of beeping parties, with it).
    fn true_or(&self, inputs: &[Self::Input], transcript: &[bool]) -> bool {
        (0..self.num_parties()).any(|i| self.beep(i, &inputs[i], transcript))
    }
}

/// A protocol whose per-party input domains are finite and enumerable.
///
/// The lower-bound machinery (`beeps-lowerbound`) sweeps a party's input
/// domain to compute the feasible sets `S^i(π)` of subsection C.2; any
/// protocol used there must implement this.
pub trait EnumerableInputs: Protocol {
    /// All possible inputs of `party`, in a fixed order.
    fn input_domain(&self, party: usize) -> Vec<Self::Input>;
}

/// A *uniquely-owned* protocol: the schedule fixes, for every round, the
/// single party allowed to beep there. (The owner's *bit* may still be
/// adaptive — `PointerChase` owns rounds by schedule while its bits depend
/// on the whole transcript; what matters is that ownership itself never
/// does.)
///
/// This is the structural assumption of \[EKS18\] that subsection 2.1 of
/// the paper contrasts with the beeping model: when each party "owns a
/// disjoint set of bits in the transcript", a transcript mismatch in
/// *either* direction is detected by the round's owner alone — `π_m = 1`
/// with the owner silent is just as self-evident as `π_m = 0` with the
/// owner beeping — so no owner-finding phase is needed. The
/// `OwnedRoundsSimulator` in `beeps-core` exploits exactly this.
///
/// Implementations must guarantee that `beep(i, x, π_{<m})` is `false`
/// whenever `i != round_owner(m)`; the simulator's correctness relies on
/// it (and the test suites assert it for the library's implementations).
pub trait UniquelyOwned: Protocol {
    /// The party that owns round `m` — the only one that may beep there.
    fn round_owner(&self, m: usize) -> usize;
}

/// Blanket impl so `&P` is usable wherever a protocol is expected.
impl<P: Protocol + ?Sized> Protocol for &P {
    type Input = P::Input;
    type Output = P::Output;

    fn num_parties(&self) -> usize {
        (**self).num_parties()
    }

    fn length(&self) -> usize {
        (**self).length()
    }

    fn beep(&self, party: usize, input: &Self::Input, transcript: &[bool]) -> bool {
        (**self).beep(party, input, transcript)
    }

    fn output(&self, party: usize, input: &Self::Input, transcript: &[bool]) -> Self::Output {
        (**self).output(party, input, transcript)
    }
}

/// Result of a noiseless execution: the unique transcript and every
/// party's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution<O> {
    transcript: Transcript,
    outputs: Vec<O>,
}

impl<O> Execution<O> {
    /// The channel transcript `π`.
    pub fn transcript(&self) -> &[bool] {
        &self.transcript
    }

    /// Output of every party, indexed by party id.
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Consumes the execution, returning `(transcript, outputs)`.
    pub fn into_parts(self) -> (Transcript, Vec<O>) {
        (self.transcript, self.outputs)
    }
}

/// Runs `protocol` on `inputs` over the noiseless channel.
///
/// The execution is deterministic; its transcript is the ground truth that
/// the simulation schemes in `beeps-core` must reproduce.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.num_parties()`.
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, Protocol};
///
/// struct Echo; // two rounds: party 0 beeps its bit twice
/// impl Protocol for Echo {
///     type Input = bool;
///     type Output = (bool, bool);
///     fn num_parties(&self) -> usize { 2 }
///     fn length(&self) -> usize { 2 }
///     fn beep(&self, i: usize, input: &bool, _t: &[bool]) -> bool {
///         i == 0 && *input
///     }
///     fn output(&self, _i: usize, _x: &bool, t: &[bool]) -> (bool, bool) {
///         (t[0], t[1])
///     }
/// }
///
/// let exec = run_noiseless(&Echo, &[true, false]);
/// assert_eq!(exec.transcript(), &[true, true]);
/// assert_eq!(exec.outputs(), &[(true, true), (true, true)]);
/// ```
pub fn run_noiseless<P: Protocol>(protocol: &P, inputs: &[P::Input]) -> Execution<P::Output> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let mut transcript = Vec::with_capacity(protocol.length());
    for _ in 0..protocol.length() {
        let or = protocol.true_or(inputs, &transcript);
        transcript.push(or);
    }
    let outputs = (0..n)
        .map(|i| protocol.output(i, &inputs[i], &transcript))
        .collect();
    Execution {
        transcript,
        outputs,
    }
}

/// Per-party transcript views of a noisy execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PartyViews {
    /// All parties observed this single transcript (shared-noise regimes).
    Shared(Transcript),
    /// Party `i` observed `views[i]` (independent noise).
    PerParty(Vec<Transcript>),
}

impl PartyViews {
    /// The transcript observed by party `i`.
    pub fn view(&self, i: usize) -> &[bool] {
        match self {
            PartyViews::Shared(t) => t,
            PartyViews::PerParty(v) => &v[i],
        }
    }

    /// The single shared transcript, if the noise regime guarantees one.
    pub fn shared(&self) -> Option<&[bool]> {
        match self {
            PartyViews::Shared(t) => Some(t),
            PartyViews::PerParty(_) => None,
        }
    }
}

/// Result of running a protocol over a noisy channel *directly* (without
/// any coding): per-party views, outputs, and channel statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyExecution<O> {
    views: PartyViews,
    /// The true (pre-noise) OR of every round, for analysis.
    true_ors: Transcript,
    outputs: Vec<O>,
    corrupted_rounds: usize,
    energy: usize,
}

impl<O> NoisyExecution<O> {
    /// What each party observed.
    pub fn views(&self) -> &PartyViews {
        &self.views
    }

    /// The noise-free OR of every round (what a noiseless channel would
    /// have delivered given the *same* beeping decisions).
    pub fn true_ors(&self) -> &[bool] {
        &self.true_ors
    }

    /// Output of every party.
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Number of rounds in which at least one party heard a corrupted bit.
    pub fn corrupted_rounds(&self) -> usize {
        self.corrupted_rounds
    }

    /// Total beeps sent by all parties across the run (channel energy).
    pub fn energy(&self) -> usize {
        self.energy
    }

    /// Consumes the execution, yielding every party's output.
    pub fn into_outputs(self) -> Vec<O> {
        self.outputs
    }
}

/// Runs `protocol` on `inputs` over a [`StochasticChannel`] with the given
/// noise model and seed.
///
/// Each party beeps according to its own *view*: under independent noise
/// the parties' transcripts (and hence beeping decisions) may diverge,
/// exactly as in §1.2 of the paper.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.num_parties()` or the noise
/// parameter is invalid.
pub fn run_protocol<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    model: NoiseModel,
    seed: u64,
) -> NoisyExecution<P::Output> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let mut channel = StochasticChannel::new(n, model, seed);
    run_protocol_over(protocol, inputs, &mut channel)
}

/// Runs `protocol` over an arbitrary [`Channel`] implementation — used for
/// scripted failure-injection and the A.1.2 reduction channel.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.num_parties()` or the channel was
/// built for a different number of parties.
pub fn run_protocol_over<P: Protocol, C: Channel>(
    protocol: &P,
    inputs: &[P::Input],
    channel: &mut C,
) -> NoisyExecution<P::Output> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    assert_eq!(channel.num_parties(), n, "channel sized for wrong n");

    let t = protocol.length();
    let mut shared: Option<Transcript> = Some(Vec::with_capacity(t));
    let mut per_party: Vec<Transcript> = Vec::new();
    let mut true_ors = Vec::with_capacity(t);
    let corrupted_before = channel.corrupted_rounds();

    let mut energy = 0usize;
    for _ in 0..t {
        // Each party beeps based on its own view so far. Counting (not
        // short-circuiting) also yields the run's total energy.
        let beeps = match (&shared, &per_party[..]) {
            (Some(view), _) => (0..n)
                .filter(|&i| protocol.beep(i, &inputs[i], view))
                .count(),
            (None, views) => (0..n)
                .filter(|&i| protocol.beep(i, &inputs[i], &views[i]))
                .count(),
        };
        energy += beeps;
        let or = beeps > 0;
        true_ors.push(or);
        match channel.transmit(or) {
            Delivery::Shared(bit) => match &mut shared {
                Some(view) => view.push(bit),
                None => {
                    for view in &mut per_party {
                        view.push(bit);
                    }
                }
            },
            Delivery::PerParty(bits) => {
                // Lazily switch to per-party views on first divergence-capable
                // delivery.
                if let Some(view) = shared.take() {
                    per_party = vec![view; n];
                }
                for (view, bit) in per_party.iter_mut().zip(bits.iter()) {
                    view.push(bit);
                }
            }
            Delivery::Sparse(sparse) => {
                if let Some(view) = shared.take() {
                    per_party = vec![view; n];
                }
                let base = sparse.base();
                let mut flips = sparse.flips().iter().peekable();
                for (i, view) in per_party.iter_mut().enumerate() {
                    let flipped = flips.next_if(|&&p| p as usize == i).is_some();
                    view.push(base ^ flipped);
                }
            }
        }
    }

    let views = match shared {
        Some(t) => PartyViews::Shared(t),
        None => PartyViews::PerParty(per_party),
    };
    let outputs = (0..n)
        .map(|i| protocol.output(i, &inputs[i], views.view(i)))
        .collect();
    NoisyExecution {
        views,
        true_ors,
        outputs,
        corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ScriptedChannel;

    /// T-round protocol: party i beeps in round m iff bit m of its input
    /// schedule is set; output = transcript (adaptive-free).
    struct Schedule {
        n: usize,
        t: usize,
    }

    impl Protocol for Schedule {
        type Input = Vec<bool>;
        type Output = Vec<bool>;

        fn num_parties(&self) -> usize {
            self.n
        }

        fn length(&self) -> usize {
            self.t
        }

        fn beep(&self, _party: usize, input: &Vec<bool>, transcript: &[bool]) -> bool {
            input[transcript.len()]
        }

        fn output(&self, _party: usize, _input: &Vec<bool>, transcript: &[bool]) -> Vec<bool> {
            transcript.to_vec()
        }
    }

    /// Adaptive: party 0 beeps round 0; in round 1 everyone echoes what
    /// they heard in round 0.
    struct Adaptive;

    impl Protocol for Adaptive {
        type Input = ();
        type Output = bool;

        fn num_parties(&self) -> usize {
            3
        }

        fn length(&self) -> usize {
            2
        }

        fn beep(&self, party: usize, _input: &(), transcript: &[bool]) -> bool {
            match transcript.len() {
                0 => party == 0,
                _ => transcript[0],
            }
        }

        fn output(&self, _party: usize, _input: &(), transcript: &[bool]) -> bool {
            transcript[1]
        }
    }

    #[test]
    fn noiseless_or_of_schedules() {
        let p = Schedule { n: 3, t: 4 };
        let inputs = vec![
            vec![true, false, false, false],
            vec![false, false, true, false],
            vec![false, false, true, false],
        ];
        let exec = run_noiseless(&p, &inputs);
        assert_eq!(exec.transcript(), &[true, false, true, false]);
        for out in exec.outputs() {
            assert_eq!(out, &vec![true, false, true, false]);
        }
    }

    #[test]
    fn adaptive_protocol_follows_noise() {
        // Round 0 flipped: everyone hears 0 even though party 0 beeped,
        // so nobody echoes in round 1.
        let mut ch = ScriptedChannel::new(3, vec![true, false]);
        let exec = run_protocol_over(&Adaptive, &[(), (), ()], &mut ch);
        assert_eq!(exec.views().shared().unwrap(), &[false, false]);
        assert_eq!(exec.true_ors(), &[true, false]);
        assert_eq!(exec.outputs(), &[false, false, false]);
        assert_eq!(exec.corrupted_rounds(), 1);
    }

    #[test]
    fn noisy_execution_with_zero_noise_matches_noiseless() {
        let p = Schedule { n: 2, t: 8 };
        let inputs = vec![
            vec![true, false, true, false, true, false, true, false],
            vec![false, false, false, false, true, true, true, true],
        ];
        let truth = run_noiseless(&p, &inputs);
        let noisy = run_protocol(&p, &inputs, NoiseModel::Noiseless, 5);
        assert_eq!(noisy.views().shared().unwrap(), truth.transcript());
        assert_eq!(noisy.corrupted_rounds(), 0);
    }

    #[test]
    fn independent_noise_produces_divergent_views() {
        let p = Schedule { n: 16, t: 32 };
        let inputs = vec![vec![false; 32]; 16];
        let exec = run_protocol(&p, &inputs, NoiseModel::Independent { epsilon: 0.4 }, 11);
        match exec.views() {
            PartyViews::PerParty(views) => {
                assert_eq!(views.len(), 16);
                let first = &views[0];
                assert!(
                    views.iter().any(|v| v != first),
                    "with eps=0.4 over 32 rounds views should diverge"
                );
            }
            PartyViews::Shared(_) => panic!("independent noise must yield per-party views"),
        }
    }

    #[test]
    fn one_sided_up_preserves_ones() {
        let p = Schedule { n: 2, t: 64 };
        let inputs = vec![vec![true; 64], vec![false; 64]];
        let exec = run_protocol(
            &p,
            &inputs,
            NoiseModel::OneSidedZeroToOne { epsilon: 0.9 },
            3,
        );
        // True OR is 1 every round and the 0->1 channel never erases it.
        assert!(exec.views().shared().unwrap().iter().all(|&b| b));
        assert_eq!(exec.corrupted_rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "one input per party")]
    fn input_count_mismatch_panics() {
        let p = Schedule { n: 3, t: 1 };
        run_noiseless(&p, &[vec![true]]);
    }

    #[test]
    fn protocol_usable_through_reference() {
        let p = Schedule { n: 2, t: 1 };
        let exec = run_noiseless(&&p, &[vec![true], vec![false]]);
        assert_eq!(exec.transcript(), &[true]);
    }
}
