//! Bit-sliced 64-lane noise sampling and execution.
//!
//! One `u64` word carries one round of up to [`LANES`] *independent
//! trials*: lane `l` (bit `l`) is trial `l` of a batch. Because the
//! channel output is an OR of beep bits plus noise flips — pure bitwise
//! structure — a single word OR/XOR executes one round of 64 trials at
//! once. This module provides the channel side of that layout:
//!
//! * [`LaneChannel`] — per-lane shared-noise sampling. Each lane owns
//!   its own geometric skip-sampler seeded from that trial's splitmix
//!   seed, reproducing the *exact* RNG draw sequence of a scalar
//!   [`StochasticChannel`](crate::StochasticChannel) built from the
//!   same seed. Lane-sliced execution is therefore bitwise identical
//!   to 64 scalar executions (pinned by the equivalence tests below
//!   and by `tests/packed_equivalence.rs` in `beeps-core`).
//! * [`LaneParty`] / [`LaneExecutor`] — the word-level analogue of
//!   [`Party`](crate::Party) / [`Executor`](crate::Executor): parties
//!   beep and hear whole words, one bit per trial-lane.
//! * [`IndependentLaneChannel`] — the independent-noise counterpart.
//!   Per-party divergent deliveries break the one-bit-per-trial
//!   shared collapse, so each lane instead runs the scalar channel's
//!   flip-calendar skip sampler and scatters its per-round flip
//!   buckets into **per-party flip words** (bit `l` of party `p`'s
//!   word = lane `l` flipped `p` this round). A party's heard word is
//!   then one XOR, and constant-OR spans skip-sample directly into
//!   per-lane flip lists ([`IndependentLaneChannel::span_flips`]) so
//!   batch work scales with `εn` flips, not `rounds × n` deliveries.
//!
//! # Seed discipline
//!
//! Every lane must draw all of its randomness from the per-trial
//! splitmix seed stream handed to [`LaneChannel::shared`] or
//! [`IndependentLaneChannel::new`]; seeding an RNG anywhere else in
//! lane-sliced code silently decouples lanes from their scalar twins.
//! The `lane-seed-discipline` beeps-lint rule enforces this: the two
//! constructors below are the only sanctioned seeding sites.

use crate::channel::{geometric_gap, IndependentSampler};
use crate::noise::NoiseModel;
use rand::{rngs::StdRng, SeedableRng};

/// Trial-lanes per transcript word.
pub const LANES: usize = 64;

/// Per-lane shared-noise state: the same `{rng, skip}` pair a scalar
/// [`StochasticChannel`](crate::StochasticChannel)'s shared sampler
/// carries, advanced in the same draw order.
#[derive(Debug)]
struct LaneNoise {
    rng: StdRng,
    /// Eligible rounds remaining before this lane's next flip.
    skip: u64,
}

/// A shared-noise channel carrying up to [`LANES`] independent trials,
/// one bit-lane each.
///
/// Construct with [`LaneChannel::shared`]; advance either one round at
/// a time across all lanes ([`LaneChannel::transmit_word`]), one round
/// on one lane ([`LaneChannel::step`]), or a whole constant-OR span on
/// one lane ([`LaneChannel::flips_in_span`]). All three consume each
/// lane's RNG in exactly the order the scalar channel would.
#[derive(Debug)]
pub struct LaneChannel {
    model: NoiseModel,
    epsilon: f64,
    lanes: Vec<LaneNoise>,
    corrupted: Vec<u64>,
}

impl LaneChannel {
    /// Creates a lane channel for `seeds.len()` trials under a *shared*
    /// noise model, lane `l` seeded with `seeds[l]` exactly as
    /// `StochasticChannel::new(n, model, seeds[l])` would seed its
    /// sampler.
    ///
    /// Returns `None` for [`NoiseModel::Independent`] (per-party
    /// deliveries do not bit-slice) and for models whose ε fails
    /// validation — callers fall back to the scalar per-trial path,
    /// which reports the failure per trial.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or holds more than [`LANES`] seeds.
    #[must_use]
    pub fn shared(model: NoiseModel, seeds: &[u64]) -> Option<Self> {
        assert!(
            !seeds.is_empty() && seeds.len() <= LANES,
            "need 1..={LANES} lane seeds, got {}",
            seeds.len()
        );
        if matches!(model, NoiseModel::Independent { .. }) || model.validate().is_err() {
            return None;
        }
        let epsilon = model.epsilon();
        let lanes = seeds
            .iter()
            .map(|&seed| {
                // The one sanctioned lane seeding site: each lane replays
                // the scalar channel's construction for its trial seed.
                // beeps-lint: allow(lane-seed-discipline) -- lanes are seeded here, and only here, from the per-trial splitmix seeds
                let mut rng = StdRng::seed_from_u64(seed);
                let skip = geometric_gap(epsilon, &mut rng);
                LaneNoise { rng, skip }
            })
            .collect();
        Some(Self {
            model,
            epsilon,
            lanes,
            corrupted: vec![0; seeds.len()],
        })
    }

    /// Number of active trial-lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The noise model applied to every lane.
    #[must_use]
    pub fn model(&self) -> NoiseModel {
        self.model
    }

    /// Corrupted (flipped) rounds delivered on `lane` so far.
    #[must_use]
    pub fn corrupted(&self, lane: usize) -> u64 {
        self.corrupted[lane]
    }

    /// Whether a round with true OR `true_or` can flip at all — the
    /// one-sided regimes only consume their countdown on rounds where a
    /// flip is possible (mirrors the scalar shared sampler).
    fn eligible(&self, true_or: bool) -> bool {
        match self.model {
            NoiseModel::Noiseless => false,
            NoiseModel::Correlated { .. } => true,
            NoiseModel::OneSidedZeroToOne { .. } => !true_or,
            NoiseModel::OneSidedOneToZero { .. } => true_or,
            NoiseModel::Independent { .. } => {
                unreachable!("lane channel is shared-noise only")
            }
        }
    }

    /// Delivers one round on one lane: returns the bit the lane's
    /// parties hear (`true_or ^ flip`).
    pub fn step(&mut self, lane: usize, true_or: bool) -> bool {
        if !self.eligible(true_or) {
            return true_or;
        }
        let state = &mut self.lanes[lane];
        let flip = if state.skip == 0 {
            state.skip = geometric_gap(self.epsilon, &mut state.rng);
            true
        } else {
            state.skip -= 1;
            false
        };
        if flip {
            self.corrupted[lane] += 1;
        }
        true_or ^ flip
    }

    /// Delivers `rounds` consecutive rounds with constant true OR
    /// `true_or` on one lane, returning the number of flipped rounds.
    ///
    /// Consumes the lane's RNG in exactly the per-round order: the
    /// geometric countdown decrements once per eligible round and
    /// redraws on each flip, so interleaving spans with [`step`] calls
    /// stays bitwise faithful to the scalar channel.
    ///
    /// [`step`]: LaneChannel::step
    pub fn flips_in_span(&mut self, lane: usize, rounds: u64, true_or: bool) -> u64 {
        if rounds == 0 || !self.eligible(true_or) {
            return 0;
        }
        let state = &mut self.lanes[lane];
        let mut flips = 0u64;
        let mut rem = rounds;
        let mut pos = state.skip;
        // A flip with `pos` clean rounds ahead of it consumes pos + 1
        // rounds of the span and forces a redraw.
        while pos < rem {
            flips += 1;
            rem -= pos + 1;
            pos = geometric_gap(self.epsilon, &mut state.rng);
        }
        state.skip = pos - rem;
        self.corrupted[lane] += flips;
        flips
    }

    /// Delivers one round across all lanes: bit `l` of `or_word` is
    /// lane `l`'s true OR, bit `l` of the result is what lane `l`'s
    /// parties hear. Bits at or above [`LaneChannel::lanes`] must be
    /// zero and are delivered as zero.
    pub fn transmit_word(&mut self, or_word: u64) -> u64 {
        let mut heard = 0u64;
        for lane in 0..self.lanes.len() {
            let true_or = or_word >> lane & 1 == 1;
            if self.step(lane, true_or) {
                heard |= 1u64 << lane;
            }
        }
        heard
    }
}

/// Per-lane independent-noise state: the same `{rng, skip sampler}`
/// pair a scalar [`StochasticChannel`](crate::StochasticChannel)'s
/// independent sampler carries, advanced in the same draw order.
#[derive(Debug)]
struct IndependentLaneNoise {
    rng: StdRng,
    skipper: IndependentSampler,
}

/// An independent-noise channel carrying up to [`LANES`] trials, one
/// bit-lane each, with **per-party** delivery words.
///
/// Lane `l` replays the flip-calendar skip sampler of
/// `StochasticChannel::new(n, model, seeds[l])` draw for draw, so every
/// lane's flip schedule — and therefore every per-party heard bit — is
/// bitwise identical to that trial's scalar execution. Advance either
/// one round across all lanes ([`IndependentLaneChannel::transmit_word`]
/// then [`IndependentLaneChannel::hear_word`] per party) or a whole
/// constant-OR span on one lane ([`IndependentLaneChannel::span_flips`]),
/// which skips straight from flip to flip and reports per-party flip
/// counts instead of materialising `rounds × n` deliveries.
#[derive(Debug)]
pub struct IndependentLaneChannel {
    n: usize,
    epsilon: f64,
    lanes: Vec<IndependentLaneNoise>,
    corrupted: Vec<u64>,
    /// Per-party flip words for the round most recently transmitted:
    /// bit `l` set means lane `l` flipped that party's delivery.
    flip_words: Vec<u64>,
    /// Parties with a non-zero flip word this round, so clearing costs
    /// O(flips) instead of O(n).
    touched: Vec<u32>,
    /// Per-party flip counts scratch for [`IndependentLaneChannel::span_flips`].
    span_counts: Vec<u32>,
    /// Parties flipped at least once in the current span (unsorted
    /// while accumulating).
    span_touched: Vec<u32>,
    /// `(party, flips)` output buffer of the last `span_flips` call,
    /// ascending by party.
    span_flips: Vec<(u32, u32)>,
}

impl IndependentLaneChannel {
    /// Creates an independent-noise lane channel for `n` parties and
    /// `seeds.len()` trials, lane `l` seeded with `seeds[l]` exactly as
    /// `StochasticChannel::new(n, model, seeds[l])` would seed its
    /// sampler.
    ///
    /// Returns `None` for shared-delivery models (use [`LaneChannel`])
    /// and for models whose ε fails validation — callers fall back to
    /// the scalar per-trial path, which reports the failure per trial.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `seeds` is empty or holds more than
    /// [`LANES`] seeds.
    #[must_use]
    pub fn new(n: usize, model: NoiseModel, seeds: &[u64]) -> Option<Self> {
        assert!(n > 0, "channel needs at least one party");
        assert!(
            !seeds.is_empty() && seeds.len() <= LANES,
            "need 1..={LANES} lane seeds, got {}",
            seeds.len()
        );
        if !matches!(model, NoiseModel::Independent { .. }) || model.validate().is_err() {
            return None;
        }
        let epsilon = model.epsilon();
        let lanes = seeds
            .iter()
            .map(|&lane_seed| {
                // The independent-noise sanctioned lane seeding site: each
                // lane replays the scalar channel's construction for its
                // trial seed.
                // beeps-lint: allow(lane-seed-discipline) -- lanes are seeded here, and only here, from the per-trial splitmix seeds
                let mut rng = StdRng::seed_from_u64(lane_seed);
                let skipper = IndependentSampler::new(n, epsilon, &mut rng);
                IndependentLaneNoise { rng, skipper }
            })
            .collect();
        Some(Self {
            n,
            epsilon,
            lanes,
            corrupted: vec![0; seeds.len()],
            flip_words: vec![0; n],
            touched: Vec::new(),
            span_counts: vec![0; n],
            span_touched: Vec::new(),
            span_flips: Vec::new(),
        })
    }

    /// Number of parties attached to the channel.
    #[must_use]
    pub fn num_parties(&self) -> usize {
        self.n
    }

    /// Number of active trial-lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Corrupted rounds delivered on `lane` so far. As in the scalar
    /// channel, a round is corrupted if *any* party's copy differs from
    /// the true OR.
    #[must_use]
    pub fn corrupted(&self, lane: usize) -> u64 {
        self.corrupted[lane]
    }

    /// Delivers one round across all lanes: advances every lane's skip
    /// sampler and scatters the flipped parties into the per-party flip
    /// words read back by [`IndependentLaneChannel::hear_word`].
    ///
    /// The true OR word plays no role in *which* parties flip (the flip
    /// schedule is input-oblivious, exactly like the scalar sampler);
    /// it is XORed in at hearing time.
    pub fn transmit_word(&mut self) {
        for &p in self.touched.iter() {
            self.flip_words[p as usize] = 0;
        }
        self.touched.clear();
        for (lane, state) in self.lanes.iter_mut().enumerate() {
            let bucket = state.skipper.advance(self.epsilon, &mut state.rng);
            if bucket.is_empty() {
                continue;
            }
            self.corrupted[lane] += 1;
            for &p in bucket.iter() {
                if self.flip_words[p as usize] == 0 {
                    self.touched.push(p);
                }
                self.flip_words[p as usize] |= 1u64 << lane;
            }
        }
    }

    /// What `party` hears in the round most recently transmitted, given
    /// the batch's true-OR word: bit `l` is lane `l`'s true OR XOR that
    /// lane's flip for this party.
    #[must_use]
    pub fn hear_word(&self, party: usize, or_word: u64) -> u64 {
        or_word ^ self.flip_words[party]
    }

    /// Delivers `rounds` consecutive rounds on one lane and returns the
    /// parties flipped at least once in the span as ascending
    /// `(party, flip count)` pairs.
    ///
    /// Consumes the lane's RNG in exactly the per-round order of
    /// `rounds` scalar `transmit` calls, so interleaving spans with
    /// word rounds stays bitwise faithful. With a constant true OR a
    /// party hearing `f` flips across `r` rounds hears `r − f` copies
    /// of the OR bit — which is all a repetition decode needs, so the
    /// span costs O(flips) instead of O(`rounds × n`).
    pub fn span_flips(&mut self, lane: usize, rounds: u64) -> &[(u32, u32)] {
        let state = &mut self.lanes[lane];
        for _ in 0..rounds {
            let bucket = state.skipper.advance(self.epsilon, &mut state.rng);
            if bucket.is_empty() {
                continue;
            }
            self.corrupted[lane] += 1;
            for &p in bucket.iter() {
                if self.span_counts[p as usize] == 0 {
                    self.span_touched.push(p);
                }
                self.span_counts[p as usize] += 1;
            }
        }
        self.span_touched.sort_unstable();
        self.span_flips.clear();
        for &p in self.span_touched.iter() {
            self.span_flips.push((p, self.span_counts[p as usize]));
            self.span_counts[p as usize] = 0;
        }
        self.span_touched.clear();
        &self.span_flips
    }
}

/// A stateful participant in a lane-sliced execution: the word-level
/// analogue of [`Party`](crate::Party), carrying one trial per bit.
pub trait LaneParty {
    /// The beep bits this party sends in the upcoming round, one per
    /// trial-lane. Bits of inactive lanes must be zero.
    fn beep_word(&mut self) -> u64;

    /// Delivery of the channel output for the round just sent, one bit
    /// per trial-lane.
    fn hear_word(&mut self, heard: u64);
}

/// Statistics of one lane-sliced execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneStats {
    /// Rounds executed (each advancing every lane once).
    pub rounds: usize,
    /// Total 1-bits sent across all parties, rounds, *and lanes* — the
    /// summed energy of all trials in the batch.
    pub energy: u64,
}

/// Drives a set of [`LaneParty`] state machines over a [`LaneChannel`],
/// one word OR per round for the whole batch of trials.
#[derive(Debug)]
pub struct LaneExecutor;

impl LaneExecutor {
    /// Runs `rounds` rounds of the batch defined by `parties` over
    /// `channel`. Per-lane corruption counts accumulate on the channel
    /// ([`LaneChannel::corrupted`]).
    ///
    /// # Panics
    ///
    /// Panics if the party slice is empty.
    pub fn run<P: LaneParty>(
        parties: &mut [P],
        channel: &mut LaneChannel,
        rounds: usize,
    ) -> LaneStats {
        assert!(!parties.is_empty(), "need at least one party");
        let mut energy = 0u64;
        for _ in 0..rounds {
            let mut or_word = 0u64;
            for party in parties.iter_mut() {
                let word = party.beep_word();
                energy += u64::from(word.count_ones());
                or_word |= word;
            }
            let heard = channel.transmit_word(or_word);
            for party in parties.iter_mut() {
                party.hear_word(heard);
            }
        }
        LaneStats { rounds, energy }
    }

    /// Runs `rounds` rounds of the batch defined by `parties` over an
    /// independent-noise lane channel: same shape as
    /// [`LaneExecutor::run`], but each party hears its own word
    /// (`or_word` XOR its per-lane flips). Per-lane corruption counts
    /// accumulate on the channel
    /// ([`IndependentLaneChannel::corrupted`]).
    ///
    /// # Panics
    ///
    /// Panics if the party slice is empty or its length differs from
    /// the channel's party count.
    pub fn run_independent<P: LaneParty>(
        parties: &mut [P],
        channel: &mut IndependentLaneChannel,
        rounds: usize,
    ) -> LaneStats {
        assert!(!parties.is_empty(), "need at least one party");
        assert_eq!(
            parties.len(),
            channel.num_parties(),
            "channel sized for a different number of parties"
        );
        let mut energy = 0u64;
        for _ in 0..rounds {
            let mut or_word = 0u64;
            for party in parties.iter_mut() {
                let word = party.beep_word();
                energy += u64::from(word.count_ones());
                or_word |= word;
            }
            channel.transmit_word();
            for (i, party) in parties.iter_mut().enumerate() {
                party.hear_word(channel.hear_word(i, or_word));
            }
        }
        LaneStats { rounds, energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, StochasticChannel};
    use crate::executor::{Executor, Party};

    fn shared_models() -> [NoiseModel; 4] {
        [
            NoiseModel::Noiseless,
            NoiseModel::Correlated { epsilon: 0.3 },
            NoiseModel::OneSidedZeroToOne { epsilon: 0.25 },
            NoiseModel::OneSidedOneToZero { epsilon: 0.25 },
        ]
    }

    #[test]
    fn step_matches_scalar_channel_per_lane() {
        let seeds: Vec<u64> = (0..7).map(|i| 0xACE1 + 13 * i).collect();
        for model in shared_models() {
            let mut lanes = LaneChannel::shared(model, &seeds).expect("shared model");
            let mut scalars: Vec<StochasticChannel> = seeds
                .iter()
                .map(|&s| StochasticChannel::new(3, model, s))
                .collect();
            for round in 0..500 {
                let true_or = round % 3 != 0;
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    let want = scalar.transmit(true_or).shared().expect("shared delivery");
                    let got = lanes.step(lane, true_or);
                    assert_eq!(got, want, "{model} lane {lane} round {round}");
                }
            }
            for (lane, scalar) in scalars.iter().enumerate() {
                assert_eq!(lanes.corrupted(lane), scalar.corrupted_rounds() as u64);
            }
        }
    }

    #[test]
    fn span_flips_match_per_round_steps() {
        // Interleave constant-OR spans with single steps; the batched
        // countdown must flip exactly the rounds the scalar channel
        // flips, in the same RNG draw order.
        let spans: [(u64, bool); 8] = [
            (5, true),
            (1, false),
            (64, true),
            (3, false),
            (200, false),
            (7, true),
            (0, true),
            (129, true),
        ];
        for model in shared_models() {
            let mut batched = LaneChannel::shared(model, &[42]).expect("shared model");
            let mut scalar = StochasticChannel::new(2, model, 42);
            for &(rounds, true_or) in &spans {
                let flips = batched.flips_in_span(0, rounds, true_or);
                let mut want = 0u64;
                for _ in 0..rounds {
                    let heard = scalar.transmit(true_or).shared().expect("shared delivery");
                    want += u64::from(heard != true_or);
                }
                assert_eq!(flips, want, "{model} span of {rounds} (or={true_or})");
                // One scalar step keeps the interleaving honest.
                let heard = scalar.transmit(true_or).shared().expect("shared delivery");
                assert_eq!(batched.step(0, true_or), heard, "{model} post-span step");
            }
            assert_eq!(batched.corrupted(0), scalar.corrupted_rounds() as u64);
        }
    }

    #[test]
    fn independent_noise_is_rejected() {
        assert!(LaneChannel::shared(NoiseModel::Independent { epsilon: 0.1 }, &[1, 2]).is_none());
        assert!(LaneChannel::shared(NoiseModel::Correlated { epsilon: 2.0 }, &[1]).is_none());
    }

    #[test]
    #[should_panic(expected = "lane seeds")]
    fn empty_seed_slice_panics() {
        let _ = LaneChannel::shared(NoiseModel::Noiseless, &[]);
    }

    /// Counts rounds; beeps on multiples of its stride (all lanes in
    /// lockstep, so lane 0 of the word run replays a scalar Strider).
    struct WordStrider {
        stride: usize,
        round: usize,
        lanes_mask: u64,
        heard: Vec<u64>,
    }

    impl LaneParty for WordStrider {
        fn beep_word(&mut self) -> u64 {
            if self.round.is_multiple_of(self.stride) {
                self.lanes_mask
            } else {
                0
            }
        }

        fn hear_word(&mut self, heard: u64) {
            self.round += 1;
            self.heard.push(heard);
        }
    }

    struct Strider {
        stride: usize,
        round: usize,
        heard: Vec<bool>,
    }

    impl Party for Strider {
        fn beep(&mut self) -> bool {
            self.round.is_multiple_of(self.stride)
        }

        fn hear(&mut self, heard: bool) {
            self.round += 1;
            self.heard.push(heard);
        }
    }

    #[test]
    fn lane_executor_matches_scalar_executor_per_lane() {
        let seeds = [11u64, 22, 33];
        let rounds = 300;
        for model in shared_models() {
            let mut word_parties: Vec<WordStrider> = [2usize, 3, 5]
                .iter()
                .map(|&stride| WordStrider {
                    stride,
                    round: 0,
                    lanes_mask: (1u64 << seeds.len()) - 1,
                    heard: Vec::new(),
                })
                .collect();
            let mut lane_channel = LaneChannel::shared(model, &seeds).expect("shared model");
            let stats = LaneExecutor::run(&mut word_parties, &mut lane_channel, rounds);

            for (lane, &seed) in seeds.iter().enumerate() {
                let mut parties: Vec<Strider> = [2usize, 3, 5]
                    .iter()
                    .map(|&stride| Strider {
                        stride,
                        round: 0,
                        heard: Vec::new(),
                    })
                    .collect();
                let mut channel = StochasticChannel::new(3, model, seed);
                let scalar = Executor::run(&mut parties, &mut channel, rounds);
                assert_eq!(
                    lane_channel.corrupted(lane),
                    scalar.corrupted_rounds as u64,
                    "{model} lane {lane} corruption count"
                );
                let lane_heard: Vec<bool> = word_parties[0]
                    .heard
                    .iter()
                    .map(|w| w >> lane & 1 == 1)
                    .collect();
                assert_eq!(
                    lane_heard, parties[0].heard,
                    "{model} lane {lane} transcript"
                );
            }
            // All lanes beep identically here, so energy is per-trial
            // energy times the lane count.
            assert_eq!(stats.rounds, rounds);
            assert!(stats.energy.is_multiple_of(seeds.len() as u64));
        }
    }

    #[test]
    fn independent_word_rounds_match_scalar_per_lane() {
        // n = 1 (degenerate), 5 (small), 65 (crosses a word boundary in
        // the scalar dense row) — per-party heard bits and corruption
        // counts must match the scalar channel lane for lane.
        let model = NoiseModel::Independent { epsilon: 0.2 };
        let seeds: Vec<u64> = (0..7).map(|i| 0xBEE9 + 31 * i).collect();
        for n in [1usize, 5, 65] {
            let mut lanes = IndependentLaneChannel::new(n, model, &seeds).expect("independent");
            let mut scalars: Vec<StochasticChannel> = seeds
                .iter()
                .map(|&s| StochasticChannel::new(n, model, s))
                .collect();
            for round in 0..300 {
                let true_or = round % 3 != 0;
                let or_word = if true_or {
                    (1u64 << seeds.len()) - 1
                } else {
                    0
                };
                lanes.transmit_word();
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    let delivery = scalar.transmit(true_or);
                    for p in 0..n {
                        let got = lanes.hear_word(p, or_word) >> lane & 1 == 1;
                        assert_eq!(
                            got,
                            delivery.heard_by(p),
                            "n={n} lane {lane} party {p} round {round}"
                        );
                    }
                }
            }
            for (lane, scalar) in scalars.iter().enumerate() {
                assert_eq!(
                    lanes.corrupted(lane),
                    scalar.corrupted_rounds() as u64,
                    "n={n} lane {lane} corruption count"
                );
            }
        }
    }

    #[test]
    fn independent_span_flips_match_scalar_rounds() {
        // Spans skip-sample per-party flip counts; the scalar channel
        // reports the same flips one round at a time.
        let model = NoiseModel::Independent { epsilon: 0.15 };
        let spans: [u64; 6] = [5, 1, 64, 3, 200, 129];
        for n in [1usize, 5, 65] {
            let mut lanes = IndependentLaneChannel::new(n, model, &[42, 43]).expect("independent");
            for lane in 0..2usize {
                let mut scalar = StochasticChannel::new(n, model, 42 + lane as u64);
                let mut scalar_corrupted = 0u64;
                let mut want: Vec<u32> = vec![0; n];
                for &rounds in &spans {
                    for w in want.iter_mut() {
                        *w = 0;
                    }
                    for _ in 0..rounds {
                        let delivery = scalar.transmit(true);
                        for (p, w) in want.iter_mut().enumerate() {
                            *w += u32::from(!delivery.heard_by(p));
                        }
                    }
                    let got = lanes.span_flips(lane, rounds);
                    let expected: Vec<(u32, u32)> = want
                        .iter()
                        .enumerate()
                        .filter(|&(_, &f)| f > 0)
                        .map(|(p, &f)| (p as u32, f))
                        .collect();
                    assert_eq!(got, &expected[..], "n={n} lane {lane} span of {rounds}");
                }
                scalar_corrupted += scalar.corrupted_rounds() as u64;
                assert_eq!(lanes.corrupted(lane), scalar_corrupted, "n={n} lane {lane}");
            }
        }
    }

    #[test]
    fn independent_channel_rejects_shared_models() {
        assert!(
            IndependentLaneChannel::new(3, NoiseModel::Correlated { epsilon: 0.1 }, &[1]).is_none()
        );
        assert!(IndependentLaneChannel::new(3, NoiseModel::Noiseless, &[1]).is_none());
        assert!(
            IndependentLaneChannel::new(3, NoiseModel::Independent { epsilon: 2.0 }, &[1])
                .is_none()
        );
    }

    #[test]
    #[should_panic(expected = "lane seeds")]
    fn independent_empty_seed_slice_panics() {
        let _ = IndependentLaneChannel::new(2, NoiseModel::Independent { epsilon: 0.1 }, &[]);
    }

    #[test]
    fn independent_lane_executor_matches_scalar_executor_per_lane() {
        let model = NoiseModel::Independent { epsilon: 0.2 };
        let seeds = [11u64, 22, 33];
        let rounds = 300;
        let mut word_parties: Vec<WordStrider> = [2usize, 3, 5]
            .iter()
            .map(|&stride| WordStrider {
                stride,
                round: 0,
                lanes_mask: (1u64 << seeds.len()) - 1,
                heard: Vec::new(),
            })
            .collect();
        let mut lane_channel = IndependentLaneChannel::new(3, model, &seeds).expect("independent");
        let stats = LaneExecutor::run_independent(&mut word_parties, &mut lane_channel, rounds);

        for (lane, &seed) in seeds.iter().enumerate() {
            let mut parties: Vec<Strider> = [2usize, 3, 5]
                .iter()
                .map(|&stride| Strider {
                    stride,
                    round: 0,
                    heard: Vec::new(),
                })
                .collect();
            let mut channel = StochasticChannel::new(3, model, seed);
            let scalar = Executor::run(&mut parties, &mut channel, rounds);
            assert_eq!(
                lane_channel.corrupted(lane),
                scalar.corrupted_rounds as u64,
                "lane {lane} corruption count"
            );
            for (i, party) in parties.iter().enumerate() {
                let lane_heard: Vec<bool> = word_parties[i]
                    .heard
                    .iter()
                    .map(|w| w >> lane & 1 == 1)
                    .collect();
                assert_eq!(lane_heard, party.heard, "lane {lane} party {i} view");
            }
        }
        assert_eq!(stats.rounds, rounds);
    }
}
