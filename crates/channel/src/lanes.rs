//! Bit-sliced 64-lane noise sampling and execution.
//!
//! One `u64` word carries one round of up to [`LANES`] *independent
//! trials*: lane `l` (bit `l`) is trial `l` of a batch. Because the
//! channel output is an OR of beep bits plus noise flips — pure bitwise
//! structure — a single word OR/XOR executes one round of 64 trials at
//! once. This module provides the channel side of that layout:
//!
//! * [`LaneChannel`] — per-lane shared-noise sampling. Each lane owns
//!   its own geometric skip-sampler seeded from that trial's splitmix
//!   seed, reproducing the *exact* RNG draw sequence of a scalar
//!   [`StochasticChannel`](crate::StochasticChannel) built from the
//!   same seed. Lane-sliced execution is therefore bitwise identical
//!   to 64 scalar executions (pinned by the equivalence tests below
//!   and by `tests/packed_equivalence.rs` in `beeps-core`).
//! * [`LaneParty`] / [`LaneExecutor`] — the word-level analogue of
//!   [`Party`](crate::Party) / [`Executor`](crate::Executor): parties
//!   beep and hear whole words, one bit per trial-lane.
//!
//! Independent noise is out of scope: per-party divergent deliveries
//! break the one-bit-per-trial collapse, so [`LaneChannel::shared`]
//! returns `None` and callers fall back to the scalar path.
//!
//! # Seed discipline
//!
//! Every lane must draw all of its randomness from the per-trial
//! splitmix seed stream handed to [`LaneChannel::shared`]; seeding an
//! RNG anywhere else in lane-sliced code silently decouples lanes from
//! their scalar twins. The `lane-seed-discipline` beeps-lint rule
//! enforces this: the constructor below is the single sanctioned
//! seeding site.

use crate::channel::geometric_gap;
use crate::noise::NoiseModel;
use rand::{rngs::StdRng, SeedableRng};

/// Trial-lanes per transcript word.
pub const LANES: usize = 64;

/// Per-lane shared-noise state: the same `{rng, skip}` pair a scalar
/// [`StochasticChannel`](crate::StochasticChannel)'s shared sampler
/// carries, advanced in the same draw order.
#[derive(Debug)]
struct LaneNoise {
    rng: StdRng,
    /// Eligible rounds remaining before this lane's next flip.
    skip: u64,
}

/// A shared-noise channel carrying up to [`LANES`] independent trials,
/// one bit-lane each.
///
/// Construct with [`LaneChannel::shared`]; advance either one round at
/// a time across all lanes ([`LaneChannel::transmit_word`]), one round
/// on one lane ([`LaneChannel::step`]), or a whole constant-OR span on
/// one lane ([`LaneChannel::flips_in_span`]). All three consume each
/// lane's RNG in exactly the order the scalar channel would.
#[derive(Debug)]
pub struct LaneChannel {
    model: NoiseModel,
    epsilon: f64,
    lanes: Vec<LaneNoise>,
    corrupted: Vec<u64>,
}

impl LaneChannel {
    /// Creates a lane channel for `seeds.len()` trials under a *shared*
    /// noise model, lane `l` seeded with `seeds[l]` exactly as
    /// `StochasticChannel::new(n, model, seeds[l])` would seed its
    /// sampler.
    ///
    /// Returns `None` for [`NoiseModel::Independent`] (per-party
    /// deliveries do not bit-slice) and for models whose ε fails
    /// validation — callers fall back to the scalar per-trial path,
    /// which reports the failure per trial.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or holds more than [`LANES`] seeds.
    #[must_use]
    pub fn shared(model: NoiseModel, seeds: &[u64]) -> Option<Self> {
        assert!(
            !seeds.is_empty() && seeds.len() <= LANES,
            "need 1..={LANES} lane seeds, got {}",
            seeds.len()
        );
        if matches!(model, NoiseModel::Independent { .. }) || model.validate().is_err() {
            return None;
        }
        let epsilon = model.epsilon();
        let lanes = seeds
            .iter()
            .map(|&seed| {
                // The one sanctioned lane seeding site: each lane replays
                // the scalar channel's construction for its trial seed.
                // beeps-lint: allow(lane-seed-discipline) -- lanes are seeded here, and only here, from the per-trial splitmix seeds
                let mut rng = StdRng::seed_from_u64(seed);
                let skip = geometric_gap(epsilon, &mut rng);
                LaneNoise { rng, skip }
            })
            .collect();
        Some(Self {
            model,
            epsilon,
            lanes,
            corrupted: vec![0; seeds.len()],
        })
    }

    /// Number of active trial-lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The noise model applied to every lane.
    #[must_use]
    pub fn model(&self) -> NoiseModel {
        self.model
    }

    /// Corrupted (flipped) rounds delivered on `lane` so far.
    #[must_use]
    pub fn corrupted(&self, lane: usize) -> u64 {
        self.corrupted[lane]
    }

    /// Whether a round with true OR `true_or` can flip at all — the
    /// one-sided regimes only consume their countdown on rounds where a
    /// flip is possible (mirrors the scalar shared sampler).
    fn eligible(&self, true_or: bool) -> bool {
        match self.model {
            NoiseModel::Noiseless => false,
            NoiseModel::Correlated { .. } => true,
            NoiseModel::OneSidedZeroToOne { .. } => !true_or,
            NoiseModel::OneSidedOneToZero { .. } => true_or,
            NoiseModel::Independent { .. } => {
                unreachable!("lane channel is shared-noise only")
            }
        }
    }

    /// Delivers one round on one lane: returns the bit the lane's
    /// parties hear (`true_or ^ flip`).
    pub fn step(&mut self, lane: usize, true_or: bool) -> bool {
        if !self.eligible(true_or) {
            return true_or;
        }
        let state = &mut self.lanes[lane];
        let flip = if state.skip == 0 {
            state.skip = geometric_gap(self.epsilon, &mut state.rng);
            true
        } else {
            state.skip -= 1;
            false
        };
        if flip {
            self.corrupted[lane] += 1;
        }
        true_or ^ flip
    }

    /// Delivers `rounds` consecutive rounds with constant true OR
    /// `true_or` on one lane, returning the number of flipped rounds.
    ///
    /// Consumes the lane's RNG in exactly the per-round order: the
    /// geometric countdown decrements once per eligible round and
    /// redraws on each flip, so interleaving spans with [`step`] calls
    /// stays bitwise faithful to the scalar channel.
    ///
    /// [`step`]: LaneChannel::step
    pub fn flips_in_span(&mut self, lane: usize, rounds: u64, true_or: bool) -> u64 {
        if rounds == 0 || !self.eligible(true_or) {
            return 0;
        }
        let state = &mut self.lanes[lane];
        let mut flips = 0u64;
        let mut rem = rounds;
        let mut pos = state.skip;
        // A flip with `pos` clean rounds ahead of it consumes pos + 1
        // rounds of the span and forces a redraw.
        while pos < rem {
            flips += 1;
            rem -= pos + 1;
            pos = geometric_gap(self.epsilon, &mut state.rng);
        }
        state.skip = pos - rem;
        self.corrupted[lane] += flips;
        flips
    }

    /// Delivers one round across all lanes: bit `l` of `or_word` is
    /// lane `l`'s true OR, bit `l` of the result is what lane `l`'s
    /// parties hear. Bits at or above [`LaneChannel::lanes`] must be
    /// zero and are delivered as zero.
    pub fn transmit_word(&mut self, or_word: u64) -> u64 {
        let mut heard = 0u64;
        for lane in 0..self.lanes.len() {
            let true_or = or_word >> lane & 1 == 1;
            if self.step(lane, true_or) {
                heard |= 1u64 << lane;
            }
        }
        heard
    }
}

/// A stateful participant in a lane-sliced execution: the word-level
/// analogue of [`Party`](crate::Party), carrying one trial per bit.
pub trait LaneParty {
    /// The beep bits this party sends in the upcoming round, one per
    /// trial-lane. Bits of inactive lanes must be zero.
    fn beep_word(&mut self) -> u64;

    /// Delivery of the channel output for the round just sent, one bit
    /// per trial-lane.
    fn hear_word(&mut self, heard: u64);
}

/// Statistics of one lane-sliced execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneStats {
    /// Rounds executed (each advancing every lane once).
    pub rounds: usize,
    /// Total 1-bits sent across all parties, rounds, *and lanes* — the
    /// summed energy of all trials in the batch.
    pub energy: u64,
}

/// Drives a set of [`LaneParty`] state machines over a [`LaneChannel`],
/// one word OR per round for the whole batch of trials.
#[derive(Debug)]
pub struct LaneExecutor;

impl LaneExecutor {
    /// Runs `rounds` rounds of the batch defined by `parties` over
    /// `channel`. Per-lane corruption counts accumulate on the channel
    /// ([`LaneChannel::corrupted`]).
    ///
    /// # Panics
    ///
    /// Panics if the party slice is empty.
    pub fn run<P: LaneParty>(
        parties: &mut [P],
        channel: &mut LaneChannel,
        rounds: usize,
    ) -> LaneStats {
        assert!(!parties.is_empty(), "need at least one party");
        let mut energy = 0u64;
        for _ in 0..rounds {
            let mut or_word = 0u64;
            for party in parties.iter_mut() {
                let word = party.beep_word();
                energy += u64::from(word.count_ones());
                or_word |= word;
            }
            let heard = channel.transmit_word(or_word);
            for party in parties.iter_mut() {
                party.hear_word(heard);
            }
        }
        LaneStats { rounds, energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, StochasticChannel};
    use crate::executor::{Executor, Party};

    fn shared_models() -> [NoiseModel; 4] {
        [
            NoiseModel::Noiseless,
            NoiseModel::Correlated { epsilon: 0.3 },
            NoiseModel::OneSidedZeroToOne { epsilon: 0.25 },
            NoiseModel::OneSidedOneToZero { epsilon: 0.25 },
        ]
    }

    #[test]
    fn step_matches_scalar_channel_per_lane() {
        let seeds: Vec<u64> = (0..7).map(|i| 0xACE1 + 13 * i).collect();
        for model in shared_models() {
            let mut lanes = LaneChannel::shared(model, &seeds).expect("shared model");
            let mut scalars: Vec<StochasticChannel> = seeds
                .iter()
                .map(|&s| StochasticChannel::new(3, model, s))
                .collect();
            for round in 0..500 {
                let true_or = round % 3 != 0;
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    let want = scalar.transmit(true_or).shared().expect("shared delivery");
                    let got = lanes.step(lane, true_or);
                    assert_eq!(got, want, "{model} lane {lane} round {round}");
                }
            }
            for (lane, scalar) in scalars.iter().enumerate() {
                assert_eq!(lanes.corrupted(lane), scalar.corrupted_rounds() as u64);
            }
        }
    }

    #[test]
    fn span_flips_match_per_round_steps() {
        // Interleave constant-OR spans with single steps; the batched
        // countdown must flip exactly the rounds the scalar channel
        // flips, in the same RNG draw order.
        let spans: [(u64, bool); 8] = [
            (5, true),
            (1, false),
            (64, true),
            (3, false),
            (200, false),
            (7, true),
            (0, true),
            (129, true),
        ];
        for model in shared_models() {
            let mut batched = LaneChannel::shared(model, &[42]).expect("shared model");
            let mut scalar = StochasticChannel::new(2, model, 42);
            for &(rounds, true_or) in &spans {
                let flips = batched.flips_in_span(0, rounds, true_or);
                let mut want = 0u64;
                for _ in 0..rounds {
                    let heard = scalar.transmit(true_or).shared().expect("shared delivery");
                    want += u64::from(heard != true_or);
                }
                assert_eq!(flips, want, "{model} span of {rounds} (or={true_or})");
                // One scalar step keeps the interleaving honest.
                let heard = scalar.transmit(true_or).shared().expect("shared delivery");
                assert_eq!(batched.step(0, true_or), heard, "{model} post-span step");
            }
            assert_eq!(batched.corrupted(0), scalar.corrupted_rounds() as u64);
        }
    }

    #[test]
    fn independent_noise_is_rejected() {
        assert!(LaneChannel::shared(NoiseModel::Independent { epsilon: 0.1 }, &[1, 2]).is_none());
        assert!(LaneChannel::shared(NoiseModel::Correlated { epsilon: 2.0 }, &[1]).is_none());
    }

    #[test]
    #[should_panic(expected = "lane seeds")]
    fn empty_seed_slice_panics() {
        let _ = LaneChannel::shared(NoiseModel::Noiseless, &[]);
    }

    /// Counts rounds; beeps on multiples of its stride (all lanes in
    /// lockstep, so lane 0 of the word run replays a scalar Strider).
    struct WordStrider {
        stride: usize,
        round: usize,
        lanes_mask: u64,
        heard: Vec<u64>,
    }

    impl LaneParty for WordStrider {
        fn beep_word(&mut self) -> u64 {
            if self.round.is_multiple_of(self.stride) {
                self.lanes_mask
            } else {
                0
            }
        }

        fn hear_word(&mut self, heard: u64) {
            self.round += 1;
            self.heard.push(heard);
        }
    }

    struct Strider {
        stride: usize,
        round: usize,
        heard: Vec<bool>,
    }

    impl Party for Strider {
        fn beep(&mut self) -> bool {
            self.round.is_multiple_of(self.stride)
        }

        fn hear(&mut self, heard: bool) {
            self.round += 1;
            self.heard.push(heard);
        }
    }

    #[test]
    fn lane_executor_matches_scalar_executor_per_lane() {
        let seeds = [11u64, 22, 33];
        let rounds = 300;
        for model in shared_models() {
            let mut word_parties: Vec<WordStrider> = [2usize, 3, 5]
                .iter()
                .map(|&stride| WordStrider {
                    stride,
                    round: 0,
                    lanes_mask: (1u64 << seeds.len()) - 1,
                    heard: Vec::new(),
                })
                .collect();
            let mut lane_channel = LaneChannel::shared(model, &seeds).expect("shared model");
            let stats = LaneExecutor::run(&mut word_parties, &mut lane_channel, rounds);

            for (lane, &seed) in seeds.iter().enumerate() {
                let mut parties: Vec<Strider> = [2usize, 3, 5]
                    .iter()
                    .map(|&stride| Strider {
                        stride,
                        round: 0,
                        heard: Vec::new(),
                    })
                    .collect();
                let mut channel = StochasticChannel::new(3, model, seed);
                let scalar = Executor::run(&mut parties, &mut channel, rounds);
                assert_eq!(
                    lane_channel.corrupted(lane),
                    scalar.corrupted_rounds as u64,
                    "{model} lane {lane} corruption count"
                );
                let lane_heard: Vec<bool> = word_parties[0]
                    .heard
                    .iter()
                    .map(|w| w >> lane & 1 == 1)
                    .collect();
                assert_eq!(
                    lane_heard, parties[0].heard,
                    "{model} lane {lane} transcript"
                );
            }
            // All lanes beep identically here, so energy is per-trial
            // energy times the lane count.
            assert_eq!(stats.rounds, rounds);
            assert!(stats.energy.is_multiple_of(seeds.len() as u64));
        }
    }
}
