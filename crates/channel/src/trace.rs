//! Execution tracing: record what crossed the channel and render it as a
//! terminal timeline — the debugging view used by the `trace` example and
//! by humans staring at rewind storms.

use crate::channel::Channel;
use crate::noise::Delivery;

/// One traced round: the true OR that was sent and what came out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace {
    /// OR of the bits the parties sent.
    pub sent_or: bool,
    /// What the channel delivered.
    pub delivery: Delivery,
}

impl RoundTrace {
    /// Whether any party received a bit different from the true OR.
    pub fn corrupted(&self) -> bool {
        match &self.delivery {
            Delivery::Shared(b) => *b != self.sent_or,
            Delivery::PerParty(bits) => bits.iter().any(|&b| b != self.sent_or),
        }
    }
}

/// A channel wrapper that records every round.
///
/// # Examples
///
/// ```
/// use beeps_channel::{Channel, NoiseModel, StochasticChannel, TracingChannel};
///
/// let inner = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
/// let mut ch = TracingChannel::new(inner);
/// ch.transmit(true);
/// ch.transmit(false);
/// assert_eq!(ch.log().len(), 2);
/// assert!(!ch.log()[0].corrupted());
/// ```
#[derive(Debug)]
pub struct TracingChannel<C> {
    inner: C,
    log: Vec<RoundTrace>,
}

impl<C: Channel> TracingChannel<C> {
    /// Wraps `inner`, recording every subsequent round.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            log: Vec::new(),
        }
    }

    /// The rounds recorded so far.
    pub fn log(&self) -> &[RoundTrace] {
        &self.log
    }

    /// Gives back the wrapped channel, dropping the log.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Renders the trace as a two-strip timeline (`#` beep, `.` silence),
    /// with a third strip marking corrupted rounds (`X`), wrapped at
    /// `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn render(&self, width: usize) -> String {
        render_strips(&self.log, width)
    }
}

impl<C: Channel> Channel for TracingChannel<C> {
    fn num_parties(&self) -> usize {
        self.inner.num_parties()
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        let delivery = self.inner.transmit(true_or);
        self.log.push(RoundTrace {
            sent_or: true_or,
            delivery: delivery.clone(),
        });
        delivery
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn corrupted_rounds(&self) -> usize {
        self.inner.corrupted_rounds()
    }
}

/// Renders a recorded trace; exposed for logs captured elsewhere.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn render_strips(log: &[RoundTrace], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let mut out = String::new();
    for (block_idx, block) in log.chunks(width).enumerate() {
        let offset = block_idx * width;
        let sent: String = block
            .iter()
            .map(|r| if r.sent_or { '#' } else { '.' })
            .collect();
        let heard: String = block
            .iter()
            .map(|r| {
                let bit = match &r.delivery {
                    Delivery::Shared(b) => *b,
                    Delivery::PerParty(bits) => {
                        bits.iter().filter(|&&b| b).count() * 2 >= bits.len()
                    }
                };
                if bit {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        let marks: String = block
            .iter()
            .map(|r| if r.corrupted() { 'X' } else { ' ' })
            .collect();
        out.push_str(&format!("round {offset:>6}  sent  {sent}\n"));
        out.push_str(&format!("              heard {heard}\n"));
        out.push_str(&format!("              noise {marks}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ScriptedChannel, StochasticChannel};
    use crate::noise::NoiseModel;

    #[test]
    fn records_rounds_and_corruption() {
        let inner = ScriptedChannel::new(2, vec![false, true, false]);
        let mut ch = TracingChannel::new(inner);
        ch.transmit(true);
        ch.transmit(true); // flipped to 0
        ch.transmit(false);
        assert_eq!(ch.log().len(), 3);
        assert!(!ch.log()[0].corrupted());
        assert!(ch.log()[1].corrupted());
        assert_eq!(ch.corrupted_rounds(), 1);
    }

    #[test]
    fn render_marks_flips() {
        let inner = ScriptedChannel::new(2, vec![true]);
        let mut ch = TracingChannel::new(inner);
        ch.transmit(false);
        let s = ch.render(16);
        assert!(s.contains("sent  ."));
        assert!(s.contains("heard #"));
        assert!(s.contains('X'));
    }

    #[test]
    fn render_wraps_long_traces() {
        let inner = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let mut ch = TracingChannel::new(inner);
        for i in 0..70 {
            ch.transmit(i % 3 == 0);
        }
        let s = ch.render(32);
        // 70 rounds at width 32 -> 3 blocks of 3 lines.
        assert_eq!(s.lines().count(), 9);
        assert!(s.contains("round     32"));
        assert!(s.contains("round     64"));
    }

    #[test]
    fn per_party_delivery_renders_majority() {
        let trace = vec![RoundTrace {
            sent_or: true,
            delivery: Delivery::PerParty(vec![true, true, false]),
        }];
        let s = render_strips(&trace, 8);
        assert!(s.contains("heard #"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        render_strips(&[], 0);
    }
}
