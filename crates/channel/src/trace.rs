//! Execution tracing: record what crossed the channel and render it as a
//! terminal timeline — the debugging view used by the `trace` example and
//! by humans staring at rewind storms.

use crate::channel::Channel;
use crate::noise::Delivery;

/// One traced round: the true OR that was sent and what came out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace {
    /// OR of the bits the parties sent.
    pub sent_or: bool,
    /// What the channel delivered.
    pub delivery: Delivery,
}

impl RoundTrace {
    /// Whether any party received a bit different from the true OR.
    #[inline]
    pub fn corrupted(&self) -> bool {
        self.delivery.uniform() != Some(self.sent_or)
    }
}

/// Default number of retained [`RoundTrace`]s; beyond this the oldest
/// rounds are discarded (their totals survive in [`TraceSummary`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Whole-run totals maintained by [`TracingChannel`] even for rounds the
/// bounded log has already discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Rounds transmitted through the wrapper.
    pub rounds: usize,
    /// Rounds in which some party heard a bit different from the true OR.
    pub corrupted: usize,
    /// Corrupted rounds where a silent round was heard as a beep (0→1).
    pub flips_up: usize,
    /// Corrupted rounds where a beep was silenced for someone (1→0).
    pub flips_down: usize,
    /// Rounds still present in [`TracingChannel::log`].
    pub retained: usize,
    /// Rounds discarded by the capacity bound.
    pub dropped: usize,
}

/// A channel wrapper that records rounds into a bounded log.
///
/// The log keeps the **most recent** `capacity` rounds (default
/// [`DEFAULT_TRACE_CAPACITY`]), so tracing a week-long rewind storm can
/// no longer exhaust memory; exact whole-run totals — including the
/// rounds already discarded — stay available via
/// [`TracingChannel::summary`].
///
/// # Examples
///
/// ```
/// use beeps_channel::{Channel, NoiseModel, StochasticChannel, TracingChannel};
///
/// let inner = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
/// let mut ch = TracingChannel::new(inner);
/// ch.transmit(true);
/// ch.transmit(false);
/// assert_eq!(ch.log().len(), 2);
/// assert!(!ch.log()[0].corrupted());
/// assert_eq!(ch.summary().rounds, 2);
/// assert_eq!(ch.summary().corrupted, 0);
/// ```
#[derive(Debug)]
pub struct TracingChannel<C> {
    inner: C,
    log: Vec<RoundTrace>,
    capacity: usize,
    rounds: usize,
    corrupted: usize,
    flips_up: usize,
    flips_down: usize,
}

impl<C: Channel> TracingChannel<C> {
    /// Wraps `inner`, retaining the most recent
    /// [`DEFAULT_TRACE_CAPACITY`] rounds.
    pub fn new(inner: C) -> Self {
        Self::with_capacity(inner, DEFAULT_TRACE_CAPACITY)
    }

    /// Wraps `inner`, retaining at most `capacity` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(inner: C, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            inner,
            log: Vec::new(),
            capacity,
            rounds: 0,
            corrupted: 0,
            flips_up: 0,
            flips_down: 0,
        }
    }

    /// The retained rounds, oldest first — the most recent
    /// `capacity` of everything transmitted.
    pub fn log(&self) -> &[RoundTrace] {
        let start = self.log.len().saturating_sub(self.capacity);
        &self.log[start..]
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whole-run totals, exact even for discarded rounds.
    pub fn summary(&self) -> TraceSummary {
        let retained = self.log().len();
        TraceSummary {
            rounds: self.rounds,
            corrupted: self.corrupted,
            flips_up: self.flips_up,
            flips_down: self.flips_down,
            retained,
            dropped: self.rounds - retained,
        }
    }

    /// Gives back the wrapped channel, dropping the log.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Renders the retained trace as a two-strip timeline (`#` beep,
    /// `.` silence), with a third strip marking corrupted rounds (`X`),
    /// wrapped at `width` columns. Rounds evicted by the capacity bound
    /// are not shown (see [`TracingChannel::summary`] for their totals).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn render(&self, width: usize) -> String {
        render_strips(self.log(), width)
    }
}

impl<C: Channel> Channel for TracingChannel<C> {
    fn num_parties(&self) -> usize {
        self.inner.num_parties()
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        let delivery = self.inner.transmit(true_or);
        let trace = RoundTrace {
            sent_or: true_or,
            delivery: delivery.clone(),
        };
        self.rounds += 1;
        if trace.corrupted() {
            self.corrupted += 1;
            if true_or {
                self.flips_down += 1;
            } else {
                self.flips_up += 1;
            }
        }
        self.log.push(trace);
        // Amortised compaction: let the buffer grow to 2x capacity, then
        // drop the stale half in one move, keeping pushes O(1) amortised
        // while `log()` always has `capacity` recent rounds to return.
        if self.log.len() >= self.capacity.saturating_mul(2) {
            self.log.drain(..self.log.len() - self.capacity);
        }
        delivery
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn corrupted_rounds(&self) -> usize {
        self.inner.corrupted_rounds()
    }
}

/// Renders a recorded trace; exposed for logs captured elsewhere.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn render_strips(log: &[RoundTrace], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let mut out = String::new();
    for (block_idx, block) in log.chunks(width).enumerate() {
        let offset = block_idx * width;
        let sent: String = block
            .iter()
            .map(|r| if r.sent_or { '#' } else { '.' })
            .collect();
        let heard: String = block
            .iter()
            .map(|r| {
                let bit = match &r.delivery {
                    Delivery::Shared(b) => *b,
                    Delivery::PerParty(bits) => bits.count_ones() * 2 >= bits.len(),
                    Delivery::Sparse(sparse) => {
                        let ones = if sparse.base() {
                            sparse.len() - sparse.flips().len()
                        } else {
                            sparse.flips().len()
                        };
                        ones * 2 >= sparse.len()
                    }
                };
                if bit {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        let marks: String = block
            .iter()
            .map(|r| if r.corrupted() { 'X' } else { ' ' })
            .collect();
        out.push_str(&format!("round {offset:>6}  sent  {sent}\n"));
        out.push_str(&format!("              heard {heard}\n"));
        out.push_str(&format!("              noise {marks}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ScriptedChannel, StochasticChannel};
    use crate::noise::NoiseModel;

    #[test]
    fn records_rounds_and_corruption() {
        let inner = ScriptedChannel::new(2, vec![false, true, false]);
        let mut ch = TracingChannel::new(inner);
        ch.transmit(true);
        ch.transmit(true); // flipped to 0
        ch.transmit(false);
        assert_eq!(ch.log().len(), 3);
        assert!(!ch.log()[0].corrupted());
        assert!(ch.log()[1].corrupted());
        assert_eq!(ch.corrupted_rounds(), 1);
    }

    #[test]
    fn render_marks_flips() {
        let inner = ScriptedChannel::new(2, vec![true]);
        let mut ch = TracingChannel::new(inner);
        ch.transmit(false);
        let s = ch.render(16);
        assert!(s.contains("sent  ."));
        assert!(s.contains("heard #"));
        assert!(s.contains('X'));
    }

    #[test]
    fn render_wraps_long_traces() {
        let inner = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let mut ch = TracingChannel::new(inner);
        for i in 0..70 {
            ch.transmit(i % 3 == 0);
        }
        let s = ch.render(32);
        // 70 rounds at width 32 -> 3 blocks of 3 lines.
        assert_eq!(s.lines().count(), 9);
        assert!(s.contains("round     32"));
        assert!(s.contains("round     64"));
    }

    #[test]
    fn per_party_delivery_renders_majority() {
        let trace = vec![RoundTrace {
            sent_or: true,
            delivery: Delivery::PerParty(crate::BitVec::from_bools(&[true, true, false])),
        }];
        let s = render_strips(&trace, 8);
        assert!(s.contains("heard #"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        render_strips(&[], 0);
    }

    #[test]
    fn bounded_log_keeps_recent_rounds_and_exact_totals() {
        let inner = ScriptedChannel::new(1, vec![true; 10]); // every round flipped
        let mut ch = TracingChannel::with_capacity(inner, 4);
        for i in 0..10 {
            ch.transmit(i % 2 == 0); // sent pattern: t f t f ...
        }
        assert!(ch.log().len() <= 4);
        // The retained tail always ends with the most recent round.
        assert!(!ch.log().last().unwrap().sent_or);
        let s = ch.summary();
        assert_eq!(s.rounds, 10);
        // Every round is flipped: the 5 beeping rounds are silenced (down)
        // and the 5 silent rounds fabricate a beep (up).
        assert_eq!(s.corrupted, 10);
        assert_eq!(s.flips_up, 5);
        assert_eq!(s.flips_down, 5);
        assert_eq!(s.retained, ch.log().len());
        assert_eq!(s.dropped, 10 - ch.log().len());
    }

    #[test]
    fn summary_counts_flip_directions() {
        // The script flips rounds 0 and 1: sent true heard false (down),
        // then sent false heard true (up); round 2 is clean.
        let inner = ScriptedChannel::new(1, vec![true, true, false]);
        let mut ch = TracingChannel::new(inner);
        ch.transmit(true);
        ch.transmit(false);
        ch.transmit(false);
        let s = ch.summary();
        assert_eq!((s.corrupted, s.flips_up, s.flips_down), (2, 1, 1));
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn compaction_is_invisible_through_the_api() {
        let inner = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let mut ch = TracingChannel::with_capacity(inner, 8);
        for i in 0..100 {
            ch.transmit(i % 3 == 0);
        }
        assert_eq!(ch.log().len(), 8);
        // Rounds 92..100 survive: the pattern of the last 8 sends.
        let sent: Vec<bool> = ch.log().iter().map(|r| r.sent_or).collect();
        let want: Vec<bool> = (92..100).map(|i| i % 3 == 0).collect();
        assert_eq!(sent, want);
        assert_eq!(ch.summary().dropped, 92);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let inner = StochasticChannel::new(1, NoiseModel::Noiseless, 0);
        let _ = TracingChannel::with_capacity(inner, 0);
    }
}
