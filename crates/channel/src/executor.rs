//! Round-driven execution of stateful parties.
//!
//! The interactive-coding schemes of `beeps-core` are not fixed
//! `(T, f, g)` tables: their behaviour interleaves chunk simulation,
//! owner-finding, verification, and rewinds, with per-party mutable state.
//! The [`Party`] trait models such a state machine and the [`Executor`]
//! drives a set of them against any [`Channel`], collecting statistics.

use crate::channel::Channel;

/// A stateful participant in a beeping execution.
///
/// The executor calls [`Party::beep`] on every party, ORs the results,
/// passes the OR through the channel, and then calls [`Party::hear`] with
/// each party's (possibly corrupted) copy. Implementations keep their own
/// round counters.
pub trait Party {
    /// The bit this party sends in the upcoming round.
    fn beep(&mut self) -> bool;

    /// Delivery of the channel output for the round just sent.
    fn hear(&mut self, heard: bool);
}

/// Statistics of one executed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total number of 1-bits sent across all parties and rounds — the
    /// "energy" of the execution, a quantity of independent interest in the
    /// beeping literature.
    pub energy: usize,
    /// Rounds in which at least one party heard a bit different from the
    /// true OR.
    pub corrupted_rounds: usize,
}

/// Drives a set of [`Party`] state machines over a [`Channel`].
///
/// # Examples
///
/// ```
/// use beeps_channel::{Executor, NoiseModel, Party, StochasticChannel};
///
/// /// Beeps once in round `when`, remembers everything it hears.
/// struct Pulse { when: usize, round: usize, heard: Vec<bool> }
/// impl Party for Pulse {
///     fn beep(&mut self) -> bool { self.round == self.when }
///     fn hear(&mut self, heard: bool) { self.round += 1; self.heard.push(heard); }
/// }
///
/// let mut parties = vec![
///     Pulse { when: 0, round: 0, heard: vec![] },
///     Pulse { when: 2, round: 0, heard: vec![] },
/// ];
/// let mut channel = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
/// let stats = Executor::run(&mut parties, &mut channel, 3);
/// assert_eq!(stats.rounds, 3);
/// assert_eq!(parties[0].heard, vec![true, false, true]);
/// ```
#[derive(Debug)]
pub struct Executor;

impl Executor {
    /// Runs `rounds` rounds of the beeping protocol defined by `parties`
    /// over `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != channel.num_parties()` or the party
    /// slice is empty.
    pub fn run<P: Party>(
        parties: &mut [P],
        channel: &mut dyn Channel,
        rounds: usize,
    ) -> ExecutionStats {
        assert!(!parties.is_empty(), "need at least one party");
        assert_eq!(
            parties.len(),
            channel.num_parties(),
            "channel sized for wrong number of parties"
        );
        let corrupted_before = channel.corrupted_rounds();
        let mut energy = 0usize;
        for _ in 0..rounds {
            let mut or = false;
            for party in parties.iter_mut() {
                let b = party.beep();
                energy += usize::from(b);
                or |= b;
            }
            let delivery = channel.transmit(or);
            for (i, party) in parties.iter_mut().enumerate() {
                party.hear(delivery.heard_by(i));
            }
        }
        ExecutionStats {
            rounds,
            energy,
            corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ScriptedChannel, StochasticChannel};
    use crate::noise::NoiseModel;

    /// Counts rounds; beeps on multiples of its stride.
    struct Strider {
        stride: usize,
        round: usize,
        heard: Vec<bool>,
    }

    impl Party for Strider {
        fn beep(&mut self) -> bool {
            self.round.is_multiple_of(self.stride)
        }

        fn hear(&mut self, heard: bool) {
            self.round += 1;
            self.heard.push(heard);
        }
    }

    fn striders(strides: &[usize]) -> Vec<Strider> {
        strides
            .iter()
            .map(|&stride| Strider {
                stride,
                round: 0,
                heard: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn executor_computes_or_per_round() {
        let mut parties = striders(&[2, 3]);
        let mut channel = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let stats = Executor::run(&mut parties, &mut channel, 6);
        // Rounds:        0     1      2     3      4     5
        // stride 2 beeps t     f      t     f      t     f
        // stride 3 beeps t     f      f     t      f     f
        let expect = vec![true, false, true, true, true, false];
        assert_eq!(parties[0].heard, expect);
        assert_eq!(parties[1].heard, expect);
        assert_eq!(stats.rounds, 6);
        assert_eq!(stats.energy, 3 + 2);
        assert_eq!(stats.corrupted_rounds, 0);
    }

    #[test]
    fn executor_reports_corruptions_from_script() {
        let mut parties = striders(&[1]);
        let mut channel = ScriptedChannel::new(1, vec![true, true, false]);
        let stats = Executor::run(&mut parties, &mut channel, 3);
        assert_eq!(stats.corrupted_rounds, 2);
        assert_eq!(parties[0].heard, vec![false, false, true]);
    }

    #[test]
    fn stats_accumulate_across_runs_on_same_channel() {
        let mut channel = ScriptedChannel::new(1, vec![true, false, true]);
        let mut parties = striders(&[1]);
        let s1 = Executor::run(&mut parties, &mut channel, 2);
        let s2 = Executor::run(&mut parties, &mut channel, 1);
        assert_eq!(s1.corrupted_rounds, 1);
        assert_eq!(s2.corrupted_rounds, 1);
    }

    #[test]
    #[should_panic(expected = "wrong number of parties")]
    fn size_mismatch_panics() {
        let mut parties = striders(&[1, 1]);
        let mut channel = StochasticChannel::new(3, NoiseModel::Noiseless, 0);
        Executor::run(&mut parties, &mut channel, 1);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn empty_parties_panics() {
        let mut parties: Vec<Strider> = Vec::new();
        let mut channel = StochasticChannel::new(1, NoiseModel::Noiseless, 0);
        Executor::run(&mut parties, &mut channel, 1);
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let mut parties = striders(&[1]);
        let mut channel = StochasticChannel::new(1, NoiseModel::Noiseless, 0);
        let stats = Executor::run(&mut parties, &mut channel, 0);
        assert_eq!(stats, ExecutionStats::default());
    }
}
