//! Round-driven execution of stateful parties.
//!
//! The interactive-coding schemes of `beeps-core` are not fixed
//! `(T, f, g)` tables: their behaviour interleaves chunk simulation,
//! owner-finding, verification, and rewinds, with per-party mutable state.
//! The [`Party`] trait models such a state machine and the [`Executor`]
//! drives a set of them against any [`Channel`], collecting statistics.

use crate::channel::Channel;
use crate::noise::Delivery;
use beeps_metrics::MetricsRegistry;

/// A stateful participant in a beeping execution.
///
/// The executor calls [`Party::beep`] on every party, ORs the results,
/// passes the OR through the channel, and then calls [`Party::hear`] with
/// each party's (possibly corrupted) copy. Implementations keep their own
/// round counters.
pub trait Party {
    /// The bit this party sends in the upcoming round.
    fn beep(&mut self) -> bool;

    /// Delivery of the channel output for the round just sent.
    fn hear(&mut self, heard: bool);
}

/// Statistics of one executed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total number of 1-bits sent across all parties and rounds — the
    /// "energy" of the execution, a quantity of independent interest in the
    /// beeping literature.
    pub energy: usize,
    /// Rounds in which at least one party heard a bit different from the
    /// true OR.
    pub corrupted_rounds: usize,
}

/// Drives a set of [`Party`] state machines over a [`Channel`].
///
/// # Examples
///
/// ```
/// use beeps_channel::{Executor, NoiseModel, Party, StochasticChannel};
///
/// /// Beeps once in round `when`, remembers everything it hears.
/// struct Pulse { when: usize, round: usize, heard: Vec<bool> }
/// impl Party for Pulse {
///     fn beep(&mut self) -> bool { self.round == self.when }
///     fn hear(&mut self, heard: bool) { self.round += 1; self.heard.push(heard); }
/// }
///
/// let mut parties = vec![
///     Pulse { when: 0, round: 0, heard: vec![] },
///     Pulse { when: 2, round: 0, heard: vec![] },
/// ];
/// let mut channel = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
/// let stats = Executor::run(&mut parties, &mut channel, 3);
/// assert_eq!(stats.rounds, 3);
/// assert_eq!(parties[0].heard, vec![true, false, true]);
/// ```
#[derive(Debug)]
pub struct Executor;

impl Executor {
    /// Runs `rounds` rounds of the beeping protocol defined by `parties`
    /// over `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != channel.num_parties()` or the party
    /// slice is empty.
    pub fn run<P: Party>(
        parties: &mut [P],
        channel: &mut dyn Channel,
        rounds: usize,
    ) -> ExecutionStats {
        assert!(!parties.is_empty(), "need at least one party");
        assert_eq!(
            parties.len(),
            channel.num_parties(),
            "channel sized for wrong number of parties"
        );
        let _span = beeps_observe::phase("channel.transmit");
        let corrupted_before = channel.corrupted_rounds();
        let mut energy = 0usize;
        for _ in 0..rounds {
            let mut or = false;
            for party in parties.iter_mut() {
                let b = party.beep();
                energy += usize::from(b);
                or |= b;
            }
            match channel.transmit(or) {
                Delivery::Shared(bit) => {
                    for party in parties.iter_mut() {
                        party.hear(bit);
                    }
                }
                Delivery::PerParty(bits) => {
                    // Uniform per-party deliveries (no flips, or everyone
                    // flipped) take the branch-free broadcast path.
                    if let Some(bit) = bits.uniform() {
                        for party in parties.iter_mut() {
                            party.hear(bit);
                        }
                    } else {
                        for (i, party) in parties.iter_mut().enumerate() {
                            party.hear(bits.get(i));
                        }
                    }
                }
                Delivery::Sparse(sparse) => {
                    if let Some(bit) = sparse.uniform() {
                        for party in parties.iter_mut() {
                            party.hear(bit);
                        }
                    } else {
                        // Merge against the sorted flip list with a
                        // cursor instead of a per-party bit lookup.
                        let base = sparse.base();
                        let mut flips = sparse.flips().iter().peekable();
                        for (i, party) in parties.iter_mut().enumerate() {
                            let flipped = flips.next_if(|&&p| p as usize == i).is_some();
                            party.hear(base ^ flipped);
                        }
                    }
                }
            }
        }
        ExecutionStats {
            rounds,
            energy,
            corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        }
    }

    /// Like [`Executor::run`], but records the execution into `metrics`:
    ///
    /// * counters `channel.rounds`, `channel.energy`,
    ///   `channel.energy.party.<i>`, `channel.corrupted_rounds`, and the
    ///   flip-direction split `channel.flips.up` (a silent round heard as
    ///   a beep) / `channel.flips.down` (a beep silenced for someone);
    /// * one event per corrupted round (`channel.flip.up` /
    ///   `channel.flip.down`, anchored to the channel's absolute round
    ///   index) into the bounded event ring.
    ///
    /// Everything recorded is a pure function of the parties, channel,
    /// and seed — safe to aggregate across deterministic trials.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != channel.num_parties()` or the party
    /// slice is empty.
    pub fn run_with_metrics<P: Party>(
        parties: &mut [P],
        channel: &mut dyn Channel,
        rounds: usize,
        metrics: &mut MetricsRegistry,
    ) -> ExecutionStats {
        assert!(!parties.is_empty(), "need at least one party");
        assert_eq!(
            parties.len(),
            channel.num_parties(),
            "channel sized for wrong number of parties"
        );
        let _span = beeps_observe::phase("channel.transmit");
        let corrupted_before = channel.corrupted_rounds();
        // Intern every counter before the round loop: the loop itself
        // performs no name lookups, formatting, or allocation (enforced
        // by the `hot-path-alloc` beeps-lint rule for this file).
        let party_energy = metrics.indexed_handles("channel.energy.party", parties.len());
        let flips_down = metrics.counter_handle("channel.flips.down");
        let flips_up = metrics.counter_handle("channel.flips.up");
        let mut energy = 0usize;
        for _ in 0..rounds {
            let mut or = false;
            for (party, &handle) in parties.iter_mut().zip(&party_energy) {
                if party.beep() {
                    energy += 1;
                    metrics.inc_handle(handle, 1);
                    or = true;
                }
            }
            let delivery = channel.transmit(or);
            let round = (channel.rounds() - 1) as u64;
            // Uniform deliveries — always for shared-noise regimes, and
            // the overwhelmingly common case under independent noise —
            // need one corruption check, not one per party.
            let corrupted = match delivery.uniform() {
                Some(bit) => {
                    for party in parties.iter_mut() {
                        party.hear(bit);
                    }
                    bit != or
                }
                None => {
                    match &delivery {
                        Delivery::PerParty(bits) => {
                            for (i, party) in parties.iter_mut().enumerate() {
                                party.hear(bits.get(i));
                            }
                        }
                        Delivery::Sparse(sparse) => {
                            let base = sparse.base();
                            let mut flips = sparse.flips().iter().peekable();
                            for (i, party) in parties.iter_mut().enumerate() {
                                let flipped = flips.next_if(|&&p| p as usize == i).is_some();
                                party.hear(base ^ flipped);
                            }
                        }
                        Delivery::Shared(_) => {
                            unreachable!("shared deliveries are always uniform")
                        }
                    }
                    // Divergent bits mean both values occurred, so some
                    // party necessarily heard the OR flipped.
                    true
                }
            };
            if corrupted {
                // A corrupted round flips in exactly one direction: the
                // true OR was either silenced (down) or fabricated (up).
                if or {
                    metrics.inc_handle(flips_down, 1);
                    metrics.event("channel.flip.down", round, 0);
                } else {
                    metrics.inc_handle(flips_up, 1);
                    metrics.event("channel.flip.up", round, 1);
                }
            }
        }
        let stats = ExecutionStats {
            rounds,
            energy,
            corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        };
        metrics.inc("channel.rounds", rounds as u64);
        metrics.inc("channel.energy", energy as u64);
        metrics.inc("channel.corrupted_rounds", stats.corrupted_rounds as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ScriptedChannel, StochasticChannel};
    use crate::noise::NoiseModel;

    /// Counts rounds; beeps on multiples of its stride.
    struct Strider {
        stride: usize,
        round: usize,
        heard: Vec<bool>,
    }

    impl Party for Strider {
        fn beep(&mut self) -> bool {
            self.round.is_multiple_of(self.stride)
        }

        fn hear(&mut self, heard: bool) {
            self.round += 1;
            self.heard.push(heard);
        }
    }

    fn striders(strides: &[usize]) -> Vec<Strider> {
        strides
            .iter()
            .map(|&stride| Strider {
                stride,
                round: 0,
                heard: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn executor_computes_or_per_round() {
        let mut parties = striders(&[2, 3]);
        let mut channel = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let stats = Executor::run(&mut parties, &mut channel, 6);
        // Rounds:        0     1      2     3      4     5
        // stride 2 beeps t     f      t     f      t     f
        // stride 3 beeps t     f      f     t      f     f
        let expect = vec![true, false, true, true, true, false];
        assert_eq!(parties[0].heard, expect);
        assert_eq!(parties[1].heard, expect);
        assert_eq!(stats.rounds, 6);
        assert_eq!(stats.energy, 3 + 2);
        assert_eq!(stats.corrupted_rounds, 0);
    }

    #[test]
    fn executor_reports_corruptions_from_script() {
        let mut parties = striders(&[1]);
        let mut channel = ScriptedChannel::new(1, vec![true, true, false]);
        let stats = Executor::run(&mut parties, &mut channel, 3);
        assert_eq!(stats.corrupted_rounds, 2);
        assert_eq!(parties[0].heard, vec![false, false, true]);
    }

    #[test]
    fn stats_accumulate_across_runs_on_same_channel() {
        let mut channel = ScriptedChannel::new(1, vec![true, false, true]);
        let mut parties = striders(&[1]);
        let s1 = Executor::run(&mut parties, &mut channel, 2);
        let s2 = Executor::run(&mut parties, &mut channel, 1);
        assert_eq!(s1.corrupted_rounds, 1);
        assert_eq!(s2.corrupted_rounds, 1);
    }

    #[test]
    #[should_panic(expected = "wrong number of parties")]
    fn size_mismatch_panics() {
        let mut parties = striders(&[1, 1]);
        let mut channel = StochasticChannel::new(3, NoiseModel::Noiseless, 0);
        Executor::run(&mut parties, &mut channel, 1);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn empty_parties_panics() {
        let mut parties: Vec<Strider> = Vec::new();
        let mut channel = StochasticChannel::new(1, NoiseModel::Noiseless, 0);
        Executor::run(&mut parties, &mut channel, 1);
    }

    #[test]
    fn metrics_run_matches_plain_run() {
        let mut plain = striders(&[2, 3]);
        let noise = NoiseModel::Independent { epsilon: 0.05 };
        let mut ch1 = StochasticChannel::new(2, noise, 7);
        let want = Executor::run(&mut plain, &mut ch1, 64);

        let mut observed = striders(&[2, 3]);
        let mut ch2 = StochasticChannel::new(2, noise, 7);
        let mut metrics = MetricsRegistry::new();
        let got = Executor::run_with_metrics(&mut observed, &mut ch2, 64, &mut metrics);

        assert_eq!(got, want, "instrumentation must not perturb the run");
        assert_eq!(plain[0].heard, observed[0].heard);
        assert_eq!(metrics.counter("channel.rounds"), 64);
        assert_eq!(metrics.counter("channel.energy"), want.energy as u64);
        assert_eq!(
            metrics.counter("channel.corrupted_rounds"),
            want.corrupted_rounds as u64
        );
        assert_eq!(
            metrics.counter("channel.energy.party.000")
                + metrics.counter("channel.energy.party.001"),
            want.energy as u64
        );
    }

    #[test]
    fn metrics_split_flip_directions() {
        // Stride 2 beeps rounds 0 and 2; the script flips rounds 1 and 2:
        // round 1 sent=false heard=true (up), round 2 sent=true heard=false
        // (down).
        let mut parties = striders(&[2]);
        let mut channel = ScriptedChannel::new(1, vec![false, true, true]);
        let mut metrics = MetricsRegistry::new();
        let stats = Executor::run_with_metrics(&mut parties, &mut channel, 3, &mut metrics);
        assert_eq!(stats.corrupted_rounds, 2);
        assert_eq!(metrics.counter("channel.flips.down"), 1);
        assert_eq!(metrics.counter("channel.flips.up"), 1);
        let labels: Vec<&str> = metrics.events().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["channel.flip.up", "channel.flip.down"]);
    }

    #[test]
    fn noiseless_run_records_zero_flips() {
        let mut parties = striders(&[2, 3]);
        let mut channel = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let mut metrics = MetricsRegistry::new();
        Executor::run_with_metrics(&mut parties, &mut channel, 32, &mut metrics);
        assert_eq!(metrics.counter("channel.flips.up"), 0);
        assert_eq!(metrics.counter("channel.flips.down"), 0);
        assert_eq!(metrics.counter("channel.corrupted_rounds"), 0);
        assert_eq!(metrics.events().recorded(), 0);
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let mut parties = striders(&[1]);
        let mut channel = StochasticChannel::new(1, NoiseModel::Noiseless, 0);
        let stats = Executor::run(&mut parties, &mut channel, 0);
        assert_eq!(stats, ExecutionStats::default());
    }
}
