//! A word-packed bit vector for transcripts and per-party deliveries.
//!
//! The simulation stack moves a lot of bits: channel deliveries (one bit
//! per party per round under independent noise), transcripts, and noise
//! masks. [`BitVec`] stores them 64 to a machine word, with an inline
//! two-word buffer so vectors of up to 128 bits — every per-party
//! delivery at realistic `n` — never touch the heap.
//!
//! The type is `&[bool]`-compatible at the edges ([`BitVec::from_bools`],
//! [`BitVec::to_bools`], `PartialEq` against bool slices, `FromIterator`),
//! so call sites built around `Vec<bool>` can migrate incrementally; the
//! word-level views ([`BitVec::words`], [`BitVec::uniform`],
//! [`BitVec::count_ones`]) are what the hot paths use.

/// Number of 64-bit words stored inline before spilling to the heap.
const INLINE_WORDS: usize = 2;

#[derive(Clone, Debug)]
enum Store {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A growable bit vector packed 64 bits to a word.
///
/// Bits past `len` in the last word are always zero, so word-level
/// comparisons and population counts need no masking.
///
/// # Examples
///
/// ```
/// use beeps_channel::BitVec;
///
/// let bits = BitVec::from_bools(&[true, false, true]);
/// assert_eq!(bits.len(), 3);
/// assert!(bits.get(0) && !bits.get(1));
/// assert_eq!(bits.count_ones(), 2);
/// assert_eq!(bits, [true, false, true].as_slice());
/// ```
#[derive(Clone, Debug)]
pub struct BitVec {
    store: Store,
    len: usize,
}

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

impl BitVec {
    /// An empty bit vector (inline storage, no allocation).
    #[inline]
    #[must_use]
    pub fn new() -> Self {
        Self {
            store: Store::Inline([0; INLINE_WORDS]),
            len: 0,
        }
    }

    /// An empty bit vector with room for `bits` bits before reallocating.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        if bits <= INLINE_WORDS * 64 {
            Self::new()
        } else {
            Self {
                store: Store::Heap(Vec::with_capacity(words_for(bits))),
                len: 0,
            }
        }
    }

    /// `len` copies of `bit`.
    #[must_use]
    pub fn broadcast(len: usize, bit: bool) -> Self {
        let mut v = Self::with_capacity(len);
        let words = words_for(len);
        let fill = if bit { u64::MAX } else { 0 };
        {
            let w = v.words_storage_mut(words);
            for x in w.iter_mut() {
                *x = fill;
            }
        }
        v.len = len;
        v.mask_tail();
        v
    }

    /// Packs a bool slice.
    #[must_use]
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::with_capacity(bools.len());
        let words = words_for(bools.len());
        {
            let w = v.words_storage_mut(words);
            for (i, &b) in bools.iter().enumerate() {
                if b {
                    w[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        v.len = bools.len();
        v
    }

    /// Builds a bit vector of `len` bits directly from packed words.
    ///
    /// Bits of `words` beyond `len` are cleared; missing words are
    /// treated as zero.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds more words than `len` needs.
    #[must_use]
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(
            words.len() <= words_for(len),
            "{} words exceed the {} needed for {len} bits",
            words.len(),
            words_for(len)
        );
        let mut v = Self::with_capacity(len);
        {
            let w = v.words_storage_mut(words_for(len));
            w[..words.len()].copy_from_slice(words);
        }
        v.len = len;
        v.mask_tail();
        v
    }

    /// `len` bits where bit `i` is `base` XOR bit `i` of `flips` —
    /// builds a channel delivery from a flip mask and the broadcast bit
    /// in one pass over words, without intermediate allocation for
    /// `len ≤ 128`.
    ///
    /// Missing words of `flips` are treated as zero (no flip).
    ///
    /// # Panics
    ///
    /// Panics if `flips` holds more words than `len` needs.
    #[must_use]
    pub fn from_flips(flips: &[u64], base: bool, len: usize) -> Self {
        assert!(
            flips.len() <= words_for(len),
            "{} words exceed the {} needed for {len} bits",
            flips.len(),
            words_for(len)
        );
        let fill = if base { u64::MAX } else { 0 };
        let mut v = Self::with_capacity(len);
        {
            let w = v.words_storage_mut(words_for(len));
            for (i, x) in w.iter_mut().enumerate() {
                *x = fill ^ flips.get(i).copied().unwrap_or(0);
            }
        }
        v.len = len;
        v.mask_tail();
        v
    }

    /// Number of bits.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words; bits past [`BitVec::len`] are zero.
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[u64] {
        match &self.store {
            Store::Inline(w) => &w[..words_for(self.len).min(INLINE_WORDS)],
            Store::Heap(w) => &w[..words_for(self.len)],
        }
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        let word = match &self.store {
            Store::Inline(w) => w[i / 64],
            Store::Heap(w) => w[i / 64],
        };
        (word >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        let w = match &mut self.store {
            Store::Inline(w) => &mut w[i / 64],
            Store::Heap(w) => &mut w[i / 64],
        };
        if bit {
            *w |= 1u64 << (i % 64);
        } else {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.reserve_words(words_for(i + 1));
        self.len = i + 1;
        if bit {
            self.set(i, true);
        }
    }

    /// Shortens to `len` bits (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
            // Clear the dropped range so the tail invariant holds.
            let keep = words_for(len);
            match &mut self.store {
                Store::Inline(w) => {
                    for x in w.iter_mut().skip(keep) {
                        *x = 0;
                    }
                }
                Store::Heap(w) => {
                    for x in w.iter_mut().skip(keep) {
                        *x = 0;
                    }
                }
            }
            self.mask_tail();
        }
    }

    /// Removes all bits, keeping the allocation.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Number of set bits.
    #[inline]
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    #[inline]
    #[must_use]
    pub fn any(&self) -> bool {
        self.words().iter().any(|&w| w != 0)
    }

    /// `Some(bit)` if every stored bit equals `bit` (the empty vector is
    /// uniformly `false` by convention), `None` if the bits diverge.
    ///
    /// This is the executor's fast path: one word-compare per 64 parties
    /// decides whether a per-party delivery needs per-party handling.
    #[inline]
    #[must_use]
    pub fn uniform(&self) -> Option<bool> {
        let ones = self.count_ones();
        if ones == 0 {
            Some(false)
        } else if ones == self.len {
            Some(true)
        } else {
            None
        }
    }

    /// Iterates the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpacks into a `Vec<bool>` — the adapter for `&[bool]` APIs.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            let last = self.len / 64;
            let mask = (1u64 << rem) - 1;
            match &mut self.store {
                Store::Inline(w) => w[last] &= mask,
                Store::Heap(w) => {
                    if last < w.len() {
                        w[last] &= mask;
                    }
                }
            }
        }
    }

    /// Ensures backing storage for at least `words` words, zero-filled.
    fn reserve_words(&mut self, words: usize) {
        match &mut self.store {
            Store::Inline(w) => {
                if words > INLINE_WORDS {
                    let mut heap = Vec::with_capacity(words);
                    heap.extend_from_slice(w);
                    heap.resize(words, 0);
                    self.store = Store::Heap(heap);
                }
            }
            Store::Heap(w) => {
                if words > w.len() {
                    w.resize(words, 0);
                }
            }
        }
    }

    /// Zero-extended mutable word storage of exactly `words` words.
    fn words_storage_mut(&mut self, words: usize) -> &mut [u64] {
        self.reserve_words(words);
        match &mut self.store {
            Store::Inline(w) => &mut w[..words],
            Store::Heap(w) => &mut w[..words],
        }
    }
}

impl Default for BitVec {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for BitVec {}

impl PartialEq<[bool]> for BitVec {
    fn eq(&self, other: &[bool]) -> bool {
        self.len == other.len() && self.iter().zip(other.iter()).all(|(a, &b)| a == b)
    }
}

impl PartialEq<&[bool]> for BitVec {
    fn eq(&self, other: &&[bool]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<bool>> for BitVec {
    fn eq(&self, other: &Vec<bool>) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<BitVec> for [bool] {
    fn eq(&self, other: &BitVec) -> bool {
        other == self
    }
}

impl From<&[bool]> for BitVec {
    fn from(bools: &[bool]) -> Self {
        Self::from_bools(bools)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut v = Self::new();
        for bit in iter {
            v.push(bit);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for bit in iter {
            self.push(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_bools() {
        for len in [0usize, 1, 7, 63, 64, 65, 128, 129, 200] {
            let bools: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let packed = BitVec::from_bools(&bools);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_bools(), bools, "len {len}");
            assert_eq!(packed, bools.as_slice());
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(packed.get(i), b);
            }
        }
    }

    #[test]
    fn push_crosses_word_and_inline_boundaries() {
        let mut v = BitVec::new();
        let mut reference = Vec::new();
        for i in 0..300 {
            let bit = i % 5 != 0;
            v.push(bit);
            reference.push(bit);
        }
        assert_eq!(v, reference.as_slice());
        assert_eq!(v.count_ones(), reference.iter().filter(|&&b| b).count());
    }

    #[test]
    fn broadcast_is_uniform() {
        for len in [1usize, 64, 65, 130] {
            let ones = BitVec::broadcast(len, true);
            assert_eq!(ones.uniform(), Some(true), "len {len}");
            assert_eq!(ones.count_ones(), len);
            let zeros = BitVec::broadcast(len, false);
            assert_eq!(zeros.uniform(), Some(false));
            assert!(!zeros.any());
        }
    }

    #[test]
    fn uniform_detects_divergence() {
        let mut v = BitVec::broadcast(70, true);
        assert_eq!(v.uniform(), Some(true));
        v.set(69, false);
        assert_eq!(v.uniform(), None);
        assert_eq!(BitVec::new().uniform(), Some(false));
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(&[u64::MAX], 10);
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 10);
        assert_eq!(v.words(), &[(1u64 << 10) - 1]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn from_words_rejects_excess_words() {
        let _ = BitVec::from_words(&[0, 0], 64);
    }

    #[test]
    fn from_flips_xors_against_broadcast() {
        // base=true: everyone hears 1 except flipped parties.
        let v = BitVec::from_flips(&[0b101], true, 5);
        assert_eq!(v, [false, true, false, true, true].as_slice());
        // base=false: only flipped parties hear 1.
        let v = BitVec::from_flips(&[0b101], false, 5);
        assert_eq!(v, [true, false, true, false, false].as_slice());
        // Missing words mean "no flip".
        let v = BitVec::from_flips(&[], true, 70);
        assert_eq!(v.uniform(), Some(true));
        assert_eq!(v.count_ones(), 70);
    }

    #[test]
    fn truncate_clears_dropped_bits() {
        let mut v = BitVec::broadcast(130, true);
        v.truncate(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 100);
        // Re-grow: the dropped range must read as zero.
        for _ in 0..30 {
            v.push(false);
        }
        assert_eq!(v.count_ones(), 100);
        v.clear();
        assert!(v.is_empty() && !v.any());
    }

    #[test]
    fn set_and_get_are_word_exact() {
        let mut v = BitVec::broadcast(128, false);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(127, true);
        assert_eq!(v.words(), &[(1 << 63) | 1, (1 << 63) | 1]);
        v.set(63, false);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn equality_is_length_sensitive() {
        let a = BitVec::from_bools(&[true, false]);
        let b = BitVec::from_bools(&[true, false, false]);
        assert_ne!(a, b);
        assert_eq!(a, BitVec::from_bools(&[true, false]));
        assert_eq!([true, false].as_slice(), &a);
    }

    #[test]
    fn from_iterator_and_extend() {
        let v: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 50);
        let mut w = BitVec::new();
        w.extend(v.iter());
        assert_eq!(v, w);
    }

    #[test]
    fn out_of_range_get_panics() {
        let v = BitVec::from_bools(&[true]);
        assert!(std::panic::catch_unwind(|| v.get(1)).is_err());
    }
}
