//! Blackwell's binary multiplication channel — the two-party ancestor of
//! the beeping model (§1 of the paper).
//!
//! In the multiplication channel, each of two parties sends a bit per
//! round and both receive the **AND** of the two bits. The paper points
//! out that the beeping model is its multi-party generalization: viewing
//! a beep as sending 0 and silence as sending 1 (De Morgan), the OR of
//! beeps becomes the AND of sent bits. This module makes that
//! correspondence executable: a [`MultiplicationChannel`] implemented *on
//! top of* any two-party beeping [`Channel`], so every noise regime (and
//! every test double) of the beeping substrate is inherited.

use crate::channel::{Channel, StochasticChannel};
use crate::noise::NoiseModel;

/// A two-party binary multiplication (AND) channel built over a beeping
/// channel via De Morgan's identity `a ∧ b = ¬(¬a ∨ ¬b)`.
///
/// # Examples
///
/// ```
/// use beeps_channel::{MultiplicationChannel, NoiseModel};
///
/// let mut ch = MultiplicationChannel::noiseless(7);
/// assert!(ch.transmit(true, true));
/// assert!(!ch.transmit(true, false));
/// assert!(!ch.transmit(false, false));
/// ```
#[derive(Debug)]
pub struct MultiplicationChannel<C = StochasticChannel> {
    inner: C,
}

impl MultiplicationChannel<StochasticChannel> {
    /// A noiseless multiplication channel.
    pub fn noiseless(seed: u64) -> Self {
        Self::over(StochasticChannel::new(2, NoiseModel::Noiseless, seed))
    }

    /// A multiplication channel whose underlying beeping channel applies
    /// `model`.
    ///
    /// Note the noise acts on the *beeping* layer: a `0→1` beep flip
    /// surfaces here as an `AND`-output `1→0` flip, and vice versa —
    /// exactly the inversion the De Morgan view predicts.
    ///
    /// # Panics
    ///
    /// Panics if the noise parameter is invalid.
    pub fn noisy(model: NoiseModel, seed: u64) -> Self {
        Self::over(StochasticChannel::new(2, model, seed))
    }
}

impl<C: Channel> MultiplicationChannel<C> {
    /// Wraps an arbitrary two-party beeping channel.
    ///
    /// # Panics
    ///
    /// Panics unless the channel was built for exactly two parties.
    pub fn over(inner: C) -> Self {
        assert_eq!(
            inner.num_parties(),
            2,
            "the multiplication channel is a two-party object"
        );
        Self { inner }
    }

    /// One round: both parties send a bit, the AND comes back (possibly
    /// corrupted by the underlying beeping noise).
    pub fn transmit(&mut self, a: bool, b: bool) -> bool {
        // a AND b == NOT (NOT a OR NOT b): send negated bits as beeps.
        let or_of_negations = !a || !b;
        let heard = self.inner.transmit(or_of_negations).heard_by(0);
        !heard
    }

    /// Rounds used so far.
    pub fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    /// Gives back the wrapped beeping channel.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ScriptedChannel;

    #[test]
    fn computes_and_noiselessly() {
        let mut ch = MultiplicationChannel::noiseless(0);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(ch.transmit(a, b), a && b);
        }
        assert_eq!(ch.rounds(), 4);
    }

    #[test]
    fn beeping_up_noise_becomes_and_down_noise() {
        // 0->1 flips on the OR layer can only turn AND outputs 1 -> 0.
        let mut ch =
            MultiplicationChannel::noisy(NoiseModel::OneSidedZeroToOne { epsilon: 0.5 }, 3);
        let mut dropped = 0u32;
        for _ in 0..2_000 {
            // true AND true = 1; noise may erase it.
            if !ch.transmit(true, true) {
                dropped += 1;
            }
        }
        assert!(dropped > 800, "expected ~half dropped, got {dropped}");
        // ...but a true 0 output is never lifted to 1.
        let mut lifted = 0u32;
        for _ in 0..2_000 {
            if ch.transmit(true, false) {
                lifted += 1;
            }
        }
        assert_eq!(lifted, 0);
    }

    #[test]
    fn works_over_scripted_channels() {
        // Round 1 flipped at the beeping layer: AND output inverts.
        let inner = ScriptedChannel::new(2, vec![false, true]);
        let mut ch = MultiplicationChannel::over(inner);
        assert!(ch.transmit(true, true));
        assert!(!ch.transmit(true, true)); // corrupted
    }

    #[test]
    fn equality_testing_over_the_and_channel() {
        // A classic multiplication-channel protocol: parties hold bits
        // x, y and learn whether x == y using two rounds:
        // round 1 computes x AND y, round 2 computes (!x) AND (!y);
        // equality iff either round returns 1.
        let mut ch = MultiplicationChannel::noiseless(5);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let both_one = ch.transmit(x, y);
            let both_zero = ch.transmit(!x, !y);
            assert_eq!(both_one || both_zero, x == y);
        }
    }

    #[test]
    #[should_panic(expected = "two-party")]
    fn rejects_wider_channels() {
        let inner = ScriptedChannel::new(3, vec![]);
        let _ = MultiplicationChannel::over(inner);
    }
}
