//! Channel implementations: stochastic, scripted (failure injection), and
//! the shared-randomness reduction of A.1.2.
//!
//! The stochastic channel batches its noise: instead of one Bernoulli
//! draw per (party and) round, it draws the *gaps between flips* from
//! the geometric distribution — the classic skip-sampling identity
//! `P(gap = k) = ε(1−ε)^k` — so RNG work scales with the number of
//! flips, not the number of rounds. The resulting flip process is
//! distribution-identical to per-round sampling (pinned by chi-squared
//! tests against the reference samplers in [`crate::noise`]), but the
//! *stream* of RNG draws differs, so seeded golden numbers change when
//! switching between the two.
//!
//! Independent-noise flips land in per-round *buckets* of flipped-party
//! indices, delivered as [`Delivery::Sparse`] when a round's flip count
//! stays below [`sparse_crossover`] and expanded to a dense
//! [`Delivery::PerParty`] row above it — so both delivery work and
//! memory traffic scale with `εn` instead of `n` in the common lightly
//! corrupted round.

use crate::bits::BitVec;
use crate::noise::{Delivery, NoiseModel};
use crate::sparse::{sparse_crossover, SparseDelivery};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Rounds covered by one independent-noise mask block.
const BLOCK_ROUNDS: usize = 64;

/// Draws the number of clean eligible rounds before the next flip of a
/// Bernoulli(ε) stream: geometric on `{0, 1, …}` with
/// `P(k) = ε(1−ε)^k`, via inversion of one uniform draw. Returns
/// `u64::MAX` ("never") for ε ≤ 0 without consuming randomness.
pub(crate) fn geometric_gap(epsilon: f64, rng: &mut StdRng) -> u64 {
    if epsilon <= 0.0 {
        return u64::MAX;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    // floor(ln(1−U) / ln(1−ε)): U ∈ [1−(1−ε)^k, 1−(1−ε)^{k+1}) ⇒ gap k.
    let gap = ((1.0 - u).ln() / (1.0 - epsilon).ln()).floor();
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

/// Advances a flip position by one round plus a fresh geometric gap,
/// saturating at "never".
fn next_flip_position(pos: u64, epsilon: f64, rng: &mut StdRng) -> u64 {
    let gap = geometric_gap(epsilon, rng);
    if gap == u64::MAX {
        u64::MAX
    } else {
        pos.saturating_add(gap + 1)
    }
}

/// Files party `p`'s next flip (an absolute round index) into the
/// calendar under the block it lands in. `u64::MAX` means "never" and
/// files nothing; a position that saturated near `u64::MAX` is likewise
/// unreachable in any real run.
fn calendar_insert(
    calendar: &mut std::collections::BTreeMap<u64, Vec<(u32, u8)>>,
    p: u32,
    abs_round: u64,
) {
    if abs_round == u64::MAX {
        return;
    }
    calendar
        .entry(abs_round / BLOCK_ROUNDS as u64)
        .or_default()
        .push((p, (abs_round % BLOCK_ROUNDS as u64) as u8));
}

/// Draws each party's first flip round — ascending party order, exactly
/// one geometric draw per party, the construction-time RNG contract —
/// and files them into a cleared calendar.
fn seed_calendar(
    calendar: &mut std::collections::BTreeMap<u64, Vec<(u32, u8)>>,
    n: usize,
    eps: f64,
    rng: &mut StdRng,
) {
    calendar.clear();
    for p in 0..n {
        calendar_insert(calendar, p as u32, geometric_gap(eps, rng));
    }
}

/// The independent-noise skip sampler: per-party geometric skips
/// expanded into 64-round blocks of per-round flipped-party buckets.
///
/// Extracted from the [`StochasticChannel`] so the lane-sliced channel
/// ([`crate::lanes::IndependentLaneChannel`]) can run one of these per
/// lane with the *exact* construction-time and refill-time RNG draw
/// order of the scalar channel — the bitwise-equivalence contract every
/// lane engine is pinned against.
#[derive(Debug)]
pub(crate) struct IndependentSampler {
    /// `buckets[r]`: ascending indices of the parties flipped in
    /// block round `r`.
    buckets: Vec<Vec<u32>>,
    /// Next unconsumed round offset in the block; `BLOCK_ROUNDS`
    /// forces a refill.
    offset: usize,
    /// Flip calendar: absolute block index → the parties whose
    /// *next* flip lands in that block, as `(party, round offset
    /// within the block)`. Each party appears at most once across
    /// the whole calendar, so a block refill touches only the
    /// parties that actually flip in it — O(εn) amortized per
    /// round instead of the O(n) per-block skip walk it replaced.
    /// The RNG stream is unchanged: gap draws happen exactly when
    /// a party's position crosses the refilled block, in ascending
    /// party order, which is precisely when (and in which order)
    /// the per-party walk drew them.
    calendar: std::collections::BTreeMap<u64, Vec<(u32, u8)>>,
    /// Absolute index of the next block to refill.
    block: u64,
}

impl IndependentSampler {
    /// Seeds the flip calendar with one geometric draw per party — the
    /// construction-time RNG contract of `StochasticChannel::new` under
    /// independent noise.
    pub(crate) fn new(n: usize, epsilon: f64, rng: &mut StdRng) -> Self {
        let mut calendar = std::collections::BTreeMap::new();
        seed_calendar(&mut calendar, n, epsilon, rng);
        Self {
            buckets: vec![Vec::new(); BLOCK_ROUNDS],
            offset: BLOCK_ROUNDS,
            calendar,
            block: 0,
        }
    }

    /// Returns the sampler to its just-constructed state (drawing from
    /// `rng` in construction order) while reusing the bucket
    /// allocations. Stale buckets are ignored because the reset offset
    /// forces a bucket-clearing refill before the first delivery.
    pub(crate) fn restart(&mut self, n: usize, epsilon: f64, rng: &mut StdRng) {
        self.offset = BLOCK_ROUNDS;
        self.block = 0;
        seed_calendar(&mut self.calendar, n, epsilon, rng);
    }

    /// Advances one round and returns the bucket of parties flipped in
    /// it (ascending). The caller may `mem::take` the bucket; a taken
    /// bucket is simply replaced by an empty one.
    pub(crate) fn advance(&mut self, epsilon: f64, rng: &mut StdRng) -> &mut Vec<u32> {
        if self.offset == BLOCK_ROUNDS {
            self.refill(epsilon, rng);
        }
        let bucket = &mut self.buckets[self.offset];
        self.offset += 1;
        bucket
    }

    /// Rebuilds the flip buckets for the next block from the flip
    /// calendar.
    ///
    /// Only the parties whose next flip lands in this block are
    /// touched — O(εn) amortized per round — but they are processed in
    /// ascending party order with chained gap draws, exactly the points
    /// at which the full per-party skip walk this replaced consumed the
    /// RNG, so seeded flip sets are bitwise unchanged. Ascending party
    /// order also leaves every bucket sorted as [`SparseDelivery::new`]
    /// requires.
    fn refill(&mut self, epsilon: f64, rng: &mut StdRng) {
        for bucket in self.buckets.iter_mut() {
            bucket.clear();
        }
        if let Some(mut due) = self.calendar.remove(&self.block) {
            due.sort_unstable();
            let base = self.block * BLOCK_ROUNDS as u64;
            for (p, off) in due {
                let mut pos = u64::from(off);
                while pos < BLOCK_ROUNDS as u64 {
                    self.buckets[pos as usize].push(p);
                    pos = next_flip_position(pos, epsilon, rng);
                }
                calendar_insert(&mut self.calendar, p, base.saturating_add(pos));
            }
        }
        self.block += 1;
        self.offset = 0;
    }
}

/// Batched noise state of a [`StochasticChannel`].
#[derive(Debug)]
enum Sampler {
    /// No randomness consumed, ever.
    Noiseless,
    /// Shared-output regimes: one geometric countdown over *eligible*
    /// rounds (every round for `Correlated`; silent rounds for `0→1`;
    /// beeping rounds for `1→0`).
    Shared {
        /// Eligible rounds remaining before the next flip.
        skip: u64,
    },
    /// Independent noise: the skip sampler plus the channel-side
    /// delivery scratch.
    Independent {
        /// Per-round flip buckets behind the skip calendar.
        skipper: IndependentSampler,
        /// Scratch row (`⌈n/64⌉` words) for expanding a bucket into a
        /// dense delivery.
        dense_row: Vec<u64>,
        /// Route every delivery through the dense path (see
        /// [`StochasticChannel::set_dense_deliveries`]).
        force_dense: bool,
    },
}

impl Sampler {
    fn new(n: usize, model: NoiseModel, rng: &mut StdRng) -> Self {
        let eps = model.epsilon();
        match model {
            NoiseModel::Noiseless => Sampler::Noiseless,
            NoiseModel::Correlated { .. }
            | NoiseModel::OneSidedZeroToOne { .. }
            | NoiseModel::OneSidedOneToZero { .. } => Sampler::Shared {
                skip: geometric_gap(eps, rng),
            },
            NoiseModel::Independent { .. } => Sampler::Independent {
                skipper: IndependentSampler::new(n, eps, rng),
                dense_row: vec![0; n.div_ceil(64)],
                force_dense: false,
            },
        }
    }
}

/// A beeping channel: consumes the true OR of a round and produces what the
/// parties hear.
///
/// Implementations are stateful (they own their randomness or script) so
/// that executions are reproducible from a seed.
pub trait Channel {
    /// Number of parties attached to the channel.
    fn num_parties(&self) -> usize;

    /// Delivers one round: takes the true OR of the sent bits and returns
    /// the (possibly corrupted) delivery.
    fn transmit(&mut self, true_or: bool) -> Delivery;

    /// Number of rounds delivered so far.
    fn rounds(&self) -> usize;

    /// Number of corrupted deliveries so far. For independent noise, a
    /// round counts as corrupted if *any* party's copy differs from the
    /// true OR.
    fn corrupted_rounds(&self) -> usize;
}

/// Mutable references are channels too, so channel-generic drivers like
/// [`run_protocol_over`](crate::run_protocol_over) accept a
/// `&mut dyn Channel` handed through an object-safe trait method.
impl<C: Channel + ?Sized> Channel for &mut C {
    fn num_parties(&self) -> usize {
        (**self).num_parties()
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        (**self).transmit(true_or)
    }

    fn rounds(&self) -> usize {
        (**self).rounds()
    }

    fn corrupted_rounds(&self) -> usize {
        (**self).corrupted_rounds()
    }
}

/// The standard stochastic channel: applies a [`NoiseModel`] with a seeded
/// RNG.
///
/// # Examples
///
/// ```
/// use beeps_channel::{Channel, NoiseModel, StochasticChannel};
///
/// let mut ch = StochasticChannel::new(4, NoiseModel::Noiseless, 7);
/// let d = ch.transmit(true);
/// assert_eq!(d.shared(), Some(true));
/// assert_eq!(ch.rounds(), 1);
/// assert_eq!(ch.corrupted_rounds(), 0);
/// ```
#[derive(Debug)]
pub struct StochasticChannel {
    n: usize,
    model: NoiseModel,
    rng: StdRng,
    sampler: Sampler,
    rounds: usize,
    corrupted: usize,
}

impl StochasticChannel {
    /// Creates a channel for `n` parties under `model`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the model's ε is outside `[0, 1)`.
    pub fn new(n: usize, model: NoiseModel, seed: u64) -> Self {
        assert!(n > 0, "channel needs at least one party");
        model.validate().expect("invalid noise parameter");
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = Sampler::new(n, model, &mut rng);
        Self {
            n,
            model,
            rng,
            sampler,
            rounds: 0,
            corrupted: 0,
        }
    }

    /// The noise model this channel applies.
    pub fn model(&self) -> NoiseModel {
        self.model
    }

    /// Returns the channel to the state of [`StochasticChannel::new`]
    /// with the same party count and model but a fresh `seed`, reusing
    /// the sampler's allocations (the independent-noise flip buckets
    /// and dense scratch row) — so a channel kept in a worker's scratch
    /// arena can serve many trials without per-trial allocation.
    ///
    /// Behavioral equivalence to a fresh channel is pinned by
    /// `reseeding_matches_a_fresh_channel` below: the RNG restarts from
    /// `seed` and the sampler re-draws its state in the same order as
    /// construction (stale buckets are ignored because the reset
    /// offset forces a bucket-clearing refill before the first
    /// delivery).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.rounds = 0;
        self.corrupted = 0;
        let eps = self.model.epsilon();
        match &mut self.sampler {
            Sampler::Noiseless => {}
            Sampler::Shared { skip } => *skip = geometric_gap(eps, &mut self.rng),
            Sampler::Independent { skipper, .. } => skipper.restart(self.n, eps, &mut self.rng),
        }
    }

    /// Forces every independent-noise delivery through the dense
    /// [`Delivery::PerParty`] path instead of the sparse flip-list fast
    /// path. Both representations expand the same skip-sampled flip
    /// set, so this exists for the equivalence tests and benchmarks
    /// that pin sparse-vs-dense bitwise identity; it is a no-op for
    /// shared-noise models, whose deliveries are already a single bit.
    pub fn set_dense_deliveries(&mut self, dense: bool) {
        if let Sampler::Independent { force_dense, .. } = &mut self.sampler {
            *force_dense = dense;
        }
    }
}

impl Channel for StochasticChannel {
    fn num_parties(&self) -> usize {
        self.n
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        self.rounds += 1;
        let Self {
            n,
            model,
            rng,
            sampler,
            corrupted,
            ..
        } = self;
        match sampler {
            Sampler::Noiseless => Delivery::Shared(true_or),
            Sampler::Shared { skip } => {
                // One-sided regimes only consume the countdown on rounds
                // where a flip is possible at all.
                let eligible = match model {
                    NoiseModel::Correlated { .. } => true,
                    NoiseModel::OneSidedZeroToOne { .. } => !true_or,
                    NoiseModel::OneSidedOneToZero { .. } => true_or,
                    _ => unreachable!("shared sampler only for shared noisy models"),
                };
                let flip = if eligible {
                    if *skip == 0 {
                        *skip = geometric_gap(model.epsilon(), rng);
                        true
                    } else {
                        *skip -= 1;
                        false
                    }
                } else {
                    false
                };
                if flip {
                    *corrupted += 1;
                }
                Delivery::Shared(true_or ^ flip)
            }
            Sampler::Independent {
                skipper,
                dense_row,
                force_dense,
            } => {
                let bucket = skipper.advance(model.epsilon(), rng);
                if !bucket.is_empty() {
                    *corrupted += 1;
                }
                if *force_dense || bucket.len() >= sparse_crossover(*n) {
                    for word in dense_row.iter_mut() {
                        *word = 0;
                    }
                    for &p in bucket.iter() {
                        dense_row[p as usize / 64] |= 1u64 << (p as usize % 64);
                    }
                    bucket.clear();
                    Delivery::PerParty(BitVec::from_flips(dense_row, true_or, *n))
                } else {
                    // `mem::take` hands the bucket's buffer to the
                    // delivery without copying; clean rounds move an
                    // empty Vec, so the common case allocates nothing.
                    Delivery::Sparse(SparseDelivery::new(true_or, *n, std::mem::take(bucket)))
                }
            }
        }
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn corrupted_rounds(&self) -> usize {
        self.corrupted
    }
}

/// A channel with a predetermined corruption script, used for failure
/// injection in tests: round `m` is flipped iff `flips[m]` is true
/// (rounds beyond the script are delivered noiselessly).
///
/// The flip is applied to the OR exactly like correlated noise, so every
/// party hears the same (possibly wrong) bit.
///
/// # Examples
///
/// ```
/// use beeps_channel::{Channel, ScriptedChannel};
///
/// let mut ch = ScriptedChannel::new(2, vec![true, false]);
/// assert_eq!(ch.transmit(false).shared(), Some(true)); // flipped
/// assert_eq!(ch.transmit(false).shared(), Some(false)); // clean
/// ```
#[derive(Debug)]
pub struct ScriptedChannel {
    n: usize,
    flips: Vec<bool>,
    rounds: usize,
    corrupted: usize,
}

impl ScriptedChannel {
    /// Creates a scripted channel for `n` parties.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, flips: Vec<bool>) -> Self {
        assert!(n > 0, "channel needs at least one party");
        Self {
            n,
            flips,
            rounds: 0,
            corrupted: 0,
        }
    }
}

impl Channel for ScriptedChannel {
    fn num_parties(&self) -> usize {
        self.n
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        let flip = self.flips.get(self.rounds).copied().unwrap_or(false);
        self.rounds += 1;
        if flip {
            self.corrupted += 1;
        }
        Delivery::Shared(true_or ^ flip)
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn corrupted_rounds(&self) -> usize {
        self.corrupted
    }
}

/// The shared-randomness reduction of subsection A.1.2: a two-sided
/// `ε = 1/4` correlated channel built from a one-sided `0→1` channel with
/// `ε = 1/3` plus a shared coin.
///
/// Parties run over the one-sided channel; whenever a 1 is received, the
/// shared coin downgrades it to 0 with probability 1/4. The paper shows the
/// composite behaves exactly like correlated noise with ε = 1/4:
///
/// * true OR = 1: the one-sided channel never erases it, the coin erases it
///   with probability 1/4;
/// * true OR = 0: the one-sided channel lifts it with probability 1/3, the
///   coin keeps the lift with probability 3/4, so `1/3 · 3/4 = 1/4`.
///
/// This construction is what lets Theorem C.1 (one-sided lower bound) imply
/// Theorem 1.1 (two-sided lower bound).
///
/// # Examples
///
/// ```
/// use beeps_channel::{Channel, ReducedTwoSidedChannel};
///
/// let mut ch = ReducedTwoSidedChannel::new(4, 99);
/// let _ = ch.transmit(true);
/// assert_eq!(ch.rounds(), 1);
/// ```
#[derive(Debug)]
pub struct ReducedTwoSidedChannel {
    inner: StochasticChannel,
    shared_coin: StdRng,
    corrupted: usize,
}

impl ReducedTwoSidedChannel {
    /// One-sided noise rate used by the reduction.
    pub const ONE_SIDED_EPS: f64 = 1.0 / 3.0;
    /// Downgrade probability applied by the shared coin.
    pub const DOWNGRADE_PROB: f64 = 1.0 / 4.0;
    /// Effective two-sided noise rate of the composite channel.
    pub const EFFECTIVE_EPS: f64 = 1.0 / 4.0;

    /// Creates the composite channel for `n` parties; `seed` derives both
    /// the channel noise and the shared coin.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            inner: StochasticChannel::new(
                n,
                NoiseModel::OneSidedZeroToOne {
                    epsilon: Self::ONE_SIDED_EPS,
                },
                seed,
            ),
            // Derive a distinct stream for the shared coin.
            shared_coin: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            corrupted: 0,
        }
    }
}

impl Channel for ReducedTwoSidedChannel {
    fn num_parties(&self) -> usize {
        self.inner.num_parties()
    }

    /// # Panics
    ///
    /// Panics if the inner channel returns a private delivery — impossible
    /// by construction, since `new` wraps a one-sided (shared-delivery)
    /// `StochasticChannel`.
    fn transmit(&mut self, true_or: bool) -> Delivery {
        let heard = self
            .inner
            .transmit(true_or)
            .shared()
            .expect("one-sided channel is shared");
        // The parties' post-processing with the shared coin: flip received
        // 1s down with probability 1/4.
        let processed = if heard && self.shared_coin.gen_bool(Self::DOWNGRADE_PROB) {
            false
        } else {
            heard
        };
        if processed != true_or {
            self.corrupted += 1;
        }
        Delivery::Shared(processed)
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn corrupted_rounds(&self) -> usize {
        self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stochastic_counts_corruptions() {
        let mut ch = StochasticChannel::new(3, NoiseModel::Correlated { epsilon: 0.5 }, 0);
        for _ in 0..1_000 {
            ch.transmit(false);
        }
        assert_eq!(ch.rounds(), 1_000);
        let rate = ch.corrupted_rounds() as f64 / 1_000.0;
        assert!((rate - 0.5).abs() < 0.06, "rate {rate}");
    }

    #[test]
    fn reseeding_matches_a_fresh_channel() {
        let models = [
            NoiseModel::Noiseless,
            NoiseModel::Correlated { epsilon: 0.3 },
            NoiseModel::OneSidedZeroToOne { epsilon: 0.25 },
            NoiseModel::OneSidedOneToZero { epsilon: 0.25 },
            NoiseModel::Independent { epsilon: 0.2 },
        ];
        for model in models {
            // Dirty the channel first so reseeding has real state (and,
            // for independent noise, a stale mask block) to erase.
            let mut reused = StochasticChannel::new(5, model, 0xDEAD);
            for r in 0..150 {
                reused.transmit(r % 3 == 0);
            }
            for seed in [1u64, 99] {
                reused.reseed(seed);
                assert_eq!(reused.rounds(), 0);
                assert_eq!(reused.corrupted_rounds(), 0);
                let mut fresh = StochasticChannel::new(5, model, seed);
                for r in 0..150 {
                    let true_or = r % 3 == 0;
                    assert_eq!(
                        reused.transmit(true_or),
                        fresh.transmit(true_or),
                        "delivery diverged over {model} seed {seed} round {r}"
                    );
                }
                assert_eq!(reused.corrupted_rounds(), fresh.corrupted_rounds());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        StochasticChannel::new(0, NoiseModel::Noiseless, 0);
    }

    #[test]
    #[should_panic(expected = "invalid noise")]
    fn invalid_epsilon_rejected() {
        StochasticChannel::new(2, NoiseModel::Correlated { epsilon: 2.0 }, 0);
    }

    #[test]
    fn scripted_follows_script_then_clean() {
        let mut ch = ScriptedChannel::new(2, vec![false, true]);
        assert_eq!(ch.transmit(true).shared(), Some(true));
        assert_eq!(ch.transmit(true).shared(), Some(false));
        assert_eq!(ch.transmit(false).shared(), Some(false));
        assert_eq!(ch.corrupted_rounds(), 1);
    }

    #[test]
    fn reduction_matches_quarter_noise_both_directions() {
        // A.1.2: the composite channel must flip with probability 1/4
        // regardless of the true OR.
        let trials = 200_000u32;
        let mut ch = ReducedTwoSidedChannel::new(2, 0xAB);
        let mut flips_of_one = 0u32;
        for _ in 0..trials {
            if ch.transmit(true).shared() == Some(false) {
                flips_of_one += 1;
            }
        }
        let mut ch = ReducedTwoSidedChannel::new(2, 0xCD);
        let mut flips_of_zero = 0u32;
        for _ in 0..trials {
            if ch.transmit(false).shared() == Some(true) {
                flips_of_zero += 1;
            }
        }
        let r1 = f64::from(flips_of_one) / f64::from(trials);
        let r0 = f64::from(flips_of_zero) / f64::from(trials);
        assert!((r1 - 0.25).abs() < 0.005, "1->0 rate {r1} should be 1/4");
        assert!((r0 - 0.25).abs() < 0.005, "0->1 rate {r0} should be 1/4");
    }

    #[test]
    fn independent_channel_reports_per_party() {
        let mut ch = StochasticChannel::new(8, NoiseModel::Independent { epsilon: 0.2 }, 1);
        match ch.transmit(true) {
            Delivery::PerParty(bits) => assert_eq!(bits.len(), 8),
            Delivery::Sparse(sparse) => assert_eq!(sparse.len(), 8),
            Delivery::Shared(_) => panic!("independent noise must deliver per party"),
        }
    }

    #[test]
    fn sparse_and_dense_independent_deliveries_agree() {
        // The sparse fast path and the dense-forced path expand the same
        // skip-sampled flip buckets, so deliveries must be bit-identical
        // round for round (the manual `Delivery` equality compares the
        // representations semantically).
        for n in [1usize, 5, 64, 65, 200] {
            let model = NoiseModel::Independent { epsilon: 0.2 };
            let mut sparse = StochasticChannel::new(n, model, 42);
            let mut dense = StochasticChannel::new(n, model, 42);
            dense.set_dense_deliveries(true);
            for r in 0..300 {
                let true_or = r % 3 == 0;
                let got = sparse.transmit(true_or);
                let want = dense.transmit(true_or);
                assert!(
                    matches!(want, Delivery::PerParty(_)),
                    "dense-forced channel must deliver PerParty"
                );
                assert_eq!(got, want, "n={n} round {r}");
            }
            assert_eq!(sparse.corrupted_rounds(), dense.corrupted_rounds());
        }
    }

    #[test]
    fn heavy_corruption_falls_back_to_dense_deliveries() {
        // At ε = 0.9 nearly every party flips each round, far above the
        // crossover, so the channel must choose the dense representation
        // on its own.
        let mut ch = StochasticChannel::new(64, NoiseModel::Independent { epsilon: 0.9 }, 7);
        let mut dense_rounds = 0;
        for _ in 0..100 {
            if matches!(ch.transmit(false), Delivery::PerParty(_)) {
                dense_rounds += 1;
            }
        }
        assert!(dense_rounds > 90, "only {dense_rounds}/100 rounds dense");
    }

    #[test]
    fn light_corruption_stays_sparse() {
        // At ε = 0.001 over 200 parties the crossover (12 flips) is
        // essentially never reached.
        let mut ch = StochasticChannel::new(200, NoiseModel::Independent { epsilon: 0.001 }, 7);
        for r in 0..500 {
            assert!(
                matches!(ch.transmit(r % 2 == 0), Delivery::Sparse(_)),
                "round {r} unexpectedly dense"
            );
        }
    }
}
