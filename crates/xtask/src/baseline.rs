//! The checked-in lint baseline: grandfathered findings.
//!
//! A baseline entry identifies a finding by **rule, file, and the
//! trimmed source line text** — not by line number, so unrelated edits
//! above a grandfathered site do not invalidate the baseline. The
//! workflow (DESIGN.md §8): new code must be clean; pre-existing
//! findings that cannot be fixed immediately are recorded with
//! `cargo xtask lint --write-baseline` and burned down over time. The
//! workspace baseline (`xtask-lint.baseline`) is empty today and should
//! stay that way.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// An empty baseline (nothing grandfathered).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Loads a baseline file. Lines are `rule-id<TAB>path<TAB>trimmed
    /// source text`; blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a missing file is **not** an error and
    /// yields an empty baseline.
    pub fn load(path: &Path) -> io::Result<Self> {
        if !path.exists() {
            return Ok(Self::empty());
        }
        let mut entries = BTreeSet::new();
        for line in fs::read_to_string(path)?.lines() {
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            if let (Some(rule), Some(file), Some(text)) = (parts.next(), parts.next(), parts.next())
            {
                entries.insert((rule.to_string(), file.to_string(), text.to_string()));
            }
        }
        Ok(Self { entries })
    }

    /// Whether a finding `(rule, path, trimmed line text)` is grandfathered.
    #[must_use]
    pub fn contains(&self, rule: &str, path: &str, text: &str) -> bool {
        self.entries
            .contains(&(rule.to_string(), path.to_string(), text.to_string()))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes entries for `--write-baseline` (sorted, stable).
    #[must_use]
    pub fn render(entries: &[(String, String, String)]) -> String {
        let mut sorted: Vec<_> = entries.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut out = String::from(
            "# beeps-lint baseline: grandfathered findings (rule<TAB>path<TAB>line text).\n\
             # Regenerate with `cargo xtask lint --write-baseline`; keep this empty.\n",
        );
        for (rule, file, text) in sorted {
            let _ = writeln!(out, "{rule}\t{file}\t{text}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_reload_round_trip() {
        let entries = vec![(
            "wall-clock".to_string(),
            "src/lib.rs".to_string(),
            "let t = Instant::now();".to_string(),
        )];
        let rendered = Baseline::render(&entries);
        let dir = std::env::temp_dir().join("beeps-lint-baseline-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.txt");
        fs::write(&path, rendered).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains("wall-clock", "src/lib.rs", "let t = Instant::now();"));
        assert!(!loaded.contains("wall-clock", "src/lib.rs", "other"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/beeps-lint")).unwrap();
        assert!(b.is_empty());
    }
}
