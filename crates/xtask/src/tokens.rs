//! The token-tree layer: brace/bracket/paren matching over the flat
//! [`crate::lexer`] token stream.
//!
//! A token tree is what the semantic passes walk: `Leaf` nodes index
//! into the token stream, `Group` nodes own a matched delimiter pair
//! and their children. The builder is tolerant of unbalanced input —
//! a stray close delimiter becomes a leaf, an unclosed group is closed
//! at end of file — because the linter must keep working on source
//! that does not (yet) compile.

use crate::lexer::{Delim, Tok, Token};

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token; the index points into the token stream.
    Leaf(usize),
    /// A matched delimiter pair and everything inside it.
    Group(Group),
}

/// A matched `( … )` / `[ … ]` / `{ … }` group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Delimiter kind.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter (index of the last token in
    /// the stream when the group is unclosed at EOF).
    pub close: usize,
    /// Child nodes, in source order.
    pub children: Vec<Tree>,
}

/// One open group on the builder stack: its delimiter and open-token
/// index (`None` for the bottom layer, which is the top-level forest)
/// plus the children collected so far.
type OpenLayer = (Option<(Delim, usize)>, Vec<Tree>);

/// Builds the token forest for `tokens`.
#[must_use]
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    // Stack of open groups; the bottom layer is the top-level forest.
    let mut stack: Vec<OpenLayer> = vec![(None, Vec::new())];
    for (i, t) in tokens.iter().enumerate() {
        match t.tok {
            Tok::Open(d) => stack.push((Some((d, i)), Vec::new())),
            Tok::Close(d) => {
                let matches_top = matches!(stack.last(), Some((Some((top, _)), _)) if *top == d);
                if matches_top {
                    let (meta, children) = stack.pop().expect("non-empty stack");
                    let (delim, open) = meta.expect("matched above");
                    let group = Tree::Group(Group {
                        delim,
                        open,
                        close: i,
                        children,
                    });
                    stack.last_mut().expect("root layer").1.push(group);
                } else {
                    // Mismatched close: keep it as a leaf so later
                    // delimiters can still pair up.
                    stack.last_mut().expect("root layer").1.push(Tree::Leaf(i));
                }
            }
            _ => stack.last_mut().expect("root layer").1.push(Tree::Leaf(i)),
        }
    }
    // Close any unterminated groups at EOF.
    let eof = tokens.len().saturating_sub(1);
    while stack.len() > 1 {
        let (meta, children) = stack.pop().expect("len checked");
        let (delim, open) = meta.expect("non-root layers always have meta");
        let group = Tree::Group(Group {
            delim,
            open,
            close: eof,
            children,
        });
        stack.last_mut().expect("root layer").1.push(group);
    }
    stack.pop().expect("root layer").1
}

/// Finds the index of the close delimiter matching the open delimiter
/// at `open_idx` (which must be an `Open` token), scanning the flat
/// stream with depth counting. Returns the last token index if the
/// group never closes.
#[must_use]
pub fn matching_close(tokens: &[Token], open_idx: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Flattens a group's contents into a compact text form —
/// `cfg(test)`-style, no spaces — for attribute matching.
#[must_use]
pub fn flatten(tokens: &[Token], group: &Group) -> String {
    let mut out = String::new();
    flatten_into(tokens, &group.children, &mut out);
    out
}

fn flatten_into(tokens: &[Token], trees: &[Tree], out: &mut String) {
    for t in trees {
        match t {
            Tree::Leaf(i) => match &tokens[*i].tok {
                Tok::Ident(s) => out.push_str(s),
                Tok::Lifetime(s) => {
                    out.push('\'');
                    out.push_str(s);
                }
                Tok::Int(s) | Tok::Float(s) => out.push_str(s),
                Tok::Str(_) => out.push('"'),
                Tok::Char => out.push('\''),
                Tok::Punct(c) => out.push(*c),
                Tok::Open(_) | Tok::Close(_) => {}
            },
            Tree::Group(g) => {
                let (o, c) = match g.delim {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                out.push(o);
                flatten_into(tokens, &g.children, out);
                out.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    #[test]
    fn groups_match_across_lines() {
        let lx = lexer::lex("fn f() {\n    g(1, [2, 3]);\n}\n");
        let forest = build(&lx.tokens);
        // fn, f, (), {}
        let braces = forest
            .iter()
            .filter(|t| matches!(t, Tree::Group(g) if g.delim == Delim::Brace))
            .count();
        assert_eq!(braces, 1);
    }

    #[test]
    fn tolerates_unbalanced_input() {
        let lx = lexer::lex("fn f( {\n");
        let forest = build(&lx.tokens);
        assert!(!forest.is_empty());
        let lx2 = lexer::lex(") } fn g() {}\n");
        let forest2 = build(&lx2.tokens);
        assert!(forest2
            .iter()
            .any(|t| matches!(t, Tree::Group(g) if g.delim == Delim::Brace)));
    }

    #[test]
    fn flatten_renders_attribute_args() {
        let lx = lexer::lex("#[cfg(test)]\n");
        let forest = build(&lx.tokens);
        let Some(Tree::Group(g)) = forest.iter().find(|t| matches!(t, Tree::Group(_))) else {
            panic!("expected bracket group");
        };
        assert_eq!(flatten(&lx.tokens, g), "cfg(test)");
    }
}
