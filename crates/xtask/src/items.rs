//! Item discovery over the token tree: fn / impl / mod spans,
//! attribute tracking, and exact `#[cfg(test)]` regions.
//!
//! The v1 lexer could only brace-track the idiomatic trailing
//! `#[cfg(test)] mod tests { … }`. Walking the token forest instead
//! gives every item its real span, so test regions are exact for
//! `#[cfg(test)]`/`#[test]` functions, impls, and nested modules too —
//! and the semantic passes get the structure they need: which fn body
//! a token sits in, whether that fn documents a `# Panics` contract,
//! and which impl blocks implement `Observer`.

use crate::lexer::{Delim, Lexed, Tok, Token};
use crate::tokens::{self, Tree};

/// A discovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based line span of the body braces, inclusive (`None` for
    /// body-less signatures in traits / extern blocks).
    pub body_lines: Option<(usize, usize)>,
    /// True under `#[cfg(test)]` / `#[test]` (directly or inherited).
    pub is_test: bool,
    /// True when the doc comment above declares a `# Panics` section.
    pub docs_panics: bool,
}

/// A discovered `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Trait being implemented (`Observer` for `impl Observer for X`),
    /// `None` for inherent impls.
    pub trait_name: Option<String>,
    /// 0-based line of the `impl` keyword.
    pub line: usize,
    /// Token-index span of the body brace group, inclusive of braces.
    pub body_tokens: (usize, usize),
    /// 0-based line span of the body braces, inclusive.
    pub body_lines: (usize, usize),
    /// True under `#[cfg(test)]` (directly or inherited).
    pub is_test: bool,
}

/// Everything the item pass discovered in one file.
#[derive(Debug, Default)]
pub struct Items {
    /// All `fn` items, in source order (including nested ones).
    pub fns: Vec<FnItem>,
    /// All `impl` blocks, in source order.
    pub impls: Vec<ImplItem>,
    /// Per-line test flags (0-indexed, same length as the file).
    pub test_lines: Vec<bool>,
}

impl Items {
    /// Walks the token forest of `lexed` and discovers items.
    #[must_use]
    pub fn discover(lexed: &Lexed) -> Self {
        let forest = tokens::build(&lexed.tokens);
        let mut w = Walker {
            lexed,
            items: Items {
                test_lines: vec![false; lexed.lines.len()],
                ..Items::default()
            },
        };
        w.walk(&forest, false);
        w.items
    }

    /// True when some non-test enclosing fn body containing 0-based
    /// `line` documents a `# Panics` contract.
    #[must_use]
    pub fn docs_panics_at(&self, line: usize) -> bool {
        self.fns.iter().any(|f| {
            f.docs_panics
                && f.body_lines
                    .is_some_and(|(lo, hi)| (lo..=hi).contains(&line))
        })
    }
}

fn is_test_attr(flat: &str) -> bool {
    flat == "test"
        || flat == "cfg(test)"
        || flat.starts_with("cfg(test,")
        || flat.starts_with("cfg(all(test")
        || flat.starts_with("cfg(any(test")
}

/// Item keywords whose body (brace group) inherits the pending
/// `#[cfg(test)]` flag and gets recursed into.
const BLOCK_ITEM_KEYWORDS: &[&str] = &["mod", "struct", "enum", "union", "trait"];

struct Walker<'a> {
    lexed: &'a Lexed,
    items: Items,
}

impl Walker<'_> {
    fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    fn mark_test(&mut self, from: usize, to: usize) {
        for l in &mut self.items.test_lines[from..=to.min(self.lexed.lines.len() - 1)] {
            *l = true;
        }
    }

    /// Walks one sibling level of the forest. `inherited` is true when
    /// an enclosing item is already a test region.
    fn walk(&mut self, trees: &[Tree], inherited: bool) {
        let mut pending_test = false;
        // First attribute line of the current attr run (for doc-comment
        // lookup and test-span starts).
        let mut attr_line: Option<usize> = None;
        let mut k = 0;
        while k < trees.len() {
            match &trees[k] {
                Tree::Leaf(ti) => {
                    let tok = &self.tokens()[*ti];
                    if tok.tok.is_punct('#') {
                        // `#[…]` / `#![…]` attribute.
                        let mut j = k + 1;
                        if let Some(Tree::Leaf(b)) = trees.get(j) {
                            if self.tokens()[*b].tok.is_punct('!') {
                                j += 1;
                            }
                        }
                        if let Some(Tree::Group(g)) = trees.get(j) {
                            if g.delim == Delim::Bracket {
                                if is_test_attr(&tokens::flatten(self.tokens(), g)) {
                                    pending_test = true;
                                }
                                attr_line.get_or_insert(tok.line);
                                k = j + 1;
                                continue;
                            }
                        }
                    }
                    match tok.tok.ident() {
                        Some("fn") => {
                            k = self.item_fn(trees, k, *ti, inherited || pending_test, attr_line);
                            pending_test = false;
                            attr_line = None;
                            continue;
                        }
                        Some("impl") => {
                            k = self.item_impl(trees, k, *ti, inherited || pending_test, attr_line);
                            pending_test = false;
                            attr_line = None;
                            continue;
                        }
                        Some(kw) if BLOCK_ITEM_KEYWORDS.contains(&kw) => {
                            k = self.item_block(
                                trees,
                                k,
                                *ti,
                                inherited || pending_test,
                                attr_line,
                            );
                            pending_test = false;
                            attr_line = None;
                            continue;
                        }
                        _ => {}
                    }
                    if tok.tok.is_punct(';') {
                        // End of a non-block item (`use …;`, `struct X;`):
                        // any pending attribute applied to it, not to
                        // whatever comes next.
                        pending_test = false;
                        attr_line = None;
                    }
                }
                Tree::Group(g) => {
                    // Non-item group (expression block, match body, …):
                    // recurse for nested items, inheriting the flag.
                    self.walk(&g.children, inherited);
                }
            }
            k += 1;
        }
    }

    /// Consumes `fn name(…) … { … }` (or `fn name(…);`). Returns the
    /// sibling index just past the item.
    fn item_fn(
        &mut self,
        trees: &[Tree],
        k: usize,
        fn_tok: usize,
        is_test: bool,
        attr_line: Option<usize>,
    ) -> usize {
        let fn_line = self.tokens()[fn_tok].line;
        let name = trees[k + 1..]
            .iter()
            .find_map(|t| match t {
                Tree::Leaf(i) => self.tokens()[*i].tok.ident().map(str::to_string),
                Tree::Group(_) => None,
            })
            .unwrap_or_default();
        let mut body = None;
        let mut next = trees.len();
        for (off, t) in trees[k + 1..].iter().enumerate() {
            match t {
                Tree::Leaf(i) if self.tokens()[*i].tok.is_punct(';') => {
                    next = k + 1 + off + 1;
                    break;
                }
                Tree::Group(g) if g.delim == Delim::Brace => {
                    body = Some(g.clone());
                    next = k + 1 + off + 1;
                    break;
                }
                _ => {}
            }
        }
        let docs_panics = self.docs_panics_above(attr_line.unwrap_or(fn_line));
        let body_lines = body
            .as_ref()
            .map(|g| (self.tokens()[g.open].line, self.tokens()[g.close].line));
        if is_test {
            let end = body_lines.map_or(fn_line, |(_, hi)| hi);
            self.mark_test(attr_line.unwrap_or(fn_line), end);
        }
        self.items.fns.push(FnItem {
            name,
            line: fn_line,
            body_lines,
            is_test,
            docs_panics,
        });
        if let Some(g) = body {
            self.walk(&g.children, is_test);
        }
        next
    }

    /// Consumes `impl … { … }`. Returns the sibling index past it.
    fn item_impl(
        &mut self,
        trees: &[Tree],
        k: usize,
        impl_tok: usize,
        is_test: bool,
        attr_line: Option<usize>,
    ) -> usize {
        let impl_line = self.tokens()[impl_tok].line;
        let mut body = None;
        let mut next = trees.len();
        let mut header: Vec<usize> = Vec::new();
        for (off, t) in trees[k + 1..].iter().enumerate() {
            match t {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    body = Some(g.clone());
                    next = k + 1 + off + 1;
                    break;
                }
                Tree::Leaf(i) => header.push(*i),
                Tree::Group(_) => {}
            }
        }
        let Some(g) = body else {
            return next;
        };
        // Trait name: the last identifier before a depth-0 `for` in the
        // header (angle-bracket depth tracked so generic bounds like
        // `impl<C: Channel> Channel for &mut C` resolve to `Channel`).
        let mut depth = 0i32;
        let mut last_ident: Option<&str> = None;
        let mut trait_name = None;
        let mut prev_minus = false;
        for &i in &header {
            match &self.tokens()[i].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') if !prev_minus => depth -= 1,
                Tok::Ident(s) if depth <= 0 => {
                    if s == "for" {
                        trait_name = last_ident.map(str::to_string);
                        break;
                    }
                    last_ident = Some(s);
                }
                _ => {}
            }
            prev_minus = self.tokens()[i].tok.is_punct('-');
        }
        let body_lines = (self.tokens()[g.open].line, self.tokens()[g.close].line);
        if is_test {
            self.mark_test(attr_line.unwrap_or(impl_line), body_lines.1);
        }
        self.items.impls.push(ImplItem {
            trait_name,
            line: impl_line,
            body_tokens: (g.open, g.close),
            body_lines,
            is_test,
        });
        self.walk(&g.children, is_test);
        next
    }

    /// Consumes `mod`/`struct`/`enum`/`union`/`trait` items (brace body
    /// or `;`-terminated). Returns the sibling index past the item.
    fn item_block(
        &mut self,
        trees: &[Tree],
        k: usize,
        kw_tok: usize,
        is_test: bool,
        attr_line: Option<usize>,
    ) -> usize {
        let kw_line = self.tokens()[kw_tok].line;
        for (off, t) in trees[k + 1..].iter().enumerate() {
            match t {
                Tree::Leaf(i) if self.tokens()[*i].tok.is_punct(';') => {
                    if is_test {
                        self.mark_test(attr_line.unwrap_or(kw_line), self.tokens()[*i].line);
                    }
                    return k + 1 + off + 1;
                }
                Tree::Group(g) if g.delim == Delim::Brace => {
                    if is_test {
                        let hi = self.tokens()[g.close].line;
                        self.mark_test(attr_line.unwrap_or(kw_line), hi);
                    }
                    let children = g.children.clone();
                    self.walk(&children, is_test);
                    return k + 1 + off + 1;
                }
                _ => {}
            }
        }
        trees.len()
    }

    /// True when the contiguous doc-comment/attribute run above 0-based
    /// `line` contains a `# Panics` heading.
    fn docs_panics_above(&self, mut line: usize) -> bool {
        while line > 0 {
            line -= 1;
            let l = &self.lexed.lines[line];
            if let Some(doc) = &l.doc {
                if doc.contains("# Panics") {
                    return true;
                }
                continue;
            }
            // Keep climbing through blank lines, plain comments, and
            // attribute lines; stop at real code.
            if !l.has_code || l.raw.starts_with("#[") {
                continue;
            }
            break;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn discover(src: &str) -> Items {
        Items::discover(&lexer::lex(src))
    }

    #[test]
    fn cfg_test_mod_marks_region() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let items = discover(src);
        assert!(!items.test_lines[0]);
        assert!(items.test_lines[2]);
        assert!(items.test_lines[3]);
        assert!(items.test_lines[4]);
        assert!(!items.test_lines[5]);
    }

    #[test]
    fn cfg_test_fn_marks_exactly_that_fn() {
        let src = "#[cfg(test)]\nfn helper() {\n    boom();\n}\nfn live() {}\n";
        let items = discover(src);
        assert!(items.test_lines[0]);
        assert!(items.test_lines[2]);
        assert!(!items.test_lines[4]);
    }

    #[test]
    fn test_attr_fn_is_test() {
        let items = discover("#[test]\nfn check() { assert!(true); }\n");
        assert!(items.fns.iter().any(|f| f.name == "check" && f.is_test));
        assert!(items.test_lines[1]);
    }

    #[test]
    fn impl_trait_name_with_generics() {
        let src = "impl<C: Channel> Channel for &mut C {\n    fn go(&mut self) {}\n}\n\
                   impl Widget {\n    fn new() {}\n}\n\
                   impl beeps_observe::Observer for Probe {\n    fn on_run_start(&self) {}\n}\n";
        let items = discover(src);
        let traits: Vec<_> = items.impls.iter().map(|i| i.trait_name.clone()).collect();
        assert_eq!(
            traits,
            vec![
                Some("Channel".to_string()),
                None,
                Some("Observer".to_string())
            ]
        );
    }

    #[test]
    fn panics_doc_detected_through_attrs() {
        let src = "/// Runs it.\n///\n/// # Panics\n/// Panics on empty input.\n#[inline]\npub fn run(v: &[u32]) {\n    v[0];\n}\n";
        let items = discover(src);
        let f = items.fns.iter().find(|f| f.name == "run").expect("run fn");
        assert!(f.docs_panics);
        assert!(items.docs_panics_at(6));
        assert!(!items.docs_panics_at(0));
    }

    #[test]
    fn nested_fn_inherits_test_flag() {
        let src =
            "#[cfg(test)]\nmod tests {\n    mod inner {\n        fn deep() { bad(); }\n    }\n}\n";
        let items = discover(src);
        assert!(items.test_lines[3]);
        assert!(items.fns.iter().all(|f| f.is_test));
    }
}
