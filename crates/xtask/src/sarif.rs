//! Hand-rolled SARIF 2.1.0 emitter for `cargo xtask lint --format
//! sarif`.
//!
//! SARIF (Static Analysis Results Interchange Format) is the schema CI
//! services ingest for inline PR annotations. Like every serializer in
//! this workspace the emitter is dependency-free and deterministic:
//! rules appear in [`RuleId::ALL`] order, results in the engine's
//! sorted (path, line, rule) order, and no timestamps or absolute
//! paths are embedded — the same findings always produce byte-identical
//! output. Conformance is pinned by validating against the in-repo
//! RFC 8259 validator ([`crate::jsonck`]).

use crate::rules::RuleId;
use crate::{Finding, LintReport};

/// Escapes `s` into a JSON string body (no surrounding quotes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rule_object(rule: RuleId) -> String {
    format!(
        "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
         \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
        escape(rule.as_str()),
        escape(rule.rationale())
    )
}

fn result_object(f: &Finding) -> String {
    let rule_index = RuleId::ALL
        .iter()
        .position(|r| *r == f.rule)
        .unwrap_or_default();
    format!(
        "{{\"ruleId\":\"{}\",\"ruleIndex\":{rule_index},\"level\":\"error\",\
         \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":\
         {{\"artifactLocation\":{{\"uri\":\"{}\",\"uriBaseId\":\"SRCROOT\"}},\
         \"region\":{{\"startLine\":{}}}}}}}]}}",
        escape(f.rule.as_str()),
        escape(&f.message),
        escape(&f.path),
        f.line
    )
}

/// Renders `report` as a complete SARIF 2.1.0 log (one run, one result
/// per unsuppressed finding).
#[must_use]
pub fn render(report: &LintReport) -> String {
    let rules: Vec<String> = RuleId::ALL.iter().map(|r| rule_object(*r)).collect();
    let results: Vec<String> = report.findings.iter().map(result_object).collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"beeps-lint\",\"informationUri\":\
         \"https://github.com/noisy-beeps/noisy-beeps\",\
         \"version\":\"{}\",\"rules\":[{}]}}}},\
         \"originalUriBaseIds\":{{\"SRCROOT\":{{\"uri\":\"file:///\"}}}},\
         \"results\":[{}]}}]}}\n",
        escape(env!("CARGO_PKG_VERSION")),
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonck;

    fn sample_report() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    rule: RuleId::AtomicOrdering,
                    path: "crates/bench/src/runner.rs".to_string(),
                    line: 317,
                    message: "`Ordering::Relaxed` on `next.fetch_add` needs \"AcqRel\"".to_string(),
                },
                Finding {
                    rule: RuleId::HashCollections,
                    path: "src/weird\\path.rs".to_string(),
                    line: 1,
                    message: "tab\there\nnewline".to_string(),
                },
            ],
            files_scanned: 2,
            ..LintReport::default()
        }
    }

    #[test]
    fn sarif_is_valid_json_per_jsonck() {
        let text = render(&sample_report());
        jsonck::validate(&text).expect("SARIF output must be RFC 8259 valid");
        // Empty report too.
        let empty = render(&LintReport::default());
        jsonck::validate(&empty).expect("empty SARIF output must be valid");
    }

    #[test]
    fn sarif_carries_schema_rules_and_results() {
        let text = render(&sample_report());
        assert!(text.contains("\"version\":\"2.1.0\""));
        assert!(text.contains("sarif-2.1.0.json"));
        assert!(text.contains("\"name\":\"beeps-lint\""));
        // Every rule is declared.
        for rule in RuleId::ALL {
            assert!(text.contains(&format!("\"id\":\"{}\"", rule.as_str())));
        }
        assert!(text.contains("\"startLine\":317"));
        assert!(text.contains("\"uri\":\"crates/bench/src/runner.rs\""));
        // ruleIndex points into the declared rules array.
        let idx = RuleId::ALL
            .iter()
            .position(|r| *r == RuleId::AtomicOrdering)
            .unwrap();
        assert!(text.contains(&format!("\"ruleIndex\":{idx}")));
    }

    #[test]
    fn sarif_escapes_hostile_strings() {
        let text = render(&sample_report());
        assert!(text.contains("weird\\\\path.rs"));
        assert!(text.contains("tab\\there\\nnewline"));
        assert!(text.contains("\\\"AcqRel\\\""));
    }

    #[test]
    fn sarif_is_deterministic() {
        assert_eq!(render(&sample_report()), render(&sample_report()));
    }
}
