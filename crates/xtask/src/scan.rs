//! Source-file model for the linter.
//!
//! Each first-party `.rs` file is lexed once by the full-source v2
//! lexer ([`crate::lexer`]) into a token stream plus per-line views,
//! then the item pass ([`crate::items`]) walks the brace-matched token
//! tree to mark exact `#[cfg(test)]` regions and discover fn/impl
//! spans. A [`SourceFile`] bundles all of it: the line-oriented rules
//! keep reading [`Line::code`]/[`Line::strings`] exactly as before,
//! while the semantic passes (atomic-ordering, seed-provenance,
//! observer-purity, panic-path) walk [`SourceFile::tokens`] and
//! [`SourceFile::items`].
//!
//! The superseded line-oriented v1 lexer lives on in [`v1`] solely so
//! the lexer-equivalence property test can pin v1-vs-v2 agreement on
//! every first-party source file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::items::Items;
use crate::lexer::{self, Token};

pub use crate::lexer::{Line, Suppression};

/// A lexed file, path relative to the scanned root.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub path: PathBuf,
    /// 0-indexed lines (rules report 1-based numbers).
    pub lines: Vec<Line>,
    /// The full token stream, in source order.
    pub tokens: Vec<Token>,
    /// Discovered items (fns, impls, exact test regions).
    pub items: Items,
}

impl SourceFile {
    /// Lexes `content` into a [`SourceFile`] rooted at `path`.
    #[must_use]
    pub fn lex(path: PathBuf, content: &str) -> Self {
        let lexed = lexer::lex(content);
        let items = Items::discover(&lexed);
        let mut lines = lexed.lines;
        for (line, &t) in lines.iter_mut().zip(items.test_lines.iter()) {
            line.in_test = t;
        }
        Self {
            path,
            lines,
            tokens: lexed.tokens,
            items,
        }
    }

    /// The file stem (`fig1_upper_bound_overhead` for
    /// `crates/bench/src/bin/fig1_upper_bound_overhead.rs`).
    #[must_use]
    pub fn stem(&self) -> &str {
        self.path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
    }

    /// Whether the rule `rule` is suppressed at 0-indexed line `idx`:
    /// either by a trailing comment on the line itself or by a chain of
    /// standalone comment lines immediately above it. Returns the line
    /// index of the matching suppression comment.
    #[must_use]
    pub fn suppressed_at(&self, idx: usize, rule: &str) -> Option<usize> {
        let hit = |i: usize| {
            self.lines[i]
                .suppressions
                .iter()
                .any(|s| s.rules.iter().any(|r| r == rule) && !s.justification.is_empty())
        };
        if hit(idx) {
            return Some(idx);
        }
        // Walk up through standalone comment lines.
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let line = &self.lines[i];
            if line.has_code {
                break;
            }
            if hit(i) {
                return Some(i);
            }
            if line.suppressions.is_empty()
                && line.code.trim().is_empty()
                && line.strings.is_empty()
            {
                // Blank or pure-comment line without a suppression:
                // keep walking only if it was a comment-ish line.
                continue;
            }
        }
        None
    }
}

/// Directory names never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Path prefixes (relative to the root) never scanned. `crates/xtask`
/// is the linter itself: its source and fixtures embed the forbidden
/// patterns as detection strings and test vectors, it is a dev-only
/// tool that never links into simulation binaries, and it remains
/// covered by `forbid(unsafe_code)`, `deny(missing_docs)`, and clippy
/// like every other crate.
const SKIP_PREFIXES: &[&str] = &["crates/xtask"];

/// Recursively collects and lexes every first-party `.rs` file under
/// `root`, in sorted path order (deterministic reports).
///
/// # Errors
///
/// Propagates I/O errors from directory walks and file reads.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = collect_paths(root)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let content = fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::lex(rel, &content));
    }
    Ok(files)
}

/// The relative paths [`collect_sources`] would lex, unsorted.
///
/// # Errors
///
/// Propagates I/O errors from directory walks.
pub fn collect_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    Ok(paths)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel.to_string_lossy().replace('\\', "/") == *p)
            {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// The superseded line-oriented v1 lexer (PR 3), kept verbatim so the
/// lexer-equivalence test can pin that v2 reproduces its per-line
/// `code`/`strings` views on every first-party file. Not used by any
/// rule.
pub mod v1 {
    use crate::lexer::{parse_suppression, Line};

    /// Lexer mode carried across lines.
    enum Mode {
        Normal,
        Block(u32),
        Str,
        RawStr(u32),
    }

    /// Lexes `content` line-by-line into v1 per-line views, including
    /// the v1 `#[cfg(test)] mod` brace tracking.
    #[must_use]
    pub fn lex(content: &str) -> Vec<Line> {
        let mut lines = lex_lines(content);
        mark_test_regions(&mut lines);
        lines
    }

    fn lex_lines(content: &str) -> Vec<Line> {
        let mut out = Vec::new();
        let mut mode = Mode::Normal;
        // (start line, accumulated contents) of the literal being read.
        let mut pending_string: Option<(usize, String)> = None;

        for (lineno, raw) in content.lines().enumerate() {
            let mut line = Line {
                raw: raw.trim().to_string(),
                ..Line::default()
            };
            let chars: Vec<char> = raw.chars().collect();
            let mut i = 0;
            let mut comment_text: Option<String> = None;

            while i < chars.len() {
                match mode {
                    Mode::Block(depth) => {
                        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            mode = Mode::Block(depth + 1);
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            mode = if depth == 1 {
                                Mode::Normal
                            } else {
                                Mode::Block(depth - 1)
                            };
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    Mode::Str => {
                        if chars[i] == '\\' {
                            if let Some((_, buf)) = pending_string.as_mut() {
                                buf.push('\\');
                                if let Some(&c) = chars.get(i + 1) {
                                    buf.push(c);
                                }
                            }
                            i += 2;
                        } else if chars[i] == '"' {
                            mode = Mode::Normal;
                            line.code.push('"');
                            finish_string(&mut pending_string, &mut out, &mut line, lineno);
                            i += 1;
                        } else {
                            if let Some((_, buf)) = pending_string.as_mut() {
                                buf.push(chars[i]);
                            }
                            i += 1;
                        }
                    }
                    Mode::RawStr(hashes) => {
                        if chars[i] == '"'
                            && chars[i + 1..].iter().take_while(|&&c| c == '#').count()
                                >= hashes as usize
                        {
                            mode = Mode::Normal;
                            line.code.push('"');
                            finish_string(&mut pending_string, &mut out, &mut line, lineno);
                            i += 1 + hashes as usize;
                        } else {
                            if let Some((_, buf)) = pending_string.as_mut() {
                                buf.push(chars[i]);
                            }
                            i += 1;
                        }
                    }
                    Mode::Normal => {
                        let c = chars[i];
                        if c == '/' && chars.get(i + 1) == Some(&'/') {
                            comment_text = Some(chars[i + 2..].iter().collect());
                            break;
                        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                            mode = Mode::Block(1);
                            i += 2;
                        } else if c == '"' {
                            mode = Mode::Str;
                            line.code.push('"');
                            pending_string = Some((lineno, String::new()));
                            i += 1;
                        } else if c == 'r'
                            && !prev_is_ident(&line.code)
                            && matches!(chars.get(i + 1), Some('"') | Some('#'))
                        {
                            let hashes =
                                chars[i + 1..].iter().take_while(|&&h| h == '#').count() as u32;
                            if chars.get(i + 1 + hashes as usize) == Some(&'"') {
                                mode = Mode::RawStr(hashes);
                                line.code.push('"');
                                pending_string = Some((lineno, String::new()));
                                i += 2 + hashes as usize;
                            } else {
                                line.code.push(c);
                                i += 1;
                            }
                        } else if c == '\'' {
                            // Char literal vs. lifetime.
                            if chars.get(i + 1) == Some(&'\\') {
                                // '\n', '\'', '\u{…}' — consume to closing quote.
                                line.code.push_str("' '");
                                let mut j = i + 2;
                                while j < chars.len() && chars[j] != '\'' {
                                    j += 1;
                                }
                                i = j + 1;
                            } else if chars.get(i + 2) == Some(&'\'') {
                                line.code.push_str("' '");
                                i += 3;
                            } else {
                                // Lifetime: keep the tick, move on.
                                line.code.push(c);
                                i += 1;
                            }
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    }
                }
            }

            if let Some((_, buf)) = pending_string.as_mut() {
                // Literal continues past end of line.
                buf.push('\n');
            }
            line.has_code = !line.code.trim().is_empty();
            if let Some(text) = comment_text {
                if let Some(s) = parse_suppression(&text, lineno + 1) {
                    line.suppressions.push(s);
                }
            }
            out.push(line);
        }
        out
    }

    /// True if the code buffer ends in an identifier character (so a
    /// following `r"` is part of an identifier like `attr"` and must
    /// not start a raw string).
    fn prev_is_ident(code: &str) -> bool {
        code.chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    fn finish_string(
        pending: &mut Option<(usize, String)>,
        done: &mut [Line],
        current: &mut Line,
        lineno: usize,
    ) {
        if let Some((start, buf)) = pending.take() {
            if start == lineno {
                current.strings.push(buf);
            } else if let Some(line) = done.get_mut(start) {
                line.strings.push(buf);
            }
        }
    }

    /// Marks lines inside `#[cfg(test)] mod … { … }` regions by brace
    /// tracking over the code view. Heuristic — the v2 item pass
    /// subsumes this with exact spans.
    fn mark_test_regions(lines: &mut [Line]) {
        let mut depth: i64 = 0;
        let mut pending_cfg_test = false;
        // Depth *outside* the test module; region ends when we return to it.
        let mut region_floor: Option<i64> = None;

        for line in lines.iter_mut() {
            let opens = line.code.matches('{').count() as i64;
            let closes = line.code.matches('}').count() as i64;
            if let Some(floor) = region_floor {
                line.in_test = true;
                depth += opens - closes;
                if depth <= floor {
                    region_floor = None;
                }
                continue;
            }
            if line.code.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && line.code.contains("mod ") && opens > 0 {
                region_floor = Some(depth);
                line.in_test = true;
                pending_cfg_test = false;
            } else if pending_cfg_test && line.has_code && !line.code.trim_start().starts_with("#[")
            {
                // `#[cfg(test)]` attached to something that is not a
                // `mod` block (e.g. a single fn): treat conservatively
                // as non-test and stop waiting.
                pending_cfg_test = false;
            }
            depth += opens - closes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> SourceFile {
        SourceFile::lex(PathBuf::from("src/lib.rs"), src)
    }

    #[test]
    fn comments_are_stripped_from_code_view() {
        let f = lex("let x = 1; // trailing HashMap mention\n/// doc HashMap\nlet y = 2;\n");
        assert!(f.lines[0].code.contains("let x"));
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("let y"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = lex("a(); /* one\ntwo HashMap\nthree */ b();\n");
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("b()"));
    }

    #[test]
    fn string_contents_blanked_but_collected() {
        let f = lex("m.inc(\"sim.rewind.runs\", 1);\n");
        assert!(!f.lines[0].code.contains("sim.rewind"));
        assert!(f.lines[0].code.contains("m.inc(\"\","));
        assert_eq!(f.lines[0].strings, vec!["sim.rewind.runs".to_string()]);
    }

    #[test]
    fn escapes_and_char_literals() {
        let f = lex("let s = \"a\\\"b\"; let c = '\"'; let l: &'static str = s;\n");
        assert_eq!(f.lines[0].strings, vec!["a\\\"b".to_string()]);
        assert!(f.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn raw_strings() {
        let f = lex("let s = r#\"raw \"quoted\" HashMap\"#;\nlet t = 3;\n");
        assert_eq!(
            f.lines[0].strings,
            vec!["raw \"quoted\" HashMap".to_string()]
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let t"));
    }

    #[test]
    fn multi_line_raw_string_stays_out_of_code_view() {
        // Regression guard for the v1 line-lexer gap this PR closes:
        // a raw string spanning lines must not leak its body (here a
        // HashMap mention) into any line's code view.
        let src = "pub fn usage() -> &'static str {\n    r#\"beeps usage:\nuse a HashMap here? never.\nthread_rng() is also just prose.\n\"#\n}\nfn after() {}\n";
        let f = lex(src);
        for line in &f.lines {
            assert!(!line.code.contains("HashMap"), "leaked: {:?}", line.code);
            assert!(!line.code.contains("thread_rng"));
        }
        assert!(f.lines[1].strings[0].contains("HashMap"));
        assert!(f.lines[6].code.contains("fn after"));
    }

    #[test]
    fn cfg_test_region_is_brace_tracked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppression_parsing_and_lookup() {
        let src = "// beeps-lint: allow(wall-clock) -- timing UI only\nbad();\nworse(); // beeps-lint: allow(env-read) -- documented knob\nnope(); // beeps-lint: allow(env-read)\n";
        let f = lex(src);
        assert_eq!(f.suppressed_at(1, "wall-clock"), Some(0));
        assert_eq!(f.suppressed_at(2, "env-read"), Some(2));
        // Missing justification does not suppress.
        assert_eq!(f.suppressed_at(3, "env-read"), None);
        assert_eq!(f.suppressed_at(1, "env-read"), None);
    }
}
