//! Minimal JSON syntax validation for `cargo xtask observe-check`.
//!
//! The observability layer writes two machine-readable artifacts — a
//! Chrome trace-event file (`--profile`) and a JSONL run log — and the
//! tier-1 smoke must prove both actually parse. The workspace is
//! dependency-free by design, so this is a small hand-rolled
//! recursive-descent syntax checker: it accepts exactly the RFC 8259
//! grammar (objects, arrays, strings with escapes, numbers, literals)
//! and reports the byte offset of the first violation. It validates
//! syntax only; semantic checks (required keys, line framing) live in
//! the `observe-check` subcommand.

use std::fmt;

/// A syntax violation at a byte offset of the validated text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

/// Validates that `text` is exactly one JSON value (plus surrounding
/// whitespace).
///
/// # Errors
///
/// Returns the offset and description of the first syntax violation.
pub fn validate(text: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(
                                            self.error("expected 4 hex digits after \\u in string")
                                        )
                                    }
                                }
                            }
                        }
                        _ => return Err(self.error("invalid escape in string")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => self.digits(),
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            match self.peek() {
                Some(c) if c.is_ascii_digit() => self.digits(),
                _ => return Err(self.error("expected a digit after the decimal point")),
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            match self.peek() {
                Some(c) if c.is_ascii_digit() => self.digits(),
                _ => return Err(self.error("expected a digit in the exponent")),
            }
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            r#""a \"quoted\" string with \\ and ÿ""#,
            r#"{"traceEvents":[{"name":"x","ts":1,"dur":2,"args":{"k":[1,2]}}],"other":null}"#,
            "{\n  \"a\": [1, 2, 3],\n  \"b\": {\"c\": \"d\"}\n}",
        ] {
            assert_eq!(validate(doc), Ok(()), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{} {}",
            "\"unterminated",
            "\"bad \\x escape\"",
            "01",
            "1.",
            "1e",
            "nul",
            "{'single': 1}",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate(doc).is_err(), "must reject: {doc:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = validate("[1, 2, x]").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.message.contains("expected a JSON value"));
    }
}
