//! The v2 full-source lexer: one pass over the whole file, not a line
//! at a time.
//!
//! PR 3's line-oriented lexer carried literal/comment state across
//! lines by hand and could not represent structure at all — no token
//! stream, no spans, no way to match `Ordering :: Relaxed` or walk a
//! call's argument list. This module lexes the entire source into:
//!
//! * a flat [`Token`] stream (identifiers, lifetimes, numeric/string/
//!   char literals, punctuation, delimiters), each tagged with its
//!   0-based start line — the substrate for the token-tree layer
//!   ([`crate::tokens`]) and the item pass ([`crate::items`]);
//! * the per-line views the line-oriented rules consume ([`Line`]):
//!   the comment-stripped, literal-blanked `code` text, collected
//!   string contents, doc-comment text, and parsed
//!   `// beeps-lint: allow(…)` suppressions.
//!
//! The lexer understands nested block comments, cooked strings with
//! escapes (including multi-line bodies and `\`-continuations), raw
//! strings with any hash depth spanning any number of lines, byte and
//! raw-byte string prefixes (`b"…"`, `br#"…"#` — which the v1 lexer
//! mis-lexed as a cooked string and could leak into code context),
//! char-literal vs. lifetime disambiguation, and numeric literals.
//! It is still deliberately not a parser: macro-generated code is
//! invisible, which is fine for invariants about what first-party
//! *source* says.

/// A delimiter kind: `()`, `[]`, `{}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `Ordering`, `seed_from_u64`).
    Ident(String),
    /// A lifetime (`'static`), without the tick.
    Lifetime(String),
    /// An integer literal, verbatim (`42`, `0x9E37_79B9`, `1u64`).
    Int(String),
    /// A float literal, verbatim (`0.5`, `1.5e3`).
    Float(String),
    /// A string literal's contents (escapes kept raw, quotes dropped).
    Str(String),
    /// A char or byte literal (contents irrelevant to every rule).
    Char,
    /// A single punctuation character (`.`, `:`, `#`, `!`, …).
    Punct(char),
    /// An opening delimiter.
    Open(Delim),
    /// A closing delimiter.
    Close(Delim),
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// True if this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 0-based line the token *starts* on.
    pub line: usize,
}

/// A `// beeps-lint: allow(rule[, rule…]) -- justification` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule IDs named inside `allow(…)`.
    pub rules: Vec<String>,
    /// The justification text after `--` (empty if missing — which is
    /// itself a lint finding; justifications are mandatory).
    pub justification: String,
    /// 1-based line the comment sits on.
    pub line: usize,
}

/// One lexed source line — the view the line-oriented rules consume.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The original source text, trimmed (used for baseline matching).
    pub raw: String,
    /// Code view: comments stripped, literal contents blanked.
    pub code: String,
    /// String literals starting on this line (contents only).
    pub strings: Vec<String>,
    /// Suppression comments written on this line.
    pub suppressions: Vec<Suppression>,
    /// Doc-comment text (`///` / `//!` body) on this line, if any.
    pub doc: Option<String>,
    /// True if the line contains any non-comment, non-whitespace code.
    pub has_code: bool,
    /// True inside a `#[cfg(test)]` item (mod, fn, or impl — filled in
    /// by the item pass, see [`crate::items`]).
    pub in_test: bool,
}

/// The result of lexing one file: the token stream plus per-line views.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Every token, in source order.
    pub tokens: Vec<Token>,
    /// 0-indexed per-line views.
    pub lines: Vec<Line>,
}

/// Lexes `content` into tokens and per-line views.
#[must_use]
pub fn lex(content: &str) -> Lexed {
    let mut lx = Lexer {
        chars: content.chars().collect(),
        i: 0,
        line: 0,
        out: Lexed {
            tokens: Vec::new(),
            lines: content
                .lines()
                .map(|l| Line {
                    raw: l.trim().to_string(),
                    ..Line::default()
                })
                .collect(),
        },
    };
    lx.run();
    for line in &mut lx.out.lines {
        line.has_code = !line.code.trim().is_empty();
    }
    lx.out
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Appends to the code view of line `line` (clamped for safety at EOF).
    fn push_code(&mut self, line: usize, c: char) {
        let clamped = line.min(self.out.lines.len().saturating_sub(1));
        if let Some(l) = self.out.lines.get_mut(clamped) {
            l.code.push(c);
        }
    }

    fn push_code_str(&mut self, line: usize, s: &str) {
        for c in s.chars() {
            self.push_code(line, c);
        }
    }

    fn emit(&mut self, tok: Tok, line: usize) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.cooked_string();
                }
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_string(),
                '(' | '[' | '{' | ')' | ']' | '}' => {
                    let line = self.line;
                    self.bump();
                    self.push_code(line, c);
                    let tok = match c {
                        '(' => Tok::Open(Delim::Paren),
                        '[' => Tok::Open(Delim::Bracket),
                        '{' => Tok::Open(Delim::Brace),
                        ')' => Tok::Close(Delim::Paren),
                        ']' => Tok::Close(Delim::Bracket),
                        _ => Tok::Close(Delim::Brace),
                    };
                    self.emit(tok, line);
                }
                c => {
                    let line = self.line;
                    self.bump();
                    self.push_code(line, c);
                    if !c.is_whitespace() {
                        self.emit(Tok::Punct(c), line);
                    }
                }
            }
        }
    }

    /// `// …` to end of line. Doc comments (`///`, `//!`) record their
    /// body for the panic-contract check; plain comments are offered to
    /// the suppression parser.
    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(doc) = text.strip_prefix('/').or_else(|| text.strip_prefix('!')) {
            if let Some(l) = self.out.lines.get_mut(line) {
                l.doc = Some(doc.trim().to_string());
            }
        } else if let Some(s) = parse_suppression(&text, line + 1) {
            if let Some(l) = self.out.lines.get_mut(line) {
                l.suppressions.push(s);
            }
        }
    }

    /// `/* … */` with nesting, spanning any number of lines.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// A `"…"` string body; the opening quote is already consumed.
    /// Handles escapes and multi-line bodies. The code view gets the
    /// two quotes and nothing else.
    fn cooked_string(&mut self) {
        let start = self.line;
        self.push_code(start, '"');
        let mut buf = String::new();
        loop {
            match self.peek(0) {
                Some('\\') => {
                    buf.push('\\');
                    self.bump();
                    if let Some(e) = self.bump() {
                        buf.push(e);
                    }
                }
                Some('"') => {
                    let close = self.line;
                    self.bump();
                    self.push_code(close, '"');
                    break;
                }
                Some(c) => {
                    buf.push(c);
                    self.bump();
                }
                None => break,
            }
        }
        if let Some(l) = self.out.lines.get_mut(start) {
            l.strings.push(buf.clone());
        }
        self.emit(Tok::Str(buf), start);
    }

    /// A raw string body (`hashes` hashes deep); prefix, hashes, and
    /// the opening quote are already consumed. No escapes; closes at
    /// `"` followed by `hashes` hashes.
    fn raw_string(&mut self, hashes: usize) {
        let start = self.line;
        self.push_code(start, '"');
        let mut buf = String::new();
        loop {
            match self.peek(0) {
                Some('"') if (1..=hashes).all(|k| self.peek(k) == Some('#')) => {
                    let close = self.line;
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.push_code(close, '"');
                    break;
                }
                Some(c) => {
                    buf.push(c);
                    self.bump();
                }
                None => break,
            }
        }
        if let Some(l) = self.out.lines.get_mut(start) {
            l.strings.push(buf.clone());
        }
        self.emit(Tok::Str(buf), start);
    }

    /// `'x'` / `'\n'` char literals vs. `'static` lifetimes.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        if self.peek(1) == Some('\\') {
            // Escaped char literal: consume to the closing quote.
            self.bump();
            self.bump();
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
            }
            self.push_code_str(line, "' '");
            self.emit(Tok::Char, line);
        } else if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            // 'x'
            self.bump();
            self.bump();
            self.bump();
            self.push_code_str(line, "' '");
            self.emit(Tok::Char, line);
        } else {
            // Lifetime: keep the tick and the name in the code view.
            self.bump();
            self.push_code(line, '\'');
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.push_code(line, c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.emit(Tok::Lifetime(name), line);
        }
    }

    /// Numeric literal: integers (hex/oct/bin, underscores, suffixes)
    /// and floats (`1.5`, `2.0e3`). `0..n` stays integer + range.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.push_code(line, c);
                self.bump();
            } else {
                break;
            }
        }
        let mut float = false;
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push('.');
            self.push_code(line, '.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.push_code(line, c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let tok = if float {
            Tok::Float(text)
        } else {
            Tok::Int(text)
        };
        self.emit(tok, line);
    }

    /// An identifier — or a string-literal prefix (`r`, `b`, `br`,
    /// `c`, `cr`) when a quote (after optional hashes for the raw
    /// forms) follows directly.
    fn ident_or_prefixed_string(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let raw_prefix = matches!(name.as_str(), "r" | "br" | "cr");
        let cooked_prefix = matches!(name.as_str(), "b" | "c");
        if raw_prefix {
            let hashes = (0..).take_while(|&k| self.peek(k) == Some('#')).count();
            if self.peek(hashes) == Some('"') {
                // Raw string: the prefix and hashes stay out of the
                // code view (matching the v1 lexer's rendering).
                for _ in 0..=hashes {
                    self.bump();
                }
                self.raw_string(hashes);
                return;
            }
        }
        if cooked_prefix && self.peek(0) == Some('"') {
            self.push_code_str(line, &name);
            self.bump();
            self.cooked_string();
            return;
        }
        self.push_code_str(line, &name);
        self.emit(Tok::Ident(name), line);
    }
}

/// Parses `beeps-lint: allow(rule[, rule…]) -- justification` out of a
/// line-comment body. Returns `None` when the comment is not a
/// beeps-lint directive at all.
pub(crate) fn parse_suppression(comment: &str, lineno: usize) -> Option<Suppression> {
    let rest = comment.trim().strip_prefix("beeps-lint:")?.trim_start();
    let inner = rest.strip_prefix("allow(").and_then(|r| {
        r.find(')')
            .map(|close| (r[..close].to_string(), r[close + 1..].to_string()))
    });
    let (rules_text, tail) = match inner {
        Some(pair) => pair,
        // `beeps-lint:` without a well-formed `allow(…)`: surface it as
        // a suppression with no rules so the engine can flag it.
        None => (String::new(), rest.to_string()),
    };
    let rules: Vec<String> = rules_text
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let justification = tail
        .trim_start()
        .strip_prefix("--")
        .map(|j| j.trim().to_string())
        .unwrap_or_default();
    Some(Suppression {
        rules,
        justification,
        line: lineno,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_line_raw_string_is_contained() {
        let src = "pub fn help() -> &'static str {\n    r#\"usage\na HashMap inside\n\"#\n}\n";
        let lx = lex(src);
        assert!(!lx.lines[1].code.contains("HashMap"));
        assert!(!lx.lines[2].code.contains("HashMap"));
        assert_eq!(lx.lines[1].strings, vec!["usage\na HashMap inside\n"]);
        assert_eq!(lx.lines[3].code, "\"");
        assert!(lx.lines[4].code.contains('}'));
    }

    #[test]
    fn raw_byte_string_with_interior_quote() {
        // The v1 line lexer mis-lexed `br#"…"#` as a cooked string and
        // closed it at the first interior quote, leaking the rest.
        let src = "let s = br#\"say \"HashMap\" ok\"#; let t = 1;\n";
        let lx = lex(src);
        assert!(!lx.lines[0].code.contains("HashMap"));
        assert!(lx.lines[0].code.contains("let t"));
    }

    #[test]
    fn tokens_carry_lines_and_kinds() {
        let lx = lex("let x = 0x2A;\nm.load(Ordering::Relaxed);\n");
        let idents: Vec<_> = lx
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(|s| (s.to_string(), t.line)))
            .collect();
        assert!(idents.contains(&("Ordering".to_string(), 1)));
        assert!(idents.contains(&("Relaxed".to_string(), 1)));
        assert!(lx
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Int(s) if s == "0x2A")));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lx = lex("let c = '\"'; let l: &'static str = \"x\"; let e = '\\n';\n");
        assert_eq!(lx.lines[0].strings, vec!["x"]);
        assert!(lx.lines[0].code.contains("&'static str"));
        assert!(lx
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Lifetime(n) if n == "static")));
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Char))
                .count(),
            2
        );
    }

    #[test]
    fn doc_comments_are_recorded_not_code() {
        let lx = lex("/// # Panics\n/// Panics when empty.\npub fn f() {}\n");
        assert_eq!(lx.lines[0].doc.as_deref(), Some("# Panics"));
        assert!(!lx.lines[0].has_code);
        assert!(lx.lines[2].has_code);
    }
}
