//! `cargo xtask` — workspace automation. Subcommands:
//!
//! * `lint` — run the beeps-lint static-analysis pass (DESIGN.md §8)
//!   over every first-party source file. Exits nonzero on any
//!   unsuppressed finding.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{lint_workspace, Baseline, RuleId};

/// Default baseline filename, resolved relative to the lint root.
const BASELINE_FILE: &str = "xtask-lint.baseline";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
cargo xtask lint [options]

Static analysis enforcing the determinism and protocol-conformance
invariants over all first-party crates (see DESIGN.md §8).

Options:
  --root <dir>        lint this tree instead of the workspace root
  --baseline <file>   baseline file (default: <root>/xtask-lint.baseline)
  --write-baseline    rewrite the baseline to grandfather current findings
  --list-rules        print every rule ID with its rationale
  -h, --help          this help
";

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--baseline" => baseline_path = it.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{:<18} {}", rule.as_str(), rule.rationale());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xtask lint: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Under the cargo alias, cwd is the workspace root; `--root` serves
    // out-of-tree fixture runs.
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let rendered = Baseline::render(&report.baseline_entries);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "beeps-lint: wrote {} entr{} to {}",
            report.baseline_entries.len(),
            if report.baseline_entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "beeps-lint: {} finding(s), {} suppressed, {} baselined, {} files scanned",
        report.findings.len(),
        report.suppressed,
        report.baselined,
        report.files_scanned
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
