//! `cargo xtask` — workspace automation. Subcommands:
//!
//! * `lint` — run the beeps-lint static-analysis pass (DESIGN.md §8)
//!   over every first-party source file. Exits nonzero on any
//!   unsuppressed finding.
//! * `observe-check` — validate the artifacts a `--progress --profile`
//!   run produces: the Chrome trace-event JSON and the JSONL run log.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{jsonck, lint_workspace, sarif, Baseline, LintReport, RuleId};

/// Default baseline filename, resolved relative to the lint root.
const BASELINE_FILE: &str = "xtask-lint.baseline";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("observe-check") => observe_check(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
cargo xtask lint [options]

Static analysis enforcing the determinism and protocol-conformance
invariants over all first-party crates (see DESIGN.md §8).

Options:
  --root <dir>        lint this tree instead of the workspace root
  --baseline <file>   baseline file (default: <root>/xtask-lint.baseline)
  --write-baseline    rewrite the baseline to grandfather current findings
  --format <fmt>      output format: text (default) or sarif (SARIF
                      2.1.0 on stdout; summary moves to stderr)
  --timings           print per-rule wall time to stderr
  --list-rules        print every rule ID with its rationale
  -h, --help          this help

cargo xtask observe-check <trace.json> <runlog.jsonl>

Validates the observability artifacts of a `--progress --profile` run:
the Chrome trace-event file must be one well-formed JSON object with a
`traceEvents` array, and every run-log line must be a well-formed JSON
object framed by a `meta` first line and a `summary` last line.
";

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut format = Format::Text;
    let mut timings = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--baseline" => baseline_path = it.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "xtask lint: --format expects `text` or `sarif`, got {:?}\n\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--timings" => timings = true,
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{:<18} {}", rule.as_str(), rule.rationale());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xtask lint: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Under the cargo alias, cwd is the workspace root; `--root` serves
    // out-of-tree fixture runs.
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let rendered = Baseline::render(&report.baseline_entries);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "beeps-lint: wrote {} entr{} to {}",
            report.baseline_entries.len(),
            if report.baseline_entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let summary = format!(
        "beeps-lint: {} finding(s), {} suppressed, {} baselined, {} files scanned",
        report.findings.len(),
        report.suppressed,
        report.baselined,
        report.files_scanned
    );
    match format {
        Format::Text => {
            for finding in &report.findings {
                println!("{finding}");
            }
            println!("{summary}");
        }
        Format::Sarif => {
            // SARIF goes to stdout (so `> lint.sarif` captures exactly
            // the document); the human summary moves to stderr.
            print!("{}", sarif::render(&report));
            eprintln!("{summary}");
        }
    }
    if timings {
        print_timings(&report);
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Output format for `lint`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Sarif,
}

/// Prints the per-rule wall-time table to stderr, in pass order.
fn print_timings(report: &LintReport) {
    eprintln!("beeps-lint timings:");
    eprintln!(
        "  {:<24} {:>9.3} ms  (walk + lex + item discovery)",
        "scan",
        ms(report.scan_time)
    );
    for (rule, dur) in &report.timings {
        eprintln!("  {rule:<24} {:>9.3} ms", ms(*dur));
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn observe_check(args: &[String]) -> ExitCode {
    let [trace_path, runlog_path] = args else {
        eprintln!("xtask observe-check: expected <trace.json> <runlog.jsonl>\n\n{USAGE}");
        return ExitCode::from(2);
    };
    match check_trace(Path::new(trace_path)) {
        Ok(events) => println!("observe-check: trace OK ({trace_path}, {events} event(s))"),
        Err(e) => {
            eprintln!("xtask observe-check: trace {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match check_runlog(Path::new(runlog_path)) {
        Ok(lines) => println!("observe-check: run log OK ({runlog_path}, {lines} line(s))"),
        Err(e) => {
            eprintln!("xtask observe-check: run log {runlog_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Validates a Chrome trace-event file and returns how many events its
/// `traceEvents` array carries (counted by phase markers).
fn check_trace(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    jsonck::validate(&text).map_err(|e| e.to_string())?;
    if !text.trim_start().starts_with('{') {
        return Err("top-level value must be an object".to_owned());
    }
    if !text.contains("\"traceEvents\"") {
        return Err("missing the `traceEvents` key".to_owned());
    }
    Ok(text.matches("\"ph\":").count())
}

/// Validates a JSONL run log (one object per line, `meta` first,
/// `summary` last) and returns the line count.
fn check_runlog(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err("empty run log".to_owned());
    }
    for (i, line) in lines.iter().enumerate() {
        jsonck::validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !line.starts_with('{') {
            return Err(format!("line {}: not a JSON object", i + 1));
        }
    }
    if !lines[0].contains("\"type\":\"meta\"") {
        return Err("first line must be the `meta` record".to_owned());
    }
    if !lines[lines.len() - 1].contains("\"type\":\"summary\"") {
        return Err("last line must be the `summary` record (run not sealed?)".to_owned());
    }
    Ok(lines.len())
}
