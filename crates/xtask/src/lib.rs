#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! `beeps-lint`: the workspace static-analysis pass behind
//! `cargo xtask lint`.
//!
//! The repo's core claim — bitwise-identical experiment output at any
//! thread count, wall-clock-free metrics equality — rests on invariants
//! that no compiler pass checks: nothing stops a future change from
//! calling `Instant::now()` in an aggregation path, iterating a
//! `HashMap` into a serialized log, or seeding from entropy. This crate
//! machine-checks those invariants (plus the cross-file protocol
//! contracts clippy cannot express) over every first-party source file.
//!
//! * Rules and rationale: [`rules::RuleId`] and DESIGN.md §8.
//! * Inline escapes: `// beeps-lint: allow(<rule>) -- <justification>`
//!   (justification mandatory; unknown rules and unused allows are
//!   themselves findings).
//! * Grandfathering: the checked-in [`baseline::Baseline`] file
//!   (`xtask-lint.baseline`, empty today).
//!
//! The crate has zero dependencies and is excluded from its own scan
//! (its source embeds the forbidden patterns as detection strings; see
//! `scan::collect_sources`).

pub mod baseline;
pub mod items;
pub mod jsonck;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod tokens;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

pub use baseline::Baseline;
pub use rules::RuleId;

/// Wall-clock helper for `lint --timings`. This is diagnostic output
/// about the linter itself — per-pass wall time never feeds lint
/// results, reports, or exit codes, so the workspace's `Instant::now`
/// ban does not apply (the same carve-out as `beeps_observe::clock`).
mod timing {
    use std::time::Instant;

    #[allow(clippy::disallowed_methods)] // diagnostic-only --timings clock
    pub fn now() -> Instant {
        Instant::now()
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// File path relative to the lint root (`/` separators).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed, un-grandfathered findings (sorted by path, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified inline suppression.
    pub suppressed: usize,
    /// Findings silenced by the baseline file.
    pub baselined: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Baseline entries for every unsuppressed finding (what
    /// `--write-baseline` persists, including currently-baselined ones).
    pub baseline_entries: Vec<(String, String, String)>,
    /// Per-rule wall time, in pass order (shown by `lint --timings`;
    /// never part of lint results or exit codes).
    pub timings: Vec<(&'static str, Duration)>,
    /// Wall time of the scan + lex + item-discovery phase.
    pub scan_time: Duration,
}

impl LintReport {
    /// True when nothing unsuppressed was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every first-party source under `root` against `baseline`.
///
/// # Errors
///
/// Propagates I/O errors from the source walk and file reads.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> io::Result<LintReport> {
    let scan_start = timing::now();
    let files = scan::collect_sources(root)?;
    let experiments_md = fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
    let facts = rules::Facts::gather(&files, experiments_md.as_deref());
    let scan_time = scan_start.elapsed();

    let mut raw_findings = Vec::new();
    let mut timings = Vec::new();
    for pass in rules::passes() {
        let start = timing::now();
        (pass.run)(&files, &facts, &mut raw_findings);
        timings.push((pass.rule.as_str(), start.elapsed()));
    }

    let by_path: BTreeMap<String, &scan::SourceFile> = files
        .iter()
        .map(|f| (f.path.to_string_lossy().replace('\\', "/"), f))
        .collect();

    let mut report = LintReport {
        files_scanned: files.len(),
        scan_time,
        ..LintReport::default()
    };

    // (path, suppression line) pairs that silenced at least one finding.
    let mut used_suppressions: Vec<(String, usize)> = Vec::new();
    for finding in raw_findings {
        let file = by_path
            .get(&finding.path)
            .expect("finding references a scanned file");
        let idx = finding.line - 1;
        if let Some(sup_line) = file.suppressed_at(idx, finding.rule.as_str()) {
            report.suppressed += 1;
            used_suppressions.push((finding.path.clone(), sup_line));
            continue;
        }
        let text = file.lines[idx].raw.clone();
        report.baseline_entries.push((
            finding.rule.as_str().to_string(),
            finding.path.clone(),
            text.clone(),
        ));
        if baseline.contains(finding.rule.as_str(), &finding.path, &text) {
            report.baselined += 1;
            continue;
        }
        report.findings.push(finding);
    }

    // Police the suppression mechanism itself.
    let suppression_start = timing::now();
    for file in &files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        for (idx, line) in file.lines.iter().enumerate() {
            for sup in &line.suppressions {
                if sup.rules.is_empty() {
                    report.findings.push(Finding {
                        rule: RuleId::Suppression,
                        path: rel.clone(),
                        line: idx + 1,
                        message: "malformed beeps-lint comment: expected \
                                  `beeps-lint: allow(<rule>) -- <justification>`"
                            .to_string(),
                    });
                    continue;
                }
                let mut all_known = true;
                for rule_name in &sup.rules {
                    if RuleId::parse(rule_name).is_none() {
                        all_known = false;
                        report.findings.push(Finding {
                            rule: RuleId::Suppression,
                            path: rel.clone(),
                            line: idx + 1,
                            message: format!(
                                "unknown rule \"{rule_name}\" in beeps-lint allow \
                                 (see `cargo xtask lint --list-rules`)"
                            ),
                        });
                    }
                }
                if !all_known {
                    continue;
                }
                if sup.justification.is_empty() {
                    report.findings.push(Finding {
                        rule: RuleId::Suppression,
                        path: rel.clone(),
                        line: idx + 1,
                        message: "suppression without justification; append \
                                  `-- <why this is sound>`"
                            .to_string(),
                    });
                } else if !used_suppressions.contains(&(rel.clone(), idx)) {
                    report.findings.push(Finding {
                        rule: RuleId::Suppression,
                        path: rel.clone(),
                        line: idx + 1,
                        message: format!(
                            "unused suppression for {}; delete it (nothing fires here)",
                            sup.rules.join(", ")
                        ),
                    });
                }
            }
        }
    }

    timings.push((RuleId::Suppression.as_str(), suppression_start.elapsed()));
    report.timings = timings;

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}
