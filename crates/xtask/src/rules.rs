//! The lint rules: IDs, the cross-file facts pass, and per-line checks.
//!
//! Rules come in two families (DESIGN.md §8):
//!
//! * **Determinism** (`wall-clock`, `entropy-rng`, `hash-collections`,
//!   `env-read`) — the invariants behind "bitwise-identical output at
//!   any thread count": no wall-clock reads outside the metrics span
//!   module, no entropy-seeded RNGs, BTree-only collections, no
//!   environment reads outside the documented `BEEPS_*` allowlist.
//! * **Conformance** (`sim-name-prefix`, `experiment-id`,
//!   `metric-key-format`, `deprecated-api`) — cross-file protocol
//!   contracts clippy cannot express: `sim.<scheme>.*` metric literals
//!   must name a real `Simulator::name()`, experiment IDs must match
//!   their binary's filename and be unique, metric keys must be
//!   lowercase dot-separated under a family documented in
//!   EXPERIMENTS.md, and `#[deprecated]` APIs slated for removal must
//!   not gain new call sites.
//! * **Performance** (`hot-path-alloc`, `trial-scope-precompute`,
//!   `lane-seed-discipline`) — the executor's round loop is the
//!   innermost loop of every simulation; no `format!`/`String`
//!   allocation may creep back into it (metric names are interned as
//!   `CounterHandle`s up front instead, DESIGN.md §9). Likewise,
//!   code-table construction is trial-invariant work: building it
//!   inside a `TrialRunner` per-trial closure repeats the same
//!   expensive precomputation once per trial instead of once per
//!   experiment (hoist it, or attach a shared `CodeCache`). And
//!   lane-sliced executor code (DESIGN.md §10) must draw every lane's
//!   noise from the per-trial splitmix seed stream — direct RNG seeding
//!   there would break bitwise identity with the scalar path.
//!
//! A meta-rule, `suppression`, polices the suppression mechanism
//! itself (unknown rule IDs, missing justifications, unused allows).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::scan::SourceFile;
use crate::Finding;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `Instant::now` / `SystemTime::now` outside the metrics span module.
    WallClock,
    /// Entropy-seeded RNG constructors (`thread_rng`, `from_entropy`, …).
    EntropyRng,
    /// `HashMap` / `HashSet` (iteration order is not deterministic).
    HashCollections,
    /// `std::env::var` reads outside the `BEEPS_*` allowlist.
    EnvRead,
    /// `"sim.<scheme>…"` literals naming an unknown simulator.
    SimNamePrefix,
    /// Experiment IDs that do not match their binary filename / collide.
    ExperimentId,
    /// Metric keys that are not lowercase dot-separated in a documented family.
    MetricKeyFormat,
    /// Calls to first-party `#[deprecated]` APIs.
    DeprecatedApi,
    /// `format!` / `String` allocation in the executor's round loop.
    HotPathAlloc,
    /// Code-table construction inside a `TrialRunner` per-trial closure.
    TrialScopePrecompute,
    /// Direct RNG seeding inside lane-sliced executor code.
    LaneSeedDiscipline,
    /// Malformed, unknown, or unused `beeps-lint: allow(…)` comments.
    Suppression,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::WallClock,
        RuleId::EntropyRng,
        RuleId::HashCollections,
        RuleId::EnvRead,
        RuleId::SimNamePrefix,
        RuleId::ExperimentId,
        RuleId::MetricKeyFormat,
        RuleId::DeprecatedApi,
        RuleId::HotPathAlloc,
        RuleId::TrialScopePrecompute,
        RuleId::LaneSeedDiscipline,
        RuleId::Suppression,
    ];

    /// The stable kebab-case ID used in reports, suppressions, and the
    /// baseline file.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::WallClock => "wall-clock",
            RuleId::EntropyRng => "entropy-rng",
            RuleId::HashCollections => "hash-collections",
            RuleId::EnvRead => "env-read",
            RuleId::SimNamePrefix => "sim-name-prefix",
            RuleId::ExperimentId => "experiment-id",
            RuleId::MetricKeyFormat => "metric-key-format",
            RuleId::DeprecatedApi => "deprecated-api",
            RuleId::HotPathAlloc => "hot-path-alloc",
            RuleId::TrialScopePrecompute => "trial-scope-precompute",
            RuleId::LaneSeedDiscipline => "lane-seed-discipline",
            RuleId::Suppression => "suppression",
        }
    }

    /// One-line rationale shown by `cargo xtask lint --list-rules`.
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::WallClock => {
                "wall-clock reads outside beeps-metrics' span module and \
                 beeps-observe's clock module break bitwise-identical \
                 output; use MetricsRegistry wall spans or observe::clock"
            }
            RuleId::EntropyRng => {
                "entropy-seeded RNGs make trials unreproducible; derive all \
                 randomness from the per-trial splitmix seed"
            }
            RuleId::HashCollections => {
                "HashMap/HashSet iteration order is nondeterministic; use \
                 BTreeMap/BTreeSet so every rendering is a pure function of \
                 the data"
            }
            RuleId::EnvRead => {
                "environment reads outside the documented BEEPS_* knobs are \
                 hidden inputs that change results between machines"
            }
            RuleId::SimNamePrefix => {
                "sim.<scheme>.* metric literals must name a real \
                 Simulator::name() so dashboards and tests cannot drift"
            }
            RuleId::ExperimentId => {
                "ExperimentLog IDs must equal the binary filename and be \
                 unique so target/experiments/<id>.json maps 1:1 to sources"
            }
            RuleId::MetricKeyFormat => {
                "metric keys must be lowercase dot-separated under a family \
                 documented in EXPERIMENTS.md's schema section"
            }
            RuleId::DeprecatedApi => {
                "first-party #[deprecated] APIs slated for removal must \
                 not gain call sites"
            }
            RuleId::HotPathAlloc => {
                "the executor round loop runs once per channel round; \
                 format!/String allocation there dominates profiles — \
                 intern beeps_metrics::CounterHandle up front instead"
            }
            RuleId::TrialScopePrecompute => {
                "code-table construction inside a TrialRunner per-trial \
                 closure repeats trial-invariant precomputation every \
                 trial; hoist it before the runner call or attach a \
                 shared CodeCache to the SimulatorConfig"
            }
            RuleId::LaneSeedDiscipline => {
                "lane-sliced executor code must draw every lane's noise \
                 from the per-trial splitmix seed stream; a direct \
                 StdRng::seed_from_u64 there silently breaks per-trial \
                 bitwise identity with the scalar path"
            }
            RuleId::Suppression => {
                "beeps-lint: allow(…) comments must name known rules, carry \
                 a justification after --, and actually suppress something"
            }
        }
    }

    /// Parses a kebab-case rule ID.
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Files (relative, `/`-separated) where wall-clock reads are legal:
/// the metrics span module (see `beeps_metrics::Stopwatch`) and the
/// observability clock module (`beeps_observe::clock`, the single
/// timestamp source for progress, profiles, and run logs). Everything
/// else — including the rest of `crates/observe` — must go through
/// those two.
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/metrics/src/registry.rs",
    "crates/observe/src/clock.rs",
];

/// Substrings that indicate a wall-clock read. Matched against the
/// comment-stripped, string-blanked code view.
const WALL_CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now"];

/// Entropy-seeded RNG constructors. None of these exist in the
/// vendored `rand` subset today; the rule keeps them from ever being
/// (re-)introduced alongside a vendored upgrade.
const ENTROPY_PATTERNS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Methods whose first string argument is a deterministic metric key.
/// Wall-span methods (`time`, `record_wall`) are exempt: wall keys are
/// never serialized or compared.
const METRIC_METHODS: &[&str] = &[".inc(", ".observe(", ".event(", ".counter(", ".histogram("];

/// Files whose non-test code must stay allocation-free: these hold the
/// innermost per-round loops of every simulation, so a single `format!`
/// there shows up directly in wall-clock profiles.
const HOT_PATH_FILES: &[&str] = &["crates/channel/src/executor.rs"];

/// String-allocation constructors banned in hot-path files. Matched
/// against the comment-stripped code view of non-test lines.
const HOT_PATH_ALLOC_PATTERNS: &[&str] = &[
    "format!(",
    ".to_string(",
    ".to_owned(",
    "String::from(",
    "String::new(",
];

/// Directory (relative-path fragment) whose files hold the experiment
/// binaries: the only place `TrialRunner` per-trial closures live, and
/// the scope of the `trial-scope-precompute` rule.
const TRIAL_BIN_DIR: &str = "crates/bench/src/bin/";

/// `TrialRunner` entry points whose closure argument runs once per
/// trial. Matched as suffixes of the code up to an opening paren, so
/// `Executor::run(` (no dot) never opens a region.
const TRIAL_RUN_MARKERS: &[&str] = &[
    ".run(",
    ".run_records(",
    ".run_with_metrics(",
    ".run_with_scratch(",
];

/// Trial-invariant precomputation that must not run inside a per-trial
/// closure: code-table construction is the dominant fixed cost of a
/// simulator, and the same table is rebuilt identically every trial.
const TRIAL_PRECOMPUTE_PATTERNS: &[&str] = &[
    "build_code(",
    "RandomCode::with_length(",
    "ConstantWeightCode::new(",
];

/// Files holding lane-sliced (bit-sliced, 64-trials-per-word) executor
/// code. Every lane's randomness must come from that trial's splitmix
/// seed via the one sanctioned seeding site in `LaneChannel::shared`;
/// any other direct seeding would let two lanes share (or skew) a
/// stream and break bitwise identity with the per-trial scalar path.
const LANE_SLICED_FILES: &[&str] = &["crates/channel/src/lanes.rs", "crates/core/src/lanes.rs"];

/// RNG seeding constructors banned in lane-sliced files outside the
/// sanctioned site.
const LANE_SEED_PATTERNS: &[&str] = &["seed_from_u64(", "SeedableRng::from_seed("];

/// Cross-file facts gathered before per-line checks run.
#[derive(Debug, Default)]
pub struct Facts {
    /// `Simulator::name()` return literals (`rewind`, `naked`, …).
    pub simulator_names: BTreeSet<String>,
    /// First-party `#[deprecated]` function names and their defining file.
    pub deprecated: BTreeMap<String, String>,
    /// Metric families documented in EXPERIMENTS.md (`sim`, `exp`, …).
    pub metric_families: BTreeSet<String>,
}

impl Facts {
    /// Gathers facts from the lexed sources plus the workspace's
    /// `EXPERIMENTS.md` (`experiments_md` is its content, if present).
    #[must_use]
    pub fn gather(files: &[SourceFile], experiments_md: Option<&str>) -> Self {
        let mut facts = Facts::default();
        if let Some(md) = experiments_md {
            facts.metric_families = parse_metric_families(md);
        }
        for file in files {
            for (idx, line) in file.lines.iter().enumerate() {
                // fn name(&self) -> &'static str { "rewind" }
                if line.code.contains("fn name(")
                    && line.code.contains("&'static str")
                    && !line.code.trim_end().ends_with(';')
                {
                    for look in file.lines.iter().skip(idx).take(4) {
                        if let Some(lit) = look.strings.first() {
                            facts.simulator_names.insert(lit.clone());
                            break;
                        }
                    }
                }
                // #[deprecated(…)] pub fn old_api(…)
                if line.code.contains("#[deprecated") {
                    for look in file.lines.iter().skip(idx).take(10) {
                        if let Some(name) = fn_ident(&look.code) {
                            facts
                                .deprecated
                                .insert(name, file.path.to_string_lossy().replace('\\', "/"));
                            break;
                        }
                    }
                }
            }
        }
        facts
    }
}

/// Extracts the identifier of a `fn` item declared on `code`.
fn fn_ident(code: &str) -> Option<String> {
    let at = code.find("fn ")?;
    // Reject matches inside a larger identifier (`often `).
    if at > 0
        && code[..at]
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    let rest = &code[at + 3..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Parses the metric-family table out of EXPERIMENTS.md: the first
/// markdown table whose header row contains a `family` column; each
/// data row's first backticked token contributes its leading dot
/// component (`sim.<scheme>.*` → `sim`).
#[must_use]
pub fn parse_metric_families(md: &str) -> BTreeSet<String> {
    let mut families = BTreeSet::new();
    let mut in_table = false;
    for line in md.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        if trimmed.to_lowercase().contains("| family") || trimmed.to_lowercase().contains("|family")
        {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        // A data (or separator) row of the family table.
        if let Some(tok) = trimmed.split('`').nth(1) {
            let family: String = tok
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            if !family.is_empty() && tok[family.len()..].starts_with('.') {
                families.insert(family);
            }
        }
    }
    families
}

/// Runs every rule over `files`, appending raw findings (suppression
/// and baseline filtering happen in the caller).
pub fn check(files: &[SourceFile], facts: &Facts, out: &mut Vec<Finding>) {
    let mut experiment_ids: BTreeMap<String, String> = BTreeMap::new();
    for file in files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        check_determinism(file, &rel, out);
        check_sim_name_prefix(file, &rel, facts, out);
        check_experiment_id(file, &rel, &mut experiment_ids, out);
        check_metric_keys(file, &rel, facts, out);
        check_deprecated(file, &rel, facts, out);
        check_hot_path_alloc(file, &rel, out);
        check_trial_scope_precompute(file, &rel, out);
        check_lane_seed_discipline(file, &rel, out);
    }
}

fn finding(rule: RuleId, rel: &str, line: usize, message: String) -> Finding {
    Finding {
        rule,
        path: rel.to_string(),
        line: line + 1,
        message,
    }
}

fn check_determinism(file: &SourceFile, rel: &str, out: &mut Vec<Finding>) {
    let wall_allowed = WALL_CLOCK_ALLOWED.contains(&rel);
    for (idx, line) in file.lines.iter().enumerate() {
        if !wall_allowed {
            for pat in WALL_CLOCK_PATTERNS {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::WallClock,
                        rel,
                        idx,
                        format!(
                            "`{pat}` outside the metrics span module; route timing through \
                             `beeps_metrics::Stopwatch` / `MetricsRegistry::time` so wall-clock \
                             stays out of deterministic state"
                        ),
                    ));
                }
            }
        }
        for pat in ENTROPY_PATTERNS {
            if line.code.contains(pat) {
                out.push(finding(
                    RuleId::EntropyRng,
                    rel,
                    idx,
                    format!(
                        "`{pat}` seeds from entropy; derive all randomness from the \
                         per-trial seed (`trial_seed` / `StdRng::seed_from_u64`)"
                    ),
                ));
            }
        }
        for pat in ["HashMap", "HashSet"] {
            if line.code.contains(pat) {
                out.push(finding(
                    RuleId::HashCollections,
                    rel,
                    idx,
                    format!(
                        "`{pat}` has nondeterministic iteration order; use the BTree \
                         equivalent (BTree-only rule)"
                    ),
                ));
            }
        }
        if line.code.contains("env::var") {
            let allowlisted = line.strings.iter().any(|s| s.starts_with("BEEPS_"));
            if !allowlisted {
                out.push(finding(
                    RuleId::EnvRead,
                    rel,
                    idx,
                    "environment read outside the documented `BEEPS_*` allowlist is a \
                     hidden input; name the variable `BEEPS_*` and document it, or drop \
                     the read"
                        .to_string(),
                ));
            }
        }
    }
}

fn check_sim_name_prefix(file: &SourceFile, rel: &str, facts: &Facts, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        for lit in &line.strings {
            let Some(rest) = lit.strip_prefix("sim.") else {
                continue;
            };
            let scheme: &str = rest.split('.').next().unwrap_or_default();
            if scheme.is_empty() || scheme.contains('{') {
                continue; // dynamic (`sim.{scheme}.…`) or bare prefix
            }
            if !facts.simulator_names.contains(scheme) {
                out.push(finding(
                    RuleId::SimNamePrefix,
                    rel,
                    idx,
                    format!(
                        "`sim.{scheme}.*` does not match any `Simulator::name()` \
                         (known: {})",
                        facts
                            .simulator_names
                            .iter()
                            .cloned()
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
    }
}

/// Extracts the string literal passed as the first argument of the
/// call starting at `marker` on line `idx`, when that argument is
/// syntactically a literal (possibly through `&format!(…)`). Returns
/// `None` for variable arguments like `.inc(&key(…), 1)`.
fn literal_arg(file: &SourceFile, idx: usize, marker: &str) -> Option<(usize, String)> {
    let line = &file.lines[idx];
    let pos = line.code.find(marker)?;
    let after = line.code[pos + marker.len()..].trim_start();
    let is_literal_head = |s: &str| {
        s.starts_with('"')
            || s.starts_with("&\"")
            || s.starts_with("format!(\"")
            || s.starts_with("&format!(\"")
    };
    if is_literal_head(after) {
        return line.strings.first().map(|s| (idx, s.clone()));
    }
    if after.contains(')') {
        return None; // call closed on this line without a literal arg
    }
    // Call continues on the next line(s).
    for (off, next) in file.lines.iter().enumerate().skip(idx + 1).take(2) {
        if is_literal_head(next.code.trim_start()) {
            return next.strings.first().map(|s| (off, s.clone()));
        }
        if next.has_code {
            return None;
        }
    }
    None
}

fn check_experiment_id(
    file: &SourceFile,
    rel: &str,
    seen: &mut BTreeMap<String, String>,
    out: &mut Vec<Finding>,
) {
    if !rel.contains("src/bin/") {
        return;
    }
    let stem = file.stem().to_string();
    for (idx, line) in file.lines.iter().enumerate() {
        if !line.code.contains("ExperimentLog::new") {
            continue;
        }
        let Some((_, id)) = literal_arg(file, idx, "ExperimentLog::new(") else {
            continue;
        };
        if id != stem {
            out.push(finding(
                RuleId::ExperimentId,
                rel,
                idx,
                format!("experiment ID \"{id}\" must equal the binary filename stem \"{stem}\""),
            ));
        }
        if let Some(prev) = seen.insert(id.clone(), rel.to_string()) {
            out.push(finding(
                RuleId::ExperimentId,
                rel,
                idx,
                format!("experiment ID \"{id}\" already used by {prev}; IDs must be unique"),
            ));
        }
    }
}

/// Charset check: lowercase dot-separated, digits/underscores allowed,
/// `{…}` interpolations (with `:` format specs) tolerated.
fn key_charset_ok(key: &str) -> bool {
    key.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._{}:".contains(c))
}

fn check_metric_keys(file: &SourceFile, rel: &str, facts: &Facts, out: &mut Vec<Finding>) {
    let in_tests_dir = rel.contains("tests/");
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(marker) = METRIC_METHODS.iter().find(|m| line.code.contains(*m)) else {
            continue;
        };
        let Some((key_idx, key)) = literal_arg(file, idx, marker) else {
            continue;
        };
        if key.is_empty() {
            continue;
        }
        if !key_charset_ok(&key) {
            out.push(finding(
                RuleId::MetricKeyFormat,
                rel,
                key_idx,
                format!("metric key \"{key}\" must be lowercase dot-separated ([a-z0-9_.])"),
            ));
            continue;
        }
        // Family membership: shipping code only — unit tests and
        // integration tests may use throwaway keys.
        if line.in_test || in_tests_dir || facts.metric_families.is_empty() {
            continue;
        }
        let family: &str = key.split('.').next().unwrap_or_default();
        if family.contains('{') {
            continue; // dynamically assembled prefix
        }
        if !facts.metric_families.contains(family) {
            out.push(finding(
                RuleId::MetricKeyFormat,
                rel,
                key_idx,
                format!(
                    "metric key \"{key}\" is not under a family documented in \
                     EXPERIMENTS.md (known: {})",
                    facts
                        .metric_families
                        .iter()
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}

fn check_hot_path_alloc(file: &SourceFile, rel: &str, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue; // unit tests may build diagnostic strings freely
        }
        for pat in HOT_PATH_ALLOC_PATTERNS {
            if line.code.contains(pat) {
                out.push(finding(
                    RuleId::HotPathAlloc,
                    rel,
                    idx,
                    format!(
                        "`{pat}…)` allocates inside the executor hot path; intern a \
                         `beeps_metrics::CounterHandle` before the round loop (or hoist \
                         the allocation out of this file)"
                    ),
                ));
            }
        }
    }
}

/// Flags direct RNG seeding in lane-sliced executor files. The one
/// sanctioned site (`LaneChannel::shared`, which fans the per-trial
/// splitmix seeds out to lanes) carries a justified suppression; any
/// new seeding must either route through it or argue its case in a
/// suppression comment.
fn check_lane_seed_discipline(file: &SourceFile, rel: &str, out: &mut Vec<Finding>) {
    if !LANE_SLICED_FILES.contains(&rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue; // tests may seed scalar reference channels freely
        }
        for pat in LANE_SEED_PATTERNS {
            if line.code.contains(pat) {
                out.push(finding(
                    RuleId::LaneSeedDiscipline,
                    rel,
                    idx,
                    format!(
                        "`{pat}…)` seeds an RNG inside lane-sliced executor code; draw \
                         lane randomness from the per-trial splitmix seed stream via \
                         `LaneChannel::shared` so lanes stay bitwise identical to \
                         per-trial runs"
                    ),
                ));
            }
        }
    }
}

/// Flags trial-invariant code-table construction inside the argument
/// list (in practice: the per-trial closure) of a [`TRIAL_RUN_MARKERS`]
/// call in an experiment binary. Regions are tracked by paren depth
/// across lines: a marker opens a region at its paren depth, and the
/// region closes when the depth drops back below it, so hoisted builds
/// before the runner call never fire.
fn check_trial_scope_precompute(file: &SourceFile, rel: &str, out: &mut Vec<Finding>) {
    if !rel.contains(TRIAL_BIN_DIR) {
        return;
    }
    let mut depth: i64 = 0;
    // Paren depths at which an (possibly nested) runner call is open.
    let mut regions: Vec<i64> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        for (pos, c) in code.char_indices() {
            match c {
                '(' => {
                    depth += 1;
                    let head = &code[..pos + c.len_utf8()];
                    if TRIAL_RUN_MARKERS.iter().any(|m| head.ends_with(m)) {
                        regions.push(depth);
                    }
                }
                ')' => {
                    depth -= 1;
                    while regions.last().is_some_and(|&open| depth < open) {
                        regions.pop();
                    }
                }
                _ => {}
            }
            if regions.is_empty() {
                continue;
            }
            if let Some(pat) = TRIAL_PRECOMPUTE_PATTERNS
                .iter()
                .find(|p| code[pos..].starts_with(**p))
            {
                let name = pat.trim_end_matches('(');
                out.push(finding(
                    RuleId::TrialScopePrecompute,
                    rel,
                    idx,
                    format!(
                        "`{name}` inside a per-trial closure rebuilds the same \
                         code table every trial; hoist it before the TrialRunner \
                         call or attach a shared `CodeCache` to the config"
                    ),
                ));
            }
        }
    }
}

fn check_deprecated(file: &SourceFile, rel: &str, facts: &Facts, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        for (symbol, def_file) in &facts.deprecated {
            let call = format!("{symbol}(");
            let def = format!("fn {symbol}(");
            if line.code.contains(call.as_str()) && !line.code.contains(def.as_str()) {
                out.push(finding(
                    RuleId::DeprecatedApi,
                    rel,
                    idx,
                    format!(
                        "call to `{symbol}` (marked #[deprecated] in {def_file}, slated \
                         for removal); migrate to the replacement named in its note"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.as_str()), Some(*rule));
            assert!(!rule.rationale().is_empty());
        }
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn family_table_parses() {
        let md = "intro\n\n| family | meaning |\n|---|---|\n| `sim.<scheme>.*` | per-scheme |\n| `exp.*` | ad-hoc |\n\nafter\n";
        let fams = parse_metric_families(md);
        assert_eq!(
            fams.iter().cloned().collect::<Vec<_>>(),
            vec!["exp".to_string(), "sim".to_string()]
        );
    }

    #[test]
    fn fn_ident_extraction() {
        assert_eq!(
            fn_ident("    pub fn old_entry_point(n: usize) -> Self {"),
            Some("old_entry_point".to_string())
        );
        assert_eq!(fn_ident("let often = 3;"), None);
        assert_eq!(fn_ident("fn x()"), Some("x".to_string()));
    }
}
