//! The lint rules: IDs, the cross-file facts pass, and the analysis
//! passes (one per rule, individually timed by `lint --timings`).
//!
//! Rules come in four families (DESIGN.md §8):
//!
//! * **Determinism** (`wall-clock`, `entropy-rng`, `hash-collections`,
//!   `env-read`) — the invariants behind "bitwise-identical output at
//!   any thread count": no wall-clock reads outside the metrics span
//!   module, no entropy-seeded RNGs, BTree-only collections, no
//!   environment reads outside the documented `BEEPS_*` allowlist.
//! * **Conformance** (`sim-name-prefix`, `experiment-id`,
//!   `metric-key-format`, `deprecated-api`) — cross-file protocol
//!   contracts clippy cannot express: `sim.<scheme>.*` metric literals
//!   must name a real `Simulator::name()`, experiment IDs must match
//!   their binary's filename and be unique, metric keys must be
//!   lowercase dot-separated under a family documented in
//!   EXPERIMENTS.md, and `#[deprecated]` APIs slated for removal must
//!   not gain new call sites.
//! * **Performance** (`hot-path-alloc`, `party-loop-alloc`,
//!   `trial-scope-precompute`, `lane-seed-discipline`) — the
//!   executor's round loop is the innermost loop of every simulation;
//!   no `format!`/`String` allocation may creep back into it, the
//!   per-round per-party loops of the scaling engines must stay
//!   heap-allocation-free (scratch arenas and pooled rows only),
//!   code-table construction must not run per-trial, and lane-sliced
//!   code must draw every lane's noise from the per-trial splitmix
//!   stream (DESIGN.md §9–§10, §12).
//! * **Semantic** (`atomic-ordering`, `seed-provenance`,
//!   `observer-purity`, `panic-path`) — token-tree passes the old
//!   line lexer could not express: every `Ordering::*` use classified
//!   against a per-module policy, RNG seed arguments traced to the
//!   per-trial splitmix derivation, `Observer` impls and
//!   `observe::phase`/`mark` callsites kept side-effect-free, and an
//!   `unwrap`/`expect`/panic-macro budget in library crates.
//!
//! A meta-rule, `suppression`, polices the suppression mechanism
//! itself (unknown rule IDs, missing justifications, unused allows).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::lexer::{Delim, Tok, Token};
use crate::scan::SourceFile;
use crate::tokens::matching_close;
use crate::Finding;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `Instant::now` / `SystemTime::now` outside the metrics span module.
    WallClock,
    /// Entropy-seeded RNG constructors (`thread_rng`, `from_entropy`, …).
    EntropyRng,
    /// `HashMap` / `HashSet` (iteration order is not deterministic).
    HashCollections,
    /// `std::env::var` reads outside the `BEEPS_*` allowlist.
    EnvRead,
    /// `"sim.<scheme>…"` literals naming an unknown simulator.
    SimNamePrefix,
    /// Experiment IDs that do not match their binary filename / collide.
    ExperimentId,
    /// Metric keys that are not lowercase dot-separated in a documented family.
    MetricKeyFormat,
    /// Calls to first-party `#[deprecated]` APIs.
    DeprecatedApi,
    /// `format!` / `String` allocation in the executor's round loop.
    HotPathAlloc,
    /// Heap allocation in the scaling engines' per-round party loops.
    PartyLoopAlloc,
    /// Code-table construction inside a `TrialRunner` per-trial closure.
    TrialScopePrecompute,
    /// Direct RNG seeding inside lane-sliced executor code.
    LaneSeedDiscipline,
    /// `Ordering::Relaxed` outside the per-module atomics policy.
    AtomicOrdering,
    /// RNG seeds that do not trace to a per-trial splitmix derivation.
    SeedProvenance,
    /// Side effects inside `Observer` impls or `observe::phase`/`mark` args.
    ObserverPurity,
    /// Undocumented `unwrap`/`expect`/panic-macro sites beyond the budget.
    PanicPath,
    /// Malformed, unknown, or unused `beeps-lint: allow(…)` comments.
    Suppression,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::WallClock,
        RuleId::EntropyRng,
        RuleId::HashCollections,
        RuleId::EnvRead,
        RuleId::SimNamePrefix,
        RuleId::ExperimentId,
        RuleId::MetricKeyFormat,
        RuleId::DeprecatedApi,
        RuleId::HotPathAlloc,
        RuleId::PartyLoopAlloc,
        RuleId::TrialScopePrecompute,
        RuleId::LaneSeedDiscipline,
        RuleId::AtomicOrdering,
        RuleId::SeedProvenance,
        RuleId::ObserverPurity,
        RuleId::PanicPath,
        RuleId::Suppression,
    ];

    /// The stable kebab-case ID used in reports, suppressions, and the
    /// baseline file.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::WallClock => "wall-clock",
            RuleId::EntropyRng => "entropy-rng",
            RuleId::HashCollections => "hash-collections",
            RuleId::EnvRead => "env-read",
            RuleId::SimNamePrefix => "sim-name-prefix",
            RuleId::ExperimentId => "experiment-id",
            RuleId::MetricKeyFormat => "metric-key-format",
            RuleId::DeprecatedApi => "deprecated-api",
            RuleId::HotPathAlloc => "hot-path-alloc",
            RuleId::PartyLoopAlloc => "party-loop-alloc",
            RuleId::TrialScopePrecompute => "trial-scope-precompute",
            RuleId::LaneSeedDiscipline => "lane-seed-discipline",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::SeedProvenance => "seed-provenance",
            RuleId::ObserverPurity => "observer-purity",
            RuleId::PanicPath => "panic-path",
            RuleId::Suppression => "suppression",
        }
    }

    /// One-line rationale shown by `cargo xtask lint --list-rules`.
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::WallClock => {
                "wall-clock reads outside beeps-metrics' span module and \
                 beeps-observe's clock module break bitwise-identical \
                 output; use MetricsRegistry wall spans or observe::clock"
            }
            RuleId::EntropyRng => {
                "entropy-seeded RNGs make trials unreproducible; derive all \
                 randomness from the per-trial splitmix seed"
            }
            RuleId::HashCollections => {
                "HashMap/HashSet iteration order is nondeterministic; use \
                 BTreeMap/BTreeSet so every rendering is a pure function of \
                 the data"
            }
            RuleId::EnvRead => {
                "environment reads outside the documented BEEPS_* knobs are \
                 hidden inputs that change results between machines"
            }
            RuleId::SimNamePrefix => {
                "sim.<scheme>.* metric literals must name a real \
                 Simulator::name() so dashboards and tests cannot drift"
            }
            RuleId::ExperimentId => {
                "ExperimentLog IDs must equal the binary filename and be \
                 unique so target/experiments/<id>.json maps 1:1 to sources"
            }
            RuleId::MetricKeyFormat => {
                "metric keys must be lowercase dot-separated under a family \
                 documented in EXPERIMENTS.md's schema section"
            }
            RuleId::DeprecatedApi => {
                "first-party #[deprecated] APIs slated for removal must \
                 not gain call sites"
            }
            RuleId::HotPathAlloc => {
                "the executor round loop runs once per channel round; \
                 format!/String allocation there dominates profiles — \
                 intern beeps_metrics::CounterHandle up front instead"
            }
            RuleId::PartyLoopAlloc => {
                "the collapsed engines and the sparse channel run their \
                 loops once per party per round at n up to 10^6; any \
                 heap constructor there turns O(1) amortized rounds \
                 into allocator traffic — reuse the SoaScratch arenas \
                 or the sampler's pooled rows instead"
            }
            RuleId::TrialScopePrecompute => {
                "code-table construction inside a TrialRunner per-trial \
                 closure repeats trial-invariant precomputation every \
                 trial; hoist it before the runner call or attach a \
                 shared CodeCache to the SimulatorConfig"
            }
            RuleId::LaneSeedDiscipline => {
                "lane-sliced executor code must draw every lane's noise \
                 from the per-trial splitmix seed stream; a direct \
                 StdRng::seed_from_u64 there silently breaks per-trial \
                 bitwise identity with the scalar path"
            }
            RuleId::AtomicOrdering => {
                "Ordering::Relaxed is reserved for the observe progress \
                 counters and documented inert-path loads; merge and \
                 claim-counter atomics synchronize real cross-thread \
                 state and must be acquire/release"
            }
            RuleId::SeedProvenance => {
                "every RNG seed in core/channel/bench must trace to the \
                 per-trial splitmix derivation (trial_seed) or a known \
                 seed-deriving fn; literal seeds and cross-lane reuse \
                 silently couple trials"
            }
            RuleId::ObserverPurity => {
                "observation is a pure side channel: Observer impls and \
                 observe::phase/mark callsite args must not run \
                 simulations, mutate registries, or construct RNGs"
            }
            RuleId::PanicPath => {
                "library crates budget undocumented unwrap/expect/panic \
                 sites per file; beyond it, return a Result, document a \
                 `# Panics` contract, or justify an allow"
            }
            RuleId::Suppression => {
                "beeps-lint: allow(…) comments must name known rules, carry \
                 a justification after --, and actually suppress something"
            }
        }
    }

    /// Parses a kebab-case rule ID.
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Files (relative, `/`-separated) where wall-clock reads are legal:
/// the metrics span module (see `beeps_metrics::Stopwatch`) and the
/// observability clock module (`beeps_observe::clock`, the single
/// timestamp source for progress, profiles, and run logs). Everything
/// else — including the rest of `crates/observe` — must go through
/// those two.
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/metrics/src/registry.rs",
    "crates/observe/src/clock.rs",
];

/// Substrings that indicate a wall-clock read. Matched against the
/// comment-stripped, string-blanked code view.
const WALL_CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now"];

/// Entropy-seeded RNG constructors. None of these exist in the
/// vendored `rand` subset today; the rule keeps them from ever being
/// (re-)introduced alongside a vendored upgrade.
const ENTROPY_PATTERNS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Methods whose first string argument is a deterministic metric key.
/// Wall-span methods (`time`, `record_wall`) are exempt: wall keys are
/// never serialized or compared.
const METRIC_METHODS: &[&str] = &[".inc(", ".observe(", ".event(", ".counter(", ".histogram("];

/// Files whose non-test code must stay allocation-free: these hold the
/// innermost per-round loops of every simulation, so a single `format!`
/// there shows up directly in wall-clock profiles.
const HOT_PATH_FILES: &[&str] = &["crates/channel/src/executor.rs"];

/// String-allocation constructors banned in hot-path files. Matched
/// against the comment-stripped code view of non-test lines.
const HOT_PATH_ALLOC_PATTERNS: &[&str] = &[
    "format!(",
    ".to_string(",
    ".to_owned(",
    "String::from(",
    "String::new(",
];

/// Files holding the per-round per-party loops of the scaling path:
/// the collapsed struct-of-arrays engines and the sparse delivery
/// representation. Steady-state simulation there must reuse scratch
/// arenas (`SoaScratch`, the sampler's pooled rows) — a heap
/// constructor inside these files runs up to `n = 10^6` times per
/// round.
const PARTY_LOOP_FILES: &[&str] = &["crates/core/src/soa.rs", "crates/channel/src/sparse.rs"];

/// Heap-allocating constructors banned in party-loop files. Broader
/// than the hot-path list: `Vec` growth is the dominant allocator in
/// these loops, not `String` formatting. Matched against the
/// comment-stripped code view of non-test lines.
const PARTY_LOOP_ALLOC_PATTERNS: &[&str] = &[
    "vec![",
    ".to_vec(",
    ".collect(",
    "format!(",
    ".to_string(",
    ".to_owned(",
    "String::",
    "Box::new(",
];

/// Directory (relative-path fragment) whose files hold the experiment
/// binaries: the only place `TrialRunner` per-trial closures live, and
/// the scope of the `trial-scope-precompute` rule.
const TRIAL_BIN_DIR: &str = "crates/bench/src/bin/";

/// `TrialRunner` entry points whose closure argument runs once per
/// trial. Matched as suffixes of the code up to an opening paren, so
/// `Executor::run(` (no dot) never opens a region.
const TRIAL_RUN_MARKERS: &[&str] = &[
    ".run(",
    ".run_records(",
    ".run_with_metrics(",
    ".run_with_scratch(",
];

/// Trial-invariant precomputation that must not run inside a per-trial
/// closure: code-table construction is the dominant fixed cost of a
/// simulator, and the same table is rebuilt identically every trial.
const TRIAL_PRECOMPUTE_PATTERNS: &[&str] = &[
    "build_code(",
    "RandomCode::with_length(",
    "ConstantWeightCode::new(",
];

/// Files holding lane-sliced (bit-sliced, 64-trials-per-word) executor
/// code. Every lane's randomness must come from that trial's splitmix
/// seed via the two sanctioned seeding sites — `LaneChannel::shared`
/// (shared noise) and `IndependentLaneChannel::new` (per-party flip
/// calendars), each fanning the per-trial splitmix seeds out to lanes;
/// any other direct seeding would let two lanes share (or skew) a
/// stream and break bitwise identity with the per-trial scalar path.
const LANE_SLICED_FILES: &[&str] = &["crates/channel/src/lanes.rs", "crates/core/src/lanes.rs"];

/// RNG seeding constructors banned in lane-sliced files outside the
/// sanctioned sites. `StochasticChannel::new` is on the list because
/// constructing a scalar channel seeds a fresh RNG stream internally:
/// lane engines must draw through `LaneChannel` /
/// `IndependentLaneChannel` (or take an already-seeded source), never
/// re-seed per lane themselves.
const LANE_SEED_PATTERNS: &[&str] = &[
    "seed_from_u64(",
    "SeedableRng::from_seed(",
    "StochasticChannel::new(",
];

/// The atomics policy table: files whose `Ordering::Relaxed` uses are
/// sanctioned wholesale. Exactly the observe progress/ambient counters
/// — monotone telemetry read by a reporter thread, where staleness is
/// harmless and the hot-path cost of a fence is not. Everywhere else,
/// `Relaxed` needs a documented `beeps-lint: allow(atomic-ordering)`
/// arguing the load/store is inert.
const ATOMIC_RELAXED_ALLOWED: &[&str] = &[
    "crates/observe/src/progress.rs",
    "crates/observe/src/ambient.rs",
];

/// The `std::sync::atomic::Ordering` variants.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Path prefixes in scope for `seed-provenance`: everywhere simulation
/// randomness is constructed. (`tests/` dirs and `#[cfg(test)]` regions
/// are exempt — tests pin fixed seeds on purpose.)
const SEED_SCOPE_PREFIXES: &[&str] = &[
    "crates/core/src",
    "crates/channel/src",
    "crates/bench/src",
    "examples/",
    "src/",
];

/// Seed-consuming constructors whose argument must trace to a
/// per-trial derivation.
const SEED_SINKS: &[&str] = &["seed_from_u64", "from_seed", "reseed"];

/// Maximum undocumented `unwrap`/`expect`/panic-macro sites per
/// library-crate file before `panic-path` starts firing. Sites inside
/// `#[cfg(test)]` regions or fns documenting a `# Panics` contract are
/// exempt.
const PANIC_PATH_BUDGET: usize = 2;

/// Methods that mutate a metrics registry — banned inside the
/// observation side channel.
const REGISTRY_MUTATORS: &[&str] = &["inc", "observe", "event", "merge", "record_simulation"];

/// Cross-file facts gathered before the analysis passes run.
#[derive(Debug, Default)]
pub struct Facts {
    /// `Simulator::name()` return literals (`rewind`, `naked`, …).
    pub simulator_names: BTreeSet<String>,
    /// First-party `#[deprecated]` function names and their defining file.
    pub deprecated: BTreeMap<String, String>,
    /// Metric families documented in EXPERIMENTS.md (`sim`, `exp`, …).
    pub metric_families: BTreeSet<String>,
    /// First-party seed-deriving fns (non-test fns whose name contains
    /// `seed` or `splitmix`, e.g. `trial_seed`), discovered by the item
    /// pass; `seed-provenance` accepts calls to them as provenance.
    pub seed_fns: BTreeSet<String>,
}

impl Facts {
    /// Gathers facts from the lexed sources plus the workspace's
    /// `EXPERIMENTS.md` (`experiments_md` is its content, if present).
    #[must_use]
    pub fn gather(files: &[SourceFile], experiments_md: Option<&str>) -> Self {
        let mut facts = Facts::default();
        if let Some(md) = experiments_md {
            facts.metric_families = parse_metric_families(md);
        }
        for file in files {
            for f in &file.items.fns {
                let lower = f.name.to_lowercase();
                if !f.is_test && (lower.contains("seed") || lower.contains("splitmix")) {
                    facts.seed_fns.insert(f.name.clone());
                }
            }
            for (idx, line) in file.lines.iter().enumerate() {
                // fn name(&self) -> &'static str { "rewind" }
                if line.code.contains("fn name(")
                    && line.code.contains("&'static str")
                    && !line.code.trim_end().ends_with(';')
                {
                    for look in file.lines.iter().skip(idx).take(4) {
                        if let Some(lit) = look.strings.first() {
                            facts.simulator_names.insert(lit.clone());
                            break;
                        }
                    }
                }
                // #[deprecated(…)] pub fn old_api(…)
                if line.code.contains("#[deprecated") {
                    for look in file.lines.iter().skip(idx).take(10) {
                        if let Some(name) = fn_ident(&look.code) {
                            facts
                                .deprecated
                                .insert(name, file.path.to_string_lossy().replace('\\', "/"));
                            break;
                        }
                    }
                }
            }
        }
        facts
    }
}

/// Extracts the identifier of a `fn` item declared on `code`.
fn fn_ident(code: &str) -> Option<String> {
    let at = code.find("fn ")?;
    // Reject matches inside a larger identifier (`often `).
    if at > 0
        && code[..at]
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    let rest = &code[at + 3..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Parses the metric-family table out of EXPERIMENTS.md: the first
/// markdown table whose header row contains a `family` column; each
/// data row's first backticked token contributes its leading dot
/// component (`sim.<scheme>.*` → `sim`).
#[must_use]
pub fn parse_metric_families(md: &str) -> BTreeSet<String> {
    let mut families = BTreeSet::new();
    let mut in_table = false;
    for line in md.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        if trimmed.to_lowercase().contains("| family") || trimmed.to_lowercase().contains("|family")
        {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        // A data (or separator) row of the family table.
        if let Some(tok) = trimmed.split('`').nth(1) {
            let family: String = tok
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            if !family.is_empty() && tok[family.len()..].starts_with('.') {
                families.insert(family);
            }
        }
    }
    families
}

/// One analysis pass: a single rule, run over every file. The engine
/// runs passes in order and times each one for `lint --timings`.
pub struct Pass {
    /// The rule this pass implements.
    pub rule: RuleId,
    /// Runs the pass, appending raw findings (suppression and baseline
    /// filtering happen in the caller).
    pub run: fn(&[SourceFile], &Facts, &mut Vec<Finding>),
}

/// Every analysis pass, in [`RuleId::ALL`] order. (`suppression` is a
/// meta-rule policed by the engine after suppressions are applied, so
/// it has no pass here.)
#[must_use]
pub fn passes() -> Vec<Pass> {
    vec![
        Pass {
            rule: RuleId::WallClock,
            run: pass_wall_clock,
        },
        Pass {
            rule: RuleId::EntropyRng,
            run: pass_entropy_rng,
        },
        Pass {
            rule: RuleId::HashCollections,
            run: pass_hash_collections,
        },
        Pass {
            rule: RuleId::EnvRead,
            run: pass_env_read,
        },
        Pass {
            rule: RuleId::SimNamePrefix,
            run: pass_sim_name_prefix,
        },
        Pass {
            rule: RuleId::ExperimentId,
            run: pass_experiment_id,
        },
        Pass {
            rule: RuleId::MetricKeyFormat,
            run: pass_metric_keys,
        },
        Pass {
            rule: RuleId::DeprecatedApi,
            run: pass_deprecated,
        },
        Pass {
            rule: RuleId::HotPathAlloc,
            run: pass_hot_path_alloc,
        },
        Pass {
            rule: RuleId::PartyLoopAlloc,
            run: pass_party_loop_alloc,
        },
        Pass {
            rule: RuleId::TrialScopePrecompute,
            run: pass_trial_scope_precompute,
        },
        Pass {
            rule: RuleId::LaneSeedDiscipline,
            run: pass_lane_seed_discipline,
        },
        Pass {
            rule: RuleId::AtomicOrdering,
            run: pass_atomic_ordering,
        },
        Pass {
            rule: RuleId::SeedProvenance,
            run: pass_seed_provenance,
        },
        Pass {
            rule: RuleId::ObserverPurity,
            run: pass_observer_purity,
        },
        Pass {
            rule: RuleId::PanicPath,
            run: pass_panic_path,
        },
    ]
}

/// Runs every analysis pass over `files`, appending raw findings.
pub fn check(files: &[SourceFile], facts: &Facts, out: &mut Vec<Finding>) {
    for pass in passes() {
        (pass.run)(files, facts, out);
    }
}

fn rel_path(file: &SourceFile) -> String {
    file.path.to_string_lossy().replace('\\', "/")
}

fn finding(rule: RuleId, rel: &str, line: usize, message: String) -> Finding {
    Finding {
        rule,
        path: rel.to_string(),
        line: line + 1,
        message,
    }
}

fn pass_wall_clock(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        if WALL_CLOCK_ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            for pat in WALL_CLOCK_PATTERNS {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::WallClock,
                        &rel,
                        idx,
                        format!(
                            "`{pat}` outside the metrics span module; route timing through \
                             `beeps_metrics::Stopwatch` / `MetricsRegistry::time` so wall-clock \
                             stays out of deterministic state"
                        ),
                    ));
                }
            }
        }
    }
}

fn pass_entropy_rng(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        for (idx, line) in file.lines.iter().enumerate() {
            for pat in ENTROPY_PATTERNS {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::EntropyRng,
                        &rel,
                        idx,
                        format!(
                            "`{pat}` seeds from entropy; derive all randomness from the \
                             per-trial seed (`trial_seed` / `StdRng::seed_from_u64`)"
                        ),
                    ));
                }
            }
        }
    }
}

fn pass_hash_collections(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        for (idx, line) in file.lines.iter().enumerate() {
            for pat in ["HashMap", "HashSet"] {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::HashCollections,
                        &rel,
                        idx,
                        format!(
                            "`{pat}` has nondeterministic iteration order; use the BTree \
                             equivalent (BTree-only rule)"
                        ),
                    ));
                }
            }
        }
    }
}

fn pass_env_read(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        for (idx, line) in file.lines.iter().enumerate() {
            if line.code.contains("env::var") {
                let allowlisted = line.strings.iter().any(|s| s.starts_with("BEEPS_"));
                if !allowlisted {
                    out.push(finding(
                        RuleId::EnvRead,
                        &rel,
                        idx,
                        "environment read outside the documented `BEEPS_*` allowlist is a \
                         hidden input; name the variable `BEEPS_*` and document it, or drop \
                         the read"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

fn pass_sim_name_prefix(files: &[SourceFile], facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        for (idx, line) in file.lines.iter().enumerate() {
            for lit in &line.strings {
                let Some(rest) = lit.strip_prefix("sim.") else {
                    continue;
                };
                let scheme: &str = rest.split('.').next().unwrap_or_default();
                if scheme.is_empty() || scheme.contains('{') {
                    continue; // dynamic (`sim.{scheme}.…`) or bare prefix
                }
                if !facts.simulator_names.contains(scheme) {
                    out.push(finding(
                        RuleId::SimNamePrefix,
                        &rel,
                        idx,
                        format!(
                            "`sim.{scheme}.*` does not match any `Simulator::name()` \
                             (known: {})",
                            facts
                                .simulator_names
                                .iter()
                                .cloned()
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    ));
                }
            }
        }
    }
}

/// Extracts the string literal passed as the first argument of the
/// call starting at `marker` on line `idx`, when that argument is
/// syntactically a literal (possibly through `&format!(…)`). Returns
/// `None` for variable arguments like `.inc(&key(…), 1)`.
fn literal_arg(file: &SourceFile, idx: usize, marker: &str) -> Option<(usize, String)> {
    let line = &file.lines[idx];
    let pos = line.code.find(marker)?;
    let after = line.code[pos + marker.len()..].trim_start();
    let is_literal_head = |s: &str| {
        s.starts_with('"')
            || s.starts_with("&\"")
            || s.starts_with("format!(\"")
            || s.starts_with("&format!(\"")
    };
    if is_literal_head(after) {
        return line.strings.first().map(|s| (idx, s.clone()));
    }
    if after.contains(')') {
        return None; // call closed on this line without a literal arg
    }
    // Call continues on the next line(s).
    for (off, next) in file.lines.iter().enumerate().skip(idx + 1).take(2) {
        if is_literal_head(next.code.trim_start()) {
            return next.strings.first().map(|s| (off, s.clone()));
        }
        if next.has_code {
            return None;
        }
    }
    None
}

fn pass_experiment_id(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    let mut seen: BTreeMap<String, String> = BTreeMap::new();
    for file in files {
        let rel = rel_path(file);
        if !rel.contains("src/bin/") {
            continue;
        }
        let stem = file.stem().to_string();
        for (idx, line) in file.lines.iter().enumerate() {
            if !line.code.contains("ExperimentLog::new") {
                continue;
            }
            let Some((_, id)) = literal_arg(file, idx, "ExperimentLog::new(") else {
                continue;
            };
            if id != stem {
                out.push(finding(
                    RuleId::ExperimentId,
                    &rel,
                    idx,
                    format!(
                        "experiment ID \"{id}\" must equal the binary filename stem \"{stem}\""
                    ),
                ));
            }
            if let Some(prev) = seen.insert(id.clone(), rel.clone()) {
                out.push(finding(
                    RuleId::ExperimentId,
                    &rel,
                    idx,
                    format!("experiment ID \"{id}\" already used by {prev}; IDs must be unique"),
                ));
            }
        }
    }
}

/// Charset check: lowercase dot-separated, digits/underscores allowed,
/// `{…}` interpolations (with `:` format specs) tolerated.
fn key_charset_ok(key: &str) -> bool {
    key.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._{}:".contains(c))
}

fn pass_metric_keys(files: &[SourceFile], facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        let in_tests_dir = rel.contains("tests/");
        for (idx, line) in file.lines.iter().enumerate() {
            let Some(marker) = METRIC_METHODS.iter().find(|m| line.code.contains(*m)) else {
                continue;
            };
            let Some((key_idx, key)) = literal_arg(file, idx, marker) else {
                continue;
            };
            if key.is_empty() {
                continue;
            }
            if !key_charset_ok(&key) {
                out.push(finding(
                    RuleId::MetricKeyFormat,
                    &rel,
                    key_idx,
                    format!("metric key \"{key}\" must be lowercase dot-separated ([a-z0-9_.])"),
                ));
                continue;
            }
            // Family membership: shipping code only — unit tests and
            // integration tests may use throwaway keys.
            if line.in_test || in_tests_dir || facts.metric_families.is_empty() {
                continue;
            }
            let family: &str = key.split('.').next().unwrap_or_default();
            if family.contains('{') {
                continue; // dynamically assembled prefix
            }
            if !facts.metric_families.contains(family) {
                out.push(finding(
                    RuleId::MetricKeyFormat,
                    &rel,
                    key_idx,
                    format!(
                        "metric key \"{key}\" is not under a family documented in \
                         EXPERIMENTS.md (known: {})",
                        facts
                            .metric_families
                            .iter()
                            .cloned()
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
    }
}

fn pass_deprecated(files: &[SourceFile], facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        for (idx, line) in file.lines.iter().enumerate() {
            for (symbol, def_file) in &facts.deprecated {
                let call = format!("{symbol}(");
                let def = format!("fn {symbol}(");
                if line.code.contains(call.as_str()) && !line.code.contains(def.as_str()) {
                    out.push(finding(
                        RuleId::DeprecatedApi,
                        &rel,
                        idx,
                        format!(
                            "call to `{symbol}` (marked #[deprecated] in {def_file}, slated \
                             for removal); migrate to the replacement named in its note"
                        ),
                    ));
                }
            }
        }
    }
}

fn pass_hot_path_alloc(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        if !HOT_PATH_FILES.contains(&rel.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue; // unit tests may build diagnostic strings freely
            }
            for pat in HOT_PATH_ALLOC_PATTERNS {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::HotPathAlloc,
                        &rel,
                        idx,
                        format!(
                            "`{pat}…)` allocates inside the executor hot path; intern a \
                             `beeps_metrics::CounterHandle` before the round loop (or hoist \
                             the allocation out of this file)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Flags heap-allocating constructors in the files holding per-round
/// per-party loops (`PARTY_LOOP_FILES`). File-scoped like
/// `hot-path-alloc` rather than loop-scoped: these files exist *for*
/// their party loops, and setup-time allocation belongs in the
/// `SoaScratch` constructors that live elsewhere, so a whole-file ban
/// is both simpler and the invariant we actually want.
fn pass_party_loop_alloc(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        if !PARTY_LOOP_FILES.contains(&rel.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue; // unit tests may build expected-value vectors freely
            }
            for pat in PARTY_LOOP_ALLOC_PATTERNS {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::PartyLoopAlloc,
                        &rel,
                        idx,
                        format!(
                            "`{pat}…` allocates inside a per-round per-party file; reuse \
                             the SoaScratch arenas / pooled sampler rows, or hoist the \
                             allocation into setup code outside this file"
                        ),
                    ));
                }
            }
        }
    }
}

/// Flags direct RNG seeding in lane-sliced executor files. The two
/// sanctioned sites (`LaneChannel::shared` and
/// `IndependentLaneChannel::new`, which fan the per-trial splitmix
/// seeds out to lanes) carry justified suppressions; any new seeding —
/// including indirect seeding via `StochasticChannel::new` — must
/// either route through them or argue its case in a suppression
/// comment.
fn pass_lane_seed_discipline(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        if !LANE_SLICED_FILES.contains(&rel.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue; // tests may seed scalar reference channels freely
            }
            for pat in LANE_SEED_PATTERNS {
                if line.code.contains(pat) {
                    out.push(finding(
                        RuleId::LaneSeedDiscipline,
                        &rel,
                        idx,
                        format!(
                            "`{pat}…)` seeds an RNG inside lane-sliced executor code; draw \
                             lane randomness from the per-trial splitmix seed stream via \
                             `LaneChannel::shared` / `IndependentLaneChannel::new` so lanes \
                             stay bitwise identical to per-trial runs"
                        ),
                    ));
                }
            }
        }
    }
}

/// Flags trial-invariant code-table construction inside the argument
/// list (in practice: the per-trial closure) of a [`TRIAL_RUN_MARKERS`]
/// call in an experiment binary. Regions are tracked by paren depth
/// across lines: a marker opens a region at its paren depth, and the
/// region closes when the depth drops back below it, so hoisted builds
/// before the runner call never fire.
fn pass_trial_scope_precompute(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        if !rel.contains(TRIAL_BIN_DIR) {
            continue;
        }
        let mut depth: i64 = 0;
        // Paren depths at which an (possibly nested) runner call is open.
        let mut regions: Vec<i64> = Vec::new();
        for (idx, line) in file.lines.iter().enumerate() {
            let code = line.code.as_str();
            for (pos, c) in code.char_indices() {
                match c {
                    '(' => {
                        depth += 1;
                        let head = &code[..pos + c.len_utf8()];
                        if TRIAL_RUN_MARKERS.iter().any(|m| head.ends_with(m)) {
                            regions.push(depth);
                        }
                    }
                    ')' => {
                        depth -= 1;
                        while regions.last().is_some_and(|&open| depth < open) {
                            regions.pop();
                        }
                    }
                    _ => {}
                }
                if regions.is_empty() {
                    continue;
                }
                if let Some(pat) = TRIAL_PRECOMPUTE_PATTERNS
                    .iter()
                    .find(|p| code[pos..].starts_with(**p))
                {
                    let name = pat.trim_end_matches('(');
                    out.push(finding(
                        RuleId::TrialScopePrecompute,
                        &rel,
                        idx,
                        format!(
                            "`{name}` inside a per-trial closure rebuilds the same \
                             code table every trial; hoist it before the TrialRunner \
                             call or attach a shared `CodeCache` to the config"
                        ),
                    ));
                }
            }
        }
    }
}

/// True when the token at `t` falls in a `#[cfg(test)]` region.
fn tok_in_test(file: &SourceFile, t: &Token) -> bool {
    file.lines.get(t.line).is_some_and(|l| l.in_test)
}

/// Walks backwards from the token at `at` (inside an argument list) to
/// the enclosing call: returns `(method, receiver)` — the identifier
/// before the depth-0 opening paren and, when the call is a method
/// call, the identifier before its dot.
fn enclosing_call(tokens: &[Token], at: usize) -> (Option<String>, Option<String>) {
    let mut depth = 0i64;
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &tokens[j].tok {
            Tok::Close(Delim::Paren) => depth += 1,
            Tok::Open(Delim::Paren) => {
                if depth == 0 {
                    let method = j
                        .checked_sub(1)
                        .and_then(|m| tokens[m].tok.ident().map(str::to_string));
                    let receiver = j.checked_sub(3).and_then(|r| {
                        (tokens[r + 1].tok.is_punct('.'))
                            .then(|| tokens[r].tok.ident().map(str::to_string))
                            .flatten()
                    });
                    return (method, receiver);
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    (None, None)
}

/// The atomic-ordering audit: classifies every `Ordering::<variant>`
/// token sequence against the per-module policy. `Relaxed` is legal
/// only in [`ATOMIC_RELAXED_ALLOWED`] (observe progress counters) and
/// `#[cfg(test)]` regions; anywhere else it is a finding that names
/// the atomic and the ordering the call needs (`load` → `Acquire`,
/// `store` → `Release`, read-modify-write → `AcqRel`).
fn pass_atomic_ordering(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        if ATOMIC_RELAXED_ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].tok.is_ident("Ordering") {
                continue;
            }
            let Some(variant) = toks
                .get(i + 1)
                .filter(|t| t.tok.is_punct(':'))
                .and(toks.get(i + 2))
                .filter(|t| t.tok.is_punct(':'))
                .and(toks.get(i + 3))
                .and_then(|t| t.tok.ident())
            else {
                continue;
            };
            if !ATOMIC_ORDERINGS.contains(&variant) || variant != "Relaxed" {
                continue;
            }
            if tok_in_test(file, &toks[i]) {
                continue;
            }
            let (method, receiver) = enclosing_call(toks, i);
            let required = match method.as_deref() {
                Some("load") => "Acquire",
                Some("store") => "Release",
                Some(_) => "AcqRel",
                None => "Acquire/Release",
            };
            let site = match (&method, &receiver) {
                (Some(m), Some(r)) => format!("`{r}.{m}`"),
                (Some(m), None) => format!("`{m}`"),
                _ => "this atomic".to_string(),
            };
            out.push(finding(
                RuleId::AtomicOrdering,
                &rel,
                toks[i].line,
                format!(
                    "`Ordering::Relaxed` on {site} is outside the atomics policy \
                     (Relaxed is reserved for the observe progress counters); this \
                     site synchronizes cross-thread state and needs \
                     `Ordering::{required}`, or a `beeps-lint: allow(atomic-ordering)` \
                     documenting why the access is inert"
                ),
            ));
        }
    }
}

/// Renders an argument token slice to compact text (for cross-lane
/// seed-reuse comparison and messages).
fn render_args(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match &t.tok {
            Tok::Ident(s) => {
                if !out.is_empty() && out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push_str(s);
            }
            Tok::Lifetime(s) => {
                out.push('\'');
                out.push_str(s);
            }
            Tok::Int(s) | Tok::Float(s) => {
                if !out.is_empty() && out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push_str(s);
            }
            Tok::Str(_) => out.push('"'),
            Tok::Char => out.push('\''),
            Tok::Punct(c) => out.push(*c),
            Tok::Open(Delim::Paren) => out.push('('),
            Tok::Open(Delim::Bracket) => out.push('['),
            Tok::Open(Delim::Brace) => out.push('{'),
            Tok::Close(Delim::Paren) => out.push(')'),
            Tok::Close(Delim::Bracket) => out.push(']'),
            Tok::Close(Delim::Brace) => out.push('}'),
        }
    }
    out
}

/// The seed-provenance pass: inside [`SEED_SCOPE_PREFIXES`], every
/// [`SEED_SINKS`] call's arguments must trace to a per-trial splitmix
/// derivation — an identifier carrying `seed`/`splitmix`, or a call to
/// a [`Facts::seed_fns`] deriver. Integer-literal seeds and argument
/// expressions with no traceable identifier are findings, as is the
/// same seed expression feeding two sinks in a lane-sliced file.
fn pass_seed_provenance(files: &[SourceFile], facts: &Facts, out: &mut Vec<Finding>) {
    let traced = |id: &str| {
        let lower = id.to_lowercase();
        lower.contains("seed") || lower.contains("splitmix") || facts.seed_fns.contains(id)
    };
    for file in files {
        let rel = rel_path(file);
        if !SEED_SCOPE_PREFIXES.iter().any(|p| rel.starts_with(p)) || rel.contains("tests/") {
            continue;
        }
        let lane_file = LANE_SLICED_FILES.contains(&rel.as_str());
        // seed expression text -> 0-based line of its first sink.
        let mut lane_seen: BTreeMap<String, usize> = BTreeMap::new();
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let Some(name) = toks[i].tok.ident() else {
                continue;
            };
            if !SEED_SINKS.contains(&name) {
                continue;
            }
            if !toks
                .get(i + 1)
                .is_some_and(|t| matches!(t.tok, Tok::Open(Delim::Paren)))
            {
                continue;
            }
            // Skip declarations (`fn from_seed(…)`) and test regions.
            if i > 0 && toks[i - 1].tok.is_ident("fn") {
                continue;
            }
            if tok_in_test(file, &toks[i]) {
                continue;
            }
            let close = matching_close(toks, i + 1);
            let args = &toks[i + 2..close];
            if args.is_empty() {
                continue;
            }
            let line = toks[i].line;
            let idents: Vec<&str> = args.iter().filter_map(|t| t.tok.ident()).collect();
            if idents.is_empty() {
                out.push(finding(
                    RuleId::SeedProvenance,
                    &rel,
                    line,
                    format!(
                        "literal seed in `{name}({})` couples every run to one RNG \
                         stream; derive it from the per-trial splitmix stream \
                         (`trial_seed(base, trial_index)`) or justify with \
                         `beeps-lint: allow(seed-provenance)`",
                        render_args(args)
                    ),
                ));
            } else if !idents.iter().any(|id| traced(id)) {
                out.push(finding(
                    RuleId::SeedProvenance,
                    &rel,
                    line,
                    format!(
                        "seed argument `{}` does not trace to a per-trial splitmix \
                         derivation or a known seed-deriving fn ({}); thread the \
                         trial seed through explicitly",
                        render_args(args),
                        if facts.seed_fns.is_empty() {
                            "none discovered".to_string()
                        } else {
                            facts
                                .seed_fns
                                .iter()
                                .cloned()
                                .collect::<Vec<_>>()
                                .join(", ")
                        }
                    ),
                ));
            }
            if lane_file {
                if let Some(&prev) = lane_seen.get(&render_args(args)) {
                    out.push(finding(
                        RuleId::SeedProvenance,
                        &rel,
                        line,
                        format!(
                            "seed expression `{}` already feeds a lane sink on line {}; \
                             reusing one seed across lanes collapses their noise \
                             streams into lockstep",
                            render_args(args),
                            prev + 1
                        ),
                    ));
                } else {
                    lane_seen.insert(render_args(args), line);
                }
            }
        }
    }
}

/// Scans the token range `[lo, hi]` for constructs banned inside the
/// observation side channel and reports them under `observer-purity`.
fn scan_purity(
    file: &SourceFile,
    rel: &str,
    (lo, hi): (usize, usize),
    context: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut i = lo;
    while i <= hi.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if tok_in_test(file, t) {
            i += 1;
            continue;
        }
        let next_is_call = |k: usize| {
            toks.get(k + 1)
                .is_some_and(|n| matches!(n.tok, Tok::Open(Delim::Paren)))
        };
        if let Some(name) = t.tok.ident() {
            if name.starts_with("simulate") && next_is_call(i) {
                out.push(finding(
                    RuleId::ObserverPurity,
                    rel,
                    t.line,
                    format!(
                        "`{name}(…)` inside {context}: observation is a pure side \
                         channel and must never run simulations"
                    ),
                ));
            } else if matches!(name, "StdRng" | "SeedableRng" | "seed_from_u64") {
                out.push(finding(
                    RuleId::ObserverPurity,
                    rel,
                    t.line,
                    format!(
                        "`{name}` inside {context}: observers must not construct RNGs — \
                         any draw would perturb or fork the deterministic seed streams"
                    ),
                ));
            } else if name == "MetricsRegistry" {
                out.push(finding(
                    RuleId::ObserverPurity,
                    rel,
                    t.line,
                    format!(
                        "`MetricsRegistry` inside {context}: observers must not touch \
                         the metrics registry (metrics are part of deterministic output; \
                         observation is not)"
                    ),
                ));
            } else if i > 0
                && toks[i - 1].tok.is_punct('.')
                && REGISTRY_MUTATORS.contains(&name)
                && next_is_call(i)
            {
                out.push(finding(
                    RuleId::ObserverPurity,
                    rel,
                    t.line,
                    format!(
                        "`.{name}(…)` inside {context} mutates a metrics registry; \
                         observers may read hook arguments but never write back into \
                         deterministic state"
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// Path identifiers that qualify a `phase`/`mark` call as the observe
/// side channel (`beeps_observe::phase(…)`, `observe::mark(…)`, or the
/// crate-internal `ambient::phase(…)`).
const OBSERVE_PATHS: &[&str] = &["beeps_observe", "observe", "ambient"];

/// The observer-purity pass: bodies of non-test `impl Observer for …`
/// blocks, plus the argument lists of `observe::phase`/`mark` calls,
/// are scanned for simulation calls, registry mutation, and RNG
/// construction.
fn pass_observer_purity(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    for file in files {
        let rel = rel_path(file);
        for imp in &file.items.impls {
            if imp.is_test || imp.trait_name.as_deref() != Some("Observer") {
                continue;
            }
            scan_purity(file, &rel, imp.body_tokens, "an `Observer` impl", out);
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let is_hook = toks[i]
                .tok
                .ident()
                .is_some_and(|n| n == "phase" || n == "mark");
            if !is_hook || tok_in_test(file, &toks[i]) {
                continue;
            }
            // Require a `<observe-path>::phase(` shape so unrelated
            // `phase`/`mark` identifiers never open a region.
            let qualified = i >= 3
                && toks[i - 1].tok.is_punct(':')
                && toks[i - 2].tok.is_punct(':')
                && toks[i - 3]
                    .tok
                    .ident()
                    .is_some_and(|p| OBSERVE_PATHS.contains(&p));
            if !qualified
                || !toks
                    .get(i + 1)
                    .is_some_and(|t| matches!(t.tok, Tok::Open(Delim::Paren)))
            {
                continue;
            }
            let close = matching_close(toks, i + 1);
            scan_purity(
                file,
                &rel,
                (i + 2, close.saturating_sub(1)),
                "an `observe::phase`/`mark` callsite",
                out,
            );
        }
    }
}

/// The panic-path audit: counts undocumented `unwrap`/`expect`/
/// panic-macro sites per library-crate file and reports every site
/// beyond [`PANIC_PATH_BUDGET`]. Sites in `#[cfg(test)]` regions or
/// inside fns documenting a `# Panics` contract are exempt; binaries
/// (`src/bin/`, `examples/`) and test dirs are out of scope. Slice
/// indexing is deliberately excluded: the hot loops index packed words
/// structurally, and a budget there would be all noise.
fn pass_panic_path(files: &[SourceFile], _facts: &Facts, out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for file in files {
        let rel = rel_path(file);
        if !rel.starts_with("crates/")
            || !rel.contains("/src/")
            || rel.contains("/src/bin/")
            || rel.contains("tests/")
        {
            continue;
        }
        let toks = &file.tokens;
        let mut sites: Vec<(usize, String)> = Vec::new();
        for i in 0..toks.len() {
            let Some(name) = toks[i].tok.ident() else {
                continue;
            };
            let site = if matches!(name, "unwrap" | "expect")
                && i > 0
                && toks[i - 1].tok.is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|t| matches!(t.tok, Tok::Open(Delim::Paren)))
            {
                Some(format!(".{name}()"))
            } else if PANIC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('!'))
            {
                Some(format!("{name}!"))
            } else {
                None
            };
            let Some(kind) = site else {
                continue;
            };
            let line = toks[i].line;
            if tok_in_test(file, &toks[i]) || file.items.docs_panics_at(line) {
                continue;
            }
            sites.push((line, kind));
        }
        for (n, (line, kind)) in sites.iter().enumerate().skip(PANIC_PATH_BUDGET) {
            out.push(finding(
                RuleId::PanicPath,
                &rel,
                *line,
                format!(
                    "`{kind}` is undocumented panic site #{} in this library file \
                     (budget {PANIC_PATH_BUDGET}); return a `Result`, document a \
                     `# Panics` contract on the enclosing fn, or add \
                     `beeps-lint: allow(panic-path)` with justification",
                    n + 1
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.as_str()), Some(*rule));
            assert!(!rule.rationale().is_empty());
        }
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn passes_cover_all_rules_but_suppression() {
        let covered: Vec<RuleId> = passes().iter().map(|p| p.rule).collect();
        for rule in RuleId::ALL {
            if *rule == RuleId::Suppression {
                assert!(!covered.contains(rule));
            } else {
                assert!(covered.contains(rule), "no pass for {rule}");
            }
        }
    }

    #[test]
    fn family_table_parses() {
        let md = "intro\n\n| family | meaning |\n|---|---|\n| `sim.<scheme>.*` | per-scheme |\n| `exp.*` | ad-hoc |\n\nafter\n";
        let fams = parse_metric_families(md);
        assert_eq!(
            fams.iter().cloned().collect::<Vec<_>>(),
            vec!["exp".to_string(), "sim".to_string()]
        );
    }

    #[test]
    fn fn_ident_extraction() {
        assert_eq!(
            fn_ident("    pub fn old_entry_point(n: usize) -> Self {"),
            Some("old_entry_point".to_string())
        );
        assert_eq!(fn_ident("let often = 3;"), None);
        assert_eq!(fn_ident("fn x()"), Some("x".to_string()));
    }

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::lex(PathBuf::from(path), src);
        let files = vec![file];
        let facts = Facts::gather(&files, None);
        let mut out = Vec::new();
        check(&files, &facts, &mut out);
        out
    }

    #[test]
    fn atomic_relaxed_fires_with_required_ordering() {
        let src = "pub fn claim(next: &AtomicUsize) -> usize {\n    next.fetch_add(1, Ordering::Relaxed)\n}\n";
        let out = lint_one("crates/bench/src/runner.rs", src);
        let f = out
            .iter()
            .find(|f| f.rule == RuleId::AtomicOrdering)
            .expect("atomic finding");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("`next.fetch_add`"), "{}", f.message);
        assert!(f.message.contains("Ordering::AcqRel"), "{}", f.message);
    }

    #[test]
    fn atomic_relaxed_load_requires_acquire() {
        let src = "pub fn peek(done: &AtomicU64) -> u64 {\n    done.load(Ordering::Relaxed)\n}\n";
        let out = lint_one("crates/core/src/code_cache.rs", src);
        let f = out
            .iter()
            .find(|f| f.rule == RuleId::AtomicOrdering)
            .expect("atomic finding");
        assert!(f.message.contains("Ordering::Acquire"), "{}", f.message);
    }

    #[test]
    fn atomic_policy_allows_observe_progress_and_tests() {
        let src = "pub fn tick(n: &AtomicU64) {\n    n.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_one("crates/observe/src/progress.rs", src)
            .iter()
            .all(|f| f.rule != RuleId::AtomicOrdering));
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t(n: &AtomicU64) { n.load(Ordering::Relaxed); }\n}\n";
        assert!(lint_one("crates/core/src/owners.rs", test_src)
            .iter()
            .all(|f| f.rule != RuleId::AtomicOrdering));
    }

    #[test]
    fn seed_literal_and_untraced_fire_traced_passes() {
        let lit = "fn go() { let rng = StdRng::seed_from_u64(42); }\n";
        let out = lint_one("crates/channel/src/channel.rs", lit);
        assert!(out
            .iter()
            .any(|f| f.rule == RuleId::SeedProvenance && f.message.contains("literal seed")));

        let untraced = "fn go(idx: u64) { let rng = StdRng::seed_from_u64(idx); }\n";
        let out = lint_one("crates/channel/src/channel.rs", untraced);
        assert!(out
            .iter()
            .any(|f| f.rule == RuleId::SeedProvenance && f.message.contains("does not trace")));

        let traced = "fn go(trial_seed_v: u64) { let rng = StdRng::seed_from_u64(trial_seed_v ^ 0x9E37); }\n";
        assert!(lint_one("crates/channel/src/channel.rs", traced)
            .iter()
            .all(|f| f.rule != RuleId::SeedProvenance));
    }

    #[test]
    fn seed_rule_skips_tests_and_out_of_scope_paths() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let r = StdRng::seed_from_u64(7); }\n}\n";
        assert!(lint_one("crates/core/src/owners.rs", src)
            .iter()
            .all(|f| f.rule != RuleId::SeedProvenance));
        let src2 = "fn t() { let r = StdRng::seed_from_u64(7); }\n";
        assert!(lint_one("crates/metrics/src/registry.rs", src2)
            .iter()
            .all(|f| f.rule != RuleId::SeedProvenance));
    }

    #[test]
    fn cross_lane_seed_reuse_fires_in_lane_files() {
        let src = "fn lanes(seed: u64) {\n    let a = StdRng::seed_from_u64(seed);\n    let b = StdRng::seed_from_u64(seed);\n}\n";
        let out = lint_one("crates/channel/src/lanes.rs", src);
        let reuse: Vec<_> = out
            .iter()
            .filter(|f| f.rule == RuleId::SeedProvenance && f.message.contains("already feeds"))
            .collect();
        assert_eq!(reuse.len(), 1);
        assert_eq!(reuse[0].line, 3);
    }

    #[test]
    fn observer_impl_purity() {
        let src = "impl Observer for Bad {\n    fn on_run_start(&self) {\n        let r = StdRng::seed_from_u64(1);\n        self.registry.inc(\"exp.x\", 1);\n    }\n}\nimpl Observer for Good {\n    fn on_run_start(&self) { let x = 1 + 1; }\n}\n";
        let out = lint_one("crates/observe/src/custom.rs", src);
        let purity: Vec<_> = out
            .iter()
            .filter(|f| f.rule == RuleId::ObserverPurity)
            .collect();
        assert!(purity.iter().any(|f| f.message.contains("RNG")));
        assert!(purity.iter().any(|f| f.message.contains(".inc(")));
        assert!(purity.iter().all(|f| f.line <= 6), "good impl flagged");
    }

    #[test]
    fn observe_callsite_args_scanned() {
        let src = "fn run(sim: &dyn Simulator) {\n    beeps_observe::phase(\"merge\", simulate_once(sim));\n}\n";
        let out = lint_one("crates/bench/src/glue.rs", src);
        assert!(out
            .iter()
            .any(|f| f.rule == RuleId::ObserverPurity && f.message.contains("simulate_once")));
    }

    #[test]
    fn panic_budget_counts_only_undocumented_sites() {
        let src = "\
/// Runs.\n\
///\n\
/// # Panics\n\
/// Panics when poisoned.\n\
pub fn documented(m: &Mutex<u32>) -> u32 {\n\
    *m.lock().expect(\"poisoned\")\n\
}\n\
pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
pub fn b(x: Option<u32>) -> u32 { x.expect(\"b\") }\n\
pub fn c(x: Option<u32>) -> u32 { x.unwrap() }\n\
pub fn d() { panic!(\"d\") }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t(x: Option<u32>) { x.unwrap(); }\n\
}\n";
        let out = lint_one("crates/core/src/thing.rs", src);
        let hits: Vec<_> = out.iter().filter(|f| f.rule == RuleId::PanicPath).collect();
        // Sites: a, b, c, d (documented + test exempt). Budget 2 → c, d fire.
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 10);
        assert_eq!(hits[1].line, 11);
        // Out of scope: same source as a binary.
        assert!(lint_one("crates/bench/src/bin/fig_x.rs", src)
            .iter()
            .all(|f| f.rule != RuleId::PanicPath));
    }
}
