//! Fixture tests: every rule fires on its seeded violation, respects
//! suppressions, and honors the baseline. Each fixture under
//! `tests/fixtures/<case>/` is a miniature workspace tree.

use std::path::PathBuf;

use xtask::{lint_workspace, Baseline, LintReport, RuleId};

fn fixture_root(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

fn run(case: &str) -> LintReport {
    let root = fixture_root(case);
    let baseline = Baseline::load(&root.join("xtask-lint.baseline")).expect("baseline readable");
    lint_workspace(&root, &baseline).expect("fixture lints")
}

fn rules_of(report: &LintReport) -> Vec<RuleId> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_fires_outside_span_module_only() {
    let report = run("wall_clock");
    assert_eq!(rules_of(&report), [RuleId::WallClock, RuleId::WallClock]);
    assert!(
        report.findings.iter().all(|f| f.path == "src/lib.rs"),
        "metrics registry module must stay exempt: {:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 2);
    assert_eq!(report.findings[1].line, 3);
}

#[test]
fn wall_clock_sanctions_exactly_one_observe_module() {
    let report = run("wall_clock_observe");
    assert_eq!(rules_of(&report), [RuleId::WallClock]);
    assert_eq!(
        report.findings[0].path, "crates/observe/src/progress.rs",
        "only observe/src/clock.rs is exempt; the rest of the observe \
         crate must go through it: {:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 2);
}

#[test]
fn entropy_rng_fires_on_entropy_seeding_only() {
    let report = run("entropy_rng");
    assert_eq!(rules_of(&report), [RuleId::EntropyRng, RuleId::EntropyRng]);
    assert!(report.findings[0].message.contains("thread_rng"));
    assert!(report.findings[1].message.contains("from_entropy"));
}

#[test]
fn hash_collections_fires_on_hashmap_and_hashset() {
    let report = run("hash_collections");
    assert_eq!(
        rules_of(&report),
        [RuleId::HashCollections, RuleId::HashCollections]
    );
}

#[test]
fn env_read_allows_beeps_prefix_only() {
    let report = run("env_read");
    assert_eq!(rules_of(&report), [RuleId::EnvRead]);
    assert_eq!(report.findings[0].line, 2, "only the HOME read fires");
}

#[test]
fn sim_name_prefix_catches_typos() {
    let report = run("sim_name");
    assert_eq!(rules_of(&report), [RuleId::SimNamePrefix]);
    assert!(report.findings[0].message.contains("sim.rewnd"));
    assert!(
        report.findings[0].message.contains("rewind"),
        "message lists the known names: {}",
        report.findings[0].message
    );
}

#[test]
fn experiment_id_enforces_filename_match_and_uniqueness() {
    let report = run("experiment_id");
    assert_eq!(
        rules_of(&report),
        [RuleId::ExperimentId, RuleId::ExperimentId]
    );
    assert!(report
        .findings
        .iter()
        .all(|f| f.path.ends_with("tab9_bad.rs")));
    assert!(report.findings[0].message.contains("tab9_bad"));
    assert!(report.findings[1].message.contains("already used"));
}

#[test]
fn metric_key_format_checks_charset_and_family() {
    let report = run("metric_key");
    assert_eq!(
        rules_of(&report),
        [
            RuleId::MetricKeyFormat,
            RuleId::MetricKeyFormat,
            RuleId::MetricKeyFormat
        ]
    );
    assert!(report.findings[0].message.contains("exp.BadCase.trials"));
    assert!(report.findings[1].message.contains("unknown_family.x"));
    assert!(report.findings[2].message.contains("bare_key"));
    // The cfg(test) scratch key and the dynamic keys never fire.
}

#[test]
fn deprecated_api_denies_call_sites_not_definitions() {
    let report = run("deprecated");
    assert_eq!(rules_of(&report), [RuleId::DeprecatedApi]);
    assert_eq!(report.findings[0].line, 7);
    assert!(report.findings[0].message.contains("old_api"));
}

#[test]
fn hot_path_alloc_fires_in_executor_non_test_code_only() {
    let report = run("hot_path_alloc");
    assert_eq!(
        rules_of(&report),
        [RuleId::HotPathAlloc, RuleId::HotPathAlloc]
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.path == "crates/channel/src/executor.rs"),
        "allocation outside the hot-path file must not fire: {:?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("format!"));
    assert!(report.findings[1].message.contains(".to_string"));
    // The cfg(test) format! never fires.
}

#[test]
fn party_loop_alloc_fires_in_scaling_files_non_test_code_only() {
    let report = run("party_loop_alloc");
    assert_eq!(
        rules_of(&report),
        [
            RuleId::PartyLoopAlloc,
            RuleId::PartyLoopAlloc,
            RuleId::PartyLoopAlloc
        ]
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.path == "crates/core/src/soa.rs"),
        "allocation outside the party-loop files must not fire: {:?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("vec!["));
    assert!(report.findings[1].message.contains(".collect"));
    // The collapsed-repetition-shaped per-chunk transcript clone.
    assert!(report.findings[2].message.contains(".to_vec"));
    // The cfg(test) vec! and the lib.rs collect never fire.
}

#[test]
fn trial_scope_precompute_fires_inside_trial_closures_only() {
    let report = run("trial_scope_precompute");
    assert_eq!(
        rules_of(&report),
        [
            RuleId::TrialScopePrecompute,
            RuleId::TrialScopePrecompute,
            RuleId::TrialScopePrecompute
        ]
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.path.ends_with("fig9_sweep.rs")),
        "runner closures outside crates/bench/src/bin must not fire: {:?}",
        report.findings
    );
    // The hoisted build_code on line 4 never fires; the three
    // constructors inside the two runner closures do.
    assert_eq!(report.findings[0].line, 6);
    assert!(report.findings[0].message.contains("build_code"));
    assert_eq!(report.findings[1].line, 7);
    assert!(report.findings[1]
        .message
        .contains("RandomCode::with_length"));
    assert_eq!(report.findings[2].line, 11);
    assert!(report.findings[2]
        .message
        .contains("ConstantWeightCode::new"));
}

#[test]
fn lane_seed_discipline_fires_outside_sanctioned_site_only() {
    let report = run("lane_seed");
    assert_eq!(
        rules_of(&report),
        [RuleId::LaneSeedDiscipline, RuleId::LaneSeedDiscipline]
    );
    assert_eq!(
        report.findings[0].path, "crates/channel/src/lanes.rs",
        "seeding outside the lane-sliced files must not fire: {:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 2);
    assert!(report.findings[0].message.contains("seed_from_u64"));
    // Constructing a scalar channel inside a lane engine seeds a fresh
    // RNG stream just as directly as seed_from_u64.
    assert_eq!(report.findings[1].path, "crates/core/src/lanes.rs");
    assert_eq!(report.findings[1].line, 2);
    assert!(report.findings[1]
        .message
        .contains("StochasticChannel::new"));
    assert_eq!(
        report.suppressed, 2,
        "each justified sanctioned-site allow silences its finding"
    );
    // The cfg(test) scalar-reference seeding never fires.
}

#[test]
fn atomic_ordering_polices_relaxed_outside_observe_counters() {
    let report = run("atomic_ordering");
    assert_eq!(
        rules_of(&report),
        [RuleId::AtomicOrdering, RuleId::AtomicOrdering]
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.path == "crates/core/src/cache.rs"),
        "the observe progress counter must stay exempt: {:?}",
        report.findings
    );
    // fetch_add is a read-modify-write: the fix direction is AcqRel.
    assert_eq!(report.findings[0].line, 2);
    assert!(report.findings[0].message.contains("`next.fetch_add`"));
    assert!(report.findings[0].message.contains("Ordering::AcqRel"));
    // A bare load needs Acquire.
    assert_eq!(report.findings[1].line, 6);
    assert!(report.findings[1].message.contains("`flag.load`"));
    assert!(report.findings[1].message.contains("Ordering::Acquire"));
    // The Release store, the documented-inert allow, and the cfg(test)
    // scratch access never fire.
    assert_eq!(report.suppressed, 1);
}

#[test]
fn seed_provenance_requires_trial_seed_lineage() {
    let report = run("seed_provenance");
    assert_eq!(
        rules_of(&report),
        [
            RuleId::SeedProvenance, // cross-lane reuse
            RuleId::SeedProvenance, // integer-literal seed
            RuleId::SeedProvenance  // untraced expression
        ]
    );
    assert_eq!(report.findings[0].path, "crates/channel/src/lanes.rs");
    assert_eq!(report.findings[0].line, 5);
    assert!(report.findings[0].message.contains("already feeds"));
    assert_eq!(report.findings[1].path, "crates/core/src/rng.rs");
    assert!(report.findings[1].message.contains("literal seed"));
    assert!(
        report.findings[2].message.contains("does not trace"),
        "{}",
        report.findings[2].message
    );
    assert!(
        report.findings[2].message.contains("trial_seed"),
        "message lists the Facts-discovered seed fns: {}",
        report.findings[2].message
    );
    // seed_from_u64(trial_seed(base, trial)) and the cfg(test) scratch
    // seed never fire; the two lane-seed allows count as suppressions.
    assert_eq!(report.suppressed, 2);
}

#[test]
fn observer_purity_scans_impls_and_hook_args_only() {
    let report = run("observer_purity");
    assert_eq!(
        rules_of(&report),
        [
            RuleId::ObserverPurity, // simulate_once in the Observer impl
            RuleId::ObserverPurity, // RNG type in the Observer impl
            RuleId::ObserverPurity  // simulate_once in the phase callsite args
        ]
    );
    assert!(report.findings[0].message.contains("simulate_once"));
    assert!(report.findings[0].message.contains("Observer"));
    assert!(report.findings[1].message.contains("StdRng"));
    assert_eq!(report.findings[2].line, 17);
    assert!(report.findings[2].message.contains("callsite"));
    // The registry write *outside* the hook args, the empty Quiet impl,
    // and the cfg(test) probe impl never fire.
}

#[test]
fn panic_path_budget_exempts_documented_and_test_sites() {
    let report = run("panic_path");
    assert_eq!(rules_of(&report), [RuleId::PanicPath]);
    assert_eq!(report.findings[0].line, 20);
    assert!(report.findings[0].message.contains("`panic!`"));
    assert!(
        report.findings[0].message.contains("site #3"),
        "the # Panics-documented expect must not consume budget: {}",
        report.findings[0].message
    );
    // Site #4 carries a justified allow; the documented and cfg(test)
    // sites are exempt rather than suppressed.
    assert_eq!(report.suppressed, 1);
}

#[test]
fn suppressions_require_known_rule_and_justification() {
    let report = run("suppressed");
    assert_eq!(
        report.suppressed, 2,
        "the two justified allows silence their findings: {:?}",
        report.findings
    );
    assert_eq!(
        rules_of(&report),
        [
            RuleId::Suppression,     // missing justification
            RuleId::HashCollections, // …so the violation still fires
            RuleId::Suppression,     // unknown rule ID
            RuleId::Suppression,     // justified but unused
        ]
    );
    assert!(report.findings[0].message.contains("justification"));
    assert!(report.findings[2].message.contains("no-such-rule"));
    assert!(report.findings[3].message.contains("unused"));
}

#[test]
fn baseline_grandfathers_exact_entries_only() {
    let root = fixture_root("baseline");
    let baseline = Baseline::load(&root.join("xtask-lint.baseline")).unwrap();
    assert_eq!(baseline.len(), 1);
    let report = lint_workspace(&root, &baseline).unwrap();
    assert_eq!(report.baselined, 1, "Instant::now entry is grandfathered");
    assert_eq!(rules_of(&report), [RuleId::WallClock]);
    assert!(report.findings[0].message.contains("SystemTime::now"));
    // Without the baseline both findings surface.
    let bare = lint_workspace(&root, &Baseline::empty()).unwrap();
    assert_eq!(bare.findings.len(), 2);
    // …and every unsuppressed finding is offered for --write-baseline.
    assert_eq!(bare.baseline_entries.len(), 2);
}

#[test]
fn clean_fixture_is_clean() {
    let report = run("clean");
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    assert_eq!(report.suppressed, 0);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn cli_exit_codes_reflect_findings() {
    let exit = |case: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--root"])
            .arg(fixture_root(case))
            .output()
            .expect("xtask binary runs")
    };
    for case in [
        "wall_clock",
        "wall_clock_observe",
        "entropy_rng",
        "hash_collections",
        "env_read",
        "sim_name",
        "experiment_id",
        "metric_key",
        "deprecated",
        "hot_path_alloc",
        "party_loop_alloc",
        "trial_scope_precompute",
        "lane_seed",
        "atomic_ordering",
        "seed_provenance",
        "observer_purity",
        "panic_path",
    ] {
        let out = exit(case);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{case} must fail the lint gate: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
    let out = exit("clean");
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
