//! Lexer-equivalence property test: the v2 token-tree lexer must
//! reproduce the superseded v1 line-oriented lexer's per-line views on
//! every first-party source file in the live workspace. The rules were
//! ported from v1 semantics, so any divergence here is a lexer bug
//! (or an intentional change that must be argued in this test).

use std::path::PathBuf;

use xtask::{items::Items, lexer, scan};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn v2_reproduces_v1_line_views_on_every_workspace_file() {
    let root = workspace_root();
    let paths = scan::collect_paths(&root).expect("workspace walk");
    assert!(paths.len() > 50, "suspiciously few files: {}", paths.len());

    let mut checked_lines = 0usize;
    for rel in &paths {
        let content = std::fs::read_to_string(root.join(rel)).expect("source readable");
        let v1 = scan::v1::lex(&content);
        let v2 = lexer::lex(&content);
        // in_test lives in the item-discovery layer, not the lexer
        // (scan::SourceFile::lex copies it back onto the lines).
        let test_lines = Items::discover(&v2).test_lines;
        assert_eq!(
            v1.len(),
            v2.lines.len(),
            "{}: line count diverges",
            rel.display()
        );
        for (idx, (a, b)) in v1.iter().zip(&v2.lines).enumerate() {
            let at = format!("{}:{}", rel.display(), idx + 1);
            assert_eq!(a.raw, b.raw, "{at}: raw view diverges");
            assert_eq!(a.code, b.code, "{at}: code view diverges");
            assert_eq!(a.strings, b.strings, "{at}: string literals diverge");
            assert_eq!(a.has_code, b.has_code, "{at}: has_code diverges");
            // `doc` is deliberately not compared: it is a v2-only view
            // (v1 folded doc comments into plain comment text).
            assert_eq!(
                a.suppressions, b.suppressions,
                "{at}: suppression parse diverges"
            );
            // v2 marks strictly more test lines than v1's `#[cfg(test)]
            // mod` brace tracker (it also sees `#[test]` fns and
            // cfg(test) attrs on non-mod items), so containment — not
            // equality — is the contract.
            assert!(
                !a.in_test || test_lines[idx],
                "{at}: line is in_test under v1 but not under v2"
            );
            checked_lines += 1;
        }
    }
    assert!(
        checked_lines > 10_000,
        "suspiciously small corpus: {checked_lines} lines"
    );
}
