//! The rollout gate: the live workspace must pass `cargo xtask lint`
//! with zero unsuppressed findings, and the cross-file facts the
//! conformance rules depend on must actually be discovered (a scanner
//! regression that found no simulators would otherwise pass vacuously).

use std::path::PathBuf;

use xtask::{lint_workspace, rules::Facts, scan, Baseline};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let baseline = Baseline::load(&root.join("xtask-lint.baseline")).expect("baseline readable");
    let report = lint_workspace(&root, &baseline).expect("workspace lints");
    assert!(
        report.is_clean(),
        "beeps-lint found {} violation(s) in the live workspace:\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn facts_discovered_from_live_workspace() {
    let root = workspace_root();
    let files = scan::collect_sources(&root).expect("scan");
    let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).expect("EXPERIMENTS.md");
    let facts = Facts::gather(&files, Some(&experiments));

    for scheme in [
        "repetition",
        "rewind",
        "hierarchical",
        "one_to_zero",
        "owned_rounds",
        "naked",
    ] {
        assert!(
            facts.simulator_names.contains(scheme),
            "Simulator::name() \"{scheme}\" not discovered; found {:?}",
            facts.simulator_names
        );
    }
    for family in ["sim", "exp", "channel"] {
        assert!(
            facts.metric_families.contains(family),
            "metric family \"{family}\" missing from EXPERIMENTS.md schema table; found {:?}",
            facts.metric_families
        );
    }
    // seed-provenance needs the seed-deriving fns to be discoverable,
    // or every seeding site would demand an inline allow.
    assert!(
        facts.seed_fns.contains("trial_seed"),
        "per-trial splitmix derivation fn not discovered; found {:?}",
        facts.seed_fns
    );
    // The 0.2.0 release removed the last deprecated wrappers; nothing
    // in the workspace should carry `#[deprecated]` now.
    assert!(
        facts.deprecated.is_empty(),
        "unexpected deprecated functions: {:?}",
        facts.deprecated
    );
    // The linter must never scan itself or the vendored deps.
    assert!(
        files.iter().all(|f| {
            let p = f.path.to_string_lossy().replace('\\', "/");
            !p.starts_with("crates/xtask") && !p.starts_with("vendor/") && !p.starts_with("target/")
        }),
        "scan set includes excluded paths"
    );
}
