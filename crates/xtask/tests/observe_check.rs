//! CLI contract of `cargo xtask observe-check`: well-formed artifacts
//! pass, malformed or unsealed ones fail with a nonzero exit.

use std::path::PathBuf;
use std::process::Output;

fn temp_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("beeps_observe_check_{case}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run(trace: &PathBuf, runlog: &PathBuf) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("observe-check")
        .arg(trace)
        .arg(runlog)
        .output()
        .expect("xtask binary runs")
}

const GOOD_TRACE: &str = concat!(
    "{\"traceEvents\":[",
    "{\"name\":\"runner.chunk\",\"cat\":\"beeps\",\"pid\":1,\"tid\":1,",
    "\"ts\":10,\"ph\":\"X\",\"dur\":25,\"args\":{\"start\":0,\"len\":8}},",
    "{\"name\":\"sim.rewind.rewind\",\"cat\":\"beeps\",\"pid\":1,\"tid\":2,",
    "\"ts\":40,\"ph\":\"i\",\"s\":\"t\"}",
    "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"0\"}}"
);

const GOOD_RUNLOG: &str = "\
{\"type\":\"meta\",\"run_id\":\"t\",\"config_digest\":\"00\",\"base_seed\":1,\"unix_ms\":5}
{\"type\":\"run_start\",\"trials\":8,\"workers\":2,\"at_us\":1}
{\"type\":\"chunk\",\"worker\":0,\"start\":0,\"len\":8,\"micros\":9}
{\"type\":\"run_end\",\"at_us\":12}
{\"type\":\"summary\",\"trials_done\":8,\"events_recorded\":0,\"events_dropped\":0}
";

#[test]
fn accepts_well_formed_artifacts() {
    let dir = temp_dir("ok");
    let trace = dir.join("trace.json");
    let runlog = dir.join("run.runlog.jsonl");
    std::fs::write(&trace, GOOD_TRACE).unwrap();
    std::fs::write(&runlog, GOOD_RUNLOG).unwrap();
    let out = run(&trace, &runlog);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace OK"), "{stdout}");
    assert!(stdout.contains("2 event(s)"), "{stdout}");
    assert!(stdout.contains("run log OK"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_truncated_trace() {
    let dir = temp_dir("bad_trace");
    let trace = dir.join("trace.json");
    let runlog = dir.join("run.runlog.jsonl");
    std::fs::write(&trace, &GOOD_TRACE[..GOOD_TRACE.len() - 10]).unwrap();
    std::fs::write(&runlog, GOOD_RUNLOG).unwrap();
    let out = run(&trace, &runlog);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid JSON"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_unsealed_runlog() {
    let dir = temp_dir("unsealed");
    let trace = dir.join("trace.json");
    let runlog = dir.join("run.runlog.jsonl");
    std::fs::write(&trace, GOOD_TRACE).unwrap();
    // Drop the summary line: the run was never sealed.
    let unsealed: String = GOOD_RUNLOG
        .lines()
        .filter(|l| !l.contains("summary"))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&runlog, unsealed).unwrap();
    let out = run(&trace, &runlog);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("summary"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_missing_file_and_bad_usage() {
    let dir = temp_dir("missing");
    let trace = dir.join("nope.json");
    let runlog = dir.join("nope.jsonl");
    let out = run(&trace, &runlog);
    assert_eq!(out.status.code(), Some(1));

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["observe-check", "only-one-arg"])
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
