fn name(&self) -> &'static str {
    "rewind"
}

impl Observer for Progress {
    fn on_phase(&mut self, name: &str) {
        let _ = simulate_once(name);
        let _forked: Option<StdRng> = None;
    }
}

impl Observer for Quiet {
    fn on_phase(&mut self, _name: &str) {}
}

pub fn merge_loop(m: &mut M) {
    observe::phase("merge", simulate_once("x"));
    m.inc("sim.rewind.runs", 1);
}

#[cfg(test)]
mod tests {
    impl Observer for TestProbe {
        fn on_phase(&mut self, name: &str) {
            let _ = simulate_once(name);
        }
    }
}
