use std::collections::HashMap;
pub fn bad() {
    let s: std::collections::HashSet<u32> = Default::default();
    let _ = s;
}
pub fn good() {
    let m: std::collections::BTreeMap<u32, u32> = Default::default();
    let _ = m;
}
