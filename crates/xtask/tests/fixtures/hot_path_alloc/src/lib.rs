pub fn cold_path(name: &str) -> String {
    format!("exp.{name}.trials")
}
