pub fn run_with_metrics(metrics: &mut M, i: usize) {
    metrics.inc(&format!("channel.energy.party.{i:03}"), 1);
    let label = "flips".to_string();
    metrics.inc(&label, 1);
}
#[cfg(test)]
mod tests {
    fn diagnostics(i: usize) -> String {
        format!("party {i} diverged")
    }
}
