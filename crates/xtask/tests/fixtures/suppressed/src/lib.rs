pub fn justified() {
    // beeps-lint: allow(hash-collections) -- bounded scratch map, never iterated into output
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let _ = m;
}
pub fn trailing() {
    let s = std::time::SystemTime::now(); // beeps-lint: allow(wall-clock) -- operator-facing banner only
    let _ = s;
}
pub fn unjustified() {
    // beeps-lint: allow(hash-collections)
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let _ = m;
}
pub fn unknown_rule() {
    // beeps-lint: allow(no-such-rule) -- misremembered the ID
    let x = 1;
    let _ = x;
}
pub fn unused() {
    // beeps-lint: allow(wall-clock) -- nothing here actually needs this
    let y = 2;
    let _ = y;
}
