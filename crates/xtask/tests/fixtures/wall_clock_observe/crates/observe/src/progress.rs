pub fn smuggled_clock() {
    let t = std::time::Instant::now();
    let _ = t;
}
/// Prose mentioning SystemTime::now() must not fire.
pub fn prose_only() {}
