pub fn sanctioned_origin() {
    let t = std::time::Instant::now(); // the observability clock module
    let w = std::time::SystemTime::now();
    let _ = (t, w);
}
