pub fn bad() {
    let _ = std::env::var("HOME");
}
pub fn good() {
    let _ = std::env::var("BEEPS_THREADS");
    let _: Vec<String> = std::env::args().collect();
}
