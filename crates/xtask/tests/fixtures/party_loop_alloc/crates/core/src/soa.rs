pub fn owners_round(scratch: &mut Vec<Vec<u64>>, n: usize) {
    let row = vec![0u64; n.div_ceil(64)];
    scratch.push(row);
    let flips: Vec<u64> = (0..n as u64).collect();
    scratch.push(flips);
}
#[cfg(test)]
mod tests {
    #[test]
    fn expected_rows() {
        let expected = vec![0u64; 4];
        assert_eq!(expected.len(), 4);
    }
}
