pub fn owners_round(scratch: &mut Vec<Vec<u64>>, n: usize) {
    let row = vec![0u64; n.div_ceil(64)];
    scratch.push(row);
    let flips: Vec<u64> = (0..n as u64).collect();
    scratch.push(flips);
}
pub fn repetition_chunk(committed: &[bool]) -> Vec<bool> {
    // A collapsed engine must extend a scratch-owned transcript, not
    // clone the committed bits once per chunk.
    committed.to_vec()
}
#[cfg(test)]
mod tests {
    #[test]
    fn expected_rows() {
        let expected = vec![0u64; 4];
        assert_eq!(expected.len(), 4);
    }
}
