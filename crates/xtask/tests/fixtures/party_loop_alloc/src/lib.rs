pub fn setup_inputs(n: usize) -> Vec<usize> {
    (0..n).collect()
}
