pub fn main() {
    let runner = TrialRunner::new(4);
    let config = SimulatorConfig::builder(8).model(model).build();
    let hoisted = config.build_code();
    let out = runner.run(0xBEE5, 8, |t| {
        let code = config.build_code();
        let extra = RandomCode::with_length(8, 32, t.seed);
        code.codeword_len() + extra.codeword_len() + hoisted.codeword_len()
    });
    let summary = runner.run_records(7, 4, |t| {
        let cw = ConstantWeightCode::new(8, 32, t.index);
        cw.codeword_len() > out.len()
    });
    let _ = summary;
}
