pub fn helper(runner: &TrialRunner, config: &SimulatorConfig) -> usize {
    runner.run(1, 2, |_t| config.build_code().codeword_len()).len()
}
