pub fn grandfathered() {
    let t = std::time::Instant::now();
    let _ = t;
}
pub fn fresh() {
    let s = std::time::SystemTime::now();
    let _ = s;
}
