pub fn trial_seed(base: u64, trial: u64) -> u64 {
    base ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

pub fn good(base: u64, trial: u64) -> StdRng {
    StdRng::seed_from_u64(trial_seed(base, trial))
}

pub fn literal() -> StdRng {
    StdRng::seed_from_u64(0xDEAD_BEEF)
}

pub fn untraced(round: u64) -> StdRng {
    StdRng::seed_from_u64(round * 3)
}

#[cfg(test)]
mod tests {
    pub fn scratch() -> StdRng {
        StdRng::seed_from_u64(42)
    }
}
