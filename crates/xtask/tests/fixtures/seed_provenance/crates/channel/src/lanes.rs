pub fn lanes(trial_seed: u64) -> (StdRng, StdRng) {
    // beeps-lint: allow(lane-seed-discipline) -- fixture fan-out site
    let a = StdRng::seed_from_u64(trial_seed);
    // beeps-lint: allow(lane-seed-discipline) -- fixture fan-out site
    let b = StdRng::seed_from_u64(trial_seed);
    (a, b)
}
