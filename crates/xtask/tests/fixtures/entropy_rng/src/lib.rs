pub fn bad() {
    let mut rng = rand::thread_rng();
    let other = StdRng::from_entropy();
    let _ = (rng, other);
}
pub fn good(seed: u64) {
    let _ = StdRng::seed_from_u64(seed);
}
