pub struct Demo;
impl Demo {
    fn name(&self) -> &'static str {
        "rewind"
    }
}
pub fn good(m: &mut M) {
    m.inc("sim.rewind.runs", 1);
}
pub fn bad(m: &mut M) {
    m.inc("sim.rewnd.runs", 1);
}
pub fn dynamic(m: &mut M, scheme: &str) {
    m.record_wall(&format!("sim.{scheme}.simulate"), d);
}
