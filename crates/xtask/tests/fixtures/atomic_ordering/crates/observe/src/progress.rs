pub fn tick(trials_done: &AtomicU64) {
    trials_done.fetch_add(1, Ordering::Relaxed);
}
