pub fn claim(next: &AtomicUsize, chunk: usize) -> usize {
    next.fetch_add(chunk, Ordering::Relaxed)
}

pub fn peek(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

pub fn stat(hits: &AtomicU64) -> u64 {
    // beeps-lint: allow(atomic-ordering) -- inert diagnostics counter, never synchronizes data
    hits.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    pub fn scratch(n: &AtomicUsize) -> usize {
        n.load(Ordering::Relaxed)
    }
}
