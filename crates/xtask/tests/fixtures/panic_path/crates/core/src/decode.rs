/// Looks up the first table entry.
///
/// # Panics
///
/// Panics when the table is empty.
pub fn documented(t: &[u32]) -> u32 {
    *t.first().expect("table must be non-empty")
}

pub fn site_one(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn site_two(x: Option<u32>) -> u32 {
    x.expect("checked by caller")
}

pub fn site_three(n: u32) -> u32 {
    if n > 3 {
        panic!("bad n");
    }
    n
}

pub fn site_four() {
    unreachable!(); // beeps-lint: allow(panic-path) -- fixture: justified overflow site
}

#[cfg(test)]
mod tests {
    pub fn scratch(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
