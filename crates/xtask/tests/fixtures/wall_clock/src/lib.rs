pub fn bad() {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let _ = (t, s);
}
/// A doc comment mentioning Instant::now() must not fire.
pub fn prose_only() {}
