pub fn sanctioned() {
    let t = std::time::Instant::now(); // the one allowed module
    let _ = t;
}
