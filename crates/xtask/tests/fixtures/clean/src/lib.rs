pub fn fine(m: &mut M, seed: u64) {
    let rng = StdRng::seed_from_u64(seed);
    m.inc("sim.rewind.runs", 1);
    let _ = rng;
}
fn name(&self) -> &'static str {
    "rewind"
}
