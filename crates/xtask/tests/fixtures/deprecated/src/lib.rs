#[deprecated(since = "0.1.0", note = "use new_api; removed in 0.2.0")]
pub fn old_api() {}

pub fn new_api() {}

pub fn caller() {
    old_api();
}
