pub fn keys(m: &mut M) {
    m.inc("exp.good.trials", 1);
    m.inc("exp.BadCase.trials", 1);
    m.inc("unknown_family.x", 1);
    m.inc("bare_key", 1);
    m.inc(&format!("{cell}.trials"), 1);
    m.observe(dynamic_key, 5);
}
#[cfg(test)]
mod tests {
    fn scratch(m: &mut M) {
        m.inc("anything_lowercase", 1);
    }
}
