fn main() {
    let log = ExperimentLog::new("fig9_demo");
    let _ = log;
}
