pub fn trial_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
