pub fn bad_lane_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xABCD)
}

pub fn sanctioned_fan_out(trial_seed: u64) -> StdRng {
    // beeps-lint: allow(lane-seed-discipline) -- the one sanctioned fan-out from per-trial splitmix seeds
    StdRng::seed_from_u64(trial_seed)
}

#[cfg(test)]
mod tests {
    pub fn scalar_reference(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}
