pub fn bad_lane_channel(n: usize, seed: u64) -> StochasticChannel {
    StochasticChannel::new(n, NoiseModel::Noiseless, seed)
}

pub fn sanctioned_calendar(lane_seed: u64) -> StdRng {
    // beeps-lint: allow(lane-seed-discipline) -- lanes are seeded here, and only here, from the per-trial splitmix seeds
    StdRng::seed_from_u64(lane_seed)
}

#[cfg(test)]
mod tests {
    pub fn scalar_twin(n: usize, seed: u64) -> StochasticChannel {
        StochasticChannel::new(n, NoiseModel::Noiseless, seed)
    }
}
