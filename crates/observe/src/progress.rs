//! Live progress: lock-free counters plus a stderr reporter thread.
//!
//! [`ProgressTracker`] is the [`Observer`] the runner's hooks feed:
//! every hook is a handful of relaxed atomic increments, so worker
//! threads never contend on a lock. A [`ProgressReporter`] thread
//! samples the tracker a few times a second and renders a single
//! carriage-return-overwritten status line — throughput, percentage,
//! and ETA — to stderr (never stdout, which belongs to the experiment
//! tables).
//!
//! A tracker accumulates across **all** runner invocations of a
//! process: experiment binaries typically sweep a parameter and invoke
//! the runner once per point, and the useful progress view is the
//! whole sweep, not one point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock;
use crate::observer::{Observer, RunInfo};

/// Fixed number of per-worker claim slots. Workers beyond the slot
/// count fold onto `worker % WORKER_SLOTS`; [`MAIN_WORKER`] folds onto
/// the last slot.
pub const WORKER_SLOTS: usize = 64;

/// Lock-free progress counters fed by the runner's [`Observer`] hooks.
#[derive(Debug)]
pub struct ProgressTracker {
    trials_total: AtomicU64,
    trials_done: AtomicU64,
    chunks_claimed: AtomicU64,
    lane_groups: AtomicU64,
    lane_trials: AtomicU64,
    runs_started: AtomicU64,
    runs_completed: AtomicU64,
    worker_claims: [AtomicU64; WORKER_SLOTS],
}

impl Default for ProgressTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressTracker {
    /// A tracker with every counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            trials_total: AtomicU64::new(0),
            trials_done: AtomicU64::new(0),
            chunks_claimed: AtomicU64::new(0),
            lane_groups: AtomicU64::new(0),
            lane_trials: AtomicU64::new(0),
            runs_started: AtomicU64::new(0),
            runs_completed: AtomicU64::new(0),
            worker_claims: [const { AtomicU64::new(0) }; WORKER_SLOTS],
        }
    }

    fn slot(worker: usize) -> usize {
        worker % WORKER_SLOTS
    }

    /// A consistent-enough copy of every counter (individually atomic;
    /// the set is sampled, not snapshotted transactionally — fine for a
    /// progress display and for the monotonicity tests).
    #[must_use]
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            trials_total: self.trials_total.load(Ordering::Relaxed),
            trials_done: self.trials_done.load(Ordering::Relaxed),
            chunks_claimed: self.chunks_claimed.load(Ordering::Relaxed),
            lane_groups: self.lane_groups.load(Ordering::Relaxed),
            lane_trials: self.lane_trials.load(Ordering::Relaxed),
            runs_started: self.runs_started.load(Ordering::Relaxed),
            runs_completed: self.runs_completed.load(Ordering::Relaxed),
            worker_claims: self
                .worker_claims
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Observer for ProgressTracker {
    fn on_run_start(&self, info: RunInfo) {
        self.trials_total
            .fetch_add(info.trials as u64, Ordering::Relaxed);
        self.runs_started.fetch_add(1, Ordering::Relaxed);
    }

    fn on_run_end(&self, _info: RunInfo) {
        self.runs_completed.fetch_add(1, Ordering::Relaxed);
    }

    fn on_chunk_claimed(&self, worker: usize, _start: usize, _len: usize) {
        self.chunks_claimed.fetch_add(1, Ordering::Relaxed);
        self.worker_claims[Self::slot(worker)].fetch_add(1, Ordering::Relaxed);
    }

    fn on_chunk_completed(&self, _worker: usize, _start: usize, len: usize) {
        self.trials_done.fetch_add(len as u64, Ordering::Relaxed);
    }

    fn on_lane_group(&self, _worker: usize, trials: usize) {
        self.lane_groups.fetch_add(1, Ordering::Relaxed);
        self.lane_trials.fetch_add(trials as u64, Ordering::Relaxed);
    }
}

/// One sampled view of a [`ProgressTracker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Trials announced by every `on_run_start` so far.
    pub trials_total: u64,
    /// Trials finished (summed over completed chunks).
    pub trials_done: u64,
    /// Chunks claimed from the shared counter.
    pub chunks_claimed: u64,
    /// Chunks dispatched as lane-sliced `simulate_batch` groups.
    pub lane_groups: u64,
    /// Trials carried by those lane groups.
    pub lane_trials: u64,
    /// Runner invocations started.
    pub runs_started: u64,
    /// Runner invocations completed.
    pub runs_completed: u64,
    /// Per-worker chunk-claim counts (`worker % WORKER_SLOTS`).
    pub worker_claims: Vec<u64>,
}

impl ProgressSnapshot {
    /// Workers that have claimed at least one chunk.
    #[must_use]
    pub fn active_workers(&self) -> usize {
        self.worker_claims.iter().filter(|&&c| c > 0).count()
    }
}

/// Renders one status line for the reporter (no trailing newline).
fn render_line(snap: &ProgressSnapshot, elapsed_micros: u64) -> String {
    let secs = (elapsed_micros as f64 / 1e6).max(1e-9);
    let rate = snap.trials_done as f64 / secs;
    let pct = if snap.trials_total > 0 {
        100.0 * snap.trials_done as f64 / snap.trials_total as f64
    } else {
        0.0
    };
    let eta = if rate > 0.0 && snap.trials_total > snap.trials_done {
        (snap.trials_total - snap.trials_done) as f64 / rate
    } else {
        0.0
    };
    let line = format!(
        "[beeps] {}/{} trials ({pct:.1}%) \u{b7} {rate:.0}/s \u{b7} ETA {eta:.1}s \u{b7} \
         {} chunks / {} lane-groups on {} worker(s)",
        snap.trials_done,
        snap.trials_total,
        snap.chunks_claimed,
        snap.lane_groups,
        snap.active_workers().max(1),
    );
    // Pad so a shorter line fully overwrites the previous one.
    format!("{line:<78}")
}

/// Samples a [`ProgressTracker`] on a background thread and renders a
/// live status line to stderr. Create with [`ProgressReporter::spawn`],
/// stop with [`ProgressReporter::finish`] (also runs on drop).
#[derive(Debug)]
pub struct ProgressReporter {
    stop_tx: Option<mpsc::Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

/// Reporter sampling interval.
const TICK: Duration = Duration::from_millis(200);

impl ProgressReporter {
    /// Spawns the reporter thread over `tracker`.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    #[must_use]
    pub fn spawn(tracker: Arc<ProgressTracker>) -> Self {
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("beeps-progress".into())
            .spawn(move || {
                let started = clock::monotonic_micros();
                loop {
                    let stopped = matches!(
                        stop_rx.recv_timeout(TICK),
                        Ok(()) | Err(RecvTimeoutError::Disconnected)
                    );
                    let snap = tracker.snapshot();
                    let line = render_line(&snap, clock::monotonic_micros() - started);
                    if stopped {
                        // Final render gets a real newline so the next
                        // stderr write starts clean.
                        eprintln!("\r{line}");
                        return;
                    }
                    eprint!("\r{line}");
                }
            })
            .expect("spawn beeps-progress reporter thread");
        Self {
            stop_tx: Some(stop_tx),
            handle: Some(handle),
        }
    }

    /// Stops the reporter, printing one final status line.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambient::MAIN_WORKER;

    fn run_info(trials: usize, workers: usize) -> RunInfo {
        RunInfo { trials, workers }
    }

    #[test]
    fn hooks_accumulate_counters() {
        let t = ProgressTracker::new();
        t.on_run_start(run_info(100, 4));
        t.on_chunk_claimed(0, 0, 8);
        t.on_lane_group(0, 8);
        t.on_chunk_completed(0, 0, 8);
        t.on_chunk_claimed(1, 8, 8);
        t.on_chunk_completed(1, 8, 8);
        t.on_run_end(run_info(100, 4));
        let s = t.snapshot();
        assert_eq!(s.trials_total, 100);
        assert_eq!(s.trials_done, 16);
        assert_eq!(s.chunks_claimed, 2);
        assert_eq!(s.lane_groups, 1);
        assert_eq!(s.lane_trials, 8);
        assert_eq!(s.runs_started, 1);
        assert_eq!(s.runs_completed, 1);
        assert_eq!(s.active_workers(), 2);
    }

    #[test]
    fn accumulates_across_runs() {
        let t = ProgressTracker::new();
        for _ in 0..3 {
            t.on_run_start(run_info(10, 1));
            t.on_chunk_claimed(0, 0, 10);
            t.on_chunk_completed(0, 0, 10);
            t.on_run_end(run_info(10, 1));
        }
        let s = t.snapshot();
        assert_eq!(s.trials_total, 30);
        assert_eq!(s.trials_done, 30);
        assert_eq!(s.runs_completed, 3);
    }

    #[test]
    fn main_worker_folds_into_a_slot() {
        let t = ProgressTracker::new();
        t.on_chunk_claimed(MAIN_WORKER, 0, 1);
        assert_eq!(t.snapshot().chunks_claimed, 1);
        assert_eq!(t.snapshot().active_workers(), 1);
    }

    #[test]
    fn render_line_is_padded_and_informative() {
        let t = ProgressTracker::new();
        t.on_run_start(run_info(200, 2));
        t.on_chunk_claimed(0, 0, 50);
        t.on_chunk_completed(0, 0, 50);
        let line = render_line(&t.snapshot(), 2_000_000);
        assert!(line.starts_with("[beeps] 50/200 trials (25.0%)"), "{line}");
        assert!(line.contains("25/s"), "{line}");
        assert!(line.len() >= 78);
    }

    #[test]
    fn reporter_starts_and_stops() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.on_run_start(run_info(4, 1));
        tracker.on_chunk_claimed(0, 0, 4);
        tracker.on_chunk_completed(0, 0, 4);
        let reporter = ProgressReporter::spawn(Arc::clone(&tracker));
        reporter.finish();
    }
}
