//! The single sanctioned wall-clock module of the observability stack.
//!
//! The workspace-wide determinism contract bans wall-clock reads from
//! simulation code (beeps-lint `wall-clock`, clippy
//! `disallowed-methods`): elapsed time must never flow into
//! deterministic state. Observability legitimately needs the clock —
//! for throughput, ETA, phase spans, and run-log timestamps — so this
//! module is the one place in `beeps-observe` allowed to read it, the
//! same pattern as `beeps_metrics::Stopwatch` for the metrics crate.
//! Everything else in the crate calls through these two functions, and
//! the lint allowlists exactly this file.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-lifetime origin for the monotonic microsecond clock: fixed
/// on first read so every span and trace event shares one timebase.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Monotonic microseconds since the first clock read of this process.
///
/// All spans, marks, and trace events are stamped on this timebase, so
/// a Chrome trace's `ts` values are directly comparable across workers.
#[allow(clippy::disallowed_methods)] // the one sanctioned clock site
#[must_use]
pub fn monotonic_micros() -> u64 {
    let origin = *ORIGIN.get_or_init(Instant::now);
    Instant::now().duration_since(origin).as_micros() as u64
}

/// Milliseconds since the Unix epoch — for run-log timestamps only
/// (never compared, never deterministic). Returns 0 if the system
/// clock sits before the epoch.
#[allow(clippy::disallowed_methods)] // the one sanctioned clock site
#[must_use]
pub fn wall_unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Peak resident set size of this process in bytes, or 0 when the
/// platform doesn't expose it.
///
/// Linux publishes the high-water mark as the `VmHWM` line of
/// `/proc/self/status` (in kB); other platforms report 0 rather than
/// guessing. Like the clocks above this is observability-only: the
/// value goes into run-log summaries and experiment memory columns,
/// never into deterministic state.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_decreases() {
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_is_past_2020() {
        // 2020-01-01 in unix millis; a sane system clock is later.
        assert!(wall_unix_millis() > 1_577_836_800_000);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test binary has at least a page resident.
            assert!(rss > 0, "VmHWM parse returned 0 on linux");
        }
        // Reading twice never decreases (it's a high-water mark).
        assert!(peak_rss_bytes() >= rss);
    }
}
