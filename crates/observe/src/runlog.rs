//! Structured JSONL run logs.
//!
//! A [`RunLog`] is an [`Observer`] that writes one JSON object per
//! line: a `meta` header (run id, config digest, base seed, wall-clock
//! stamp), a `run_start` / `run_end` pair per runner invocation, a
//! `chunk` line per completed chunk (worker, trial range, wall-clock
//! micros), and a final `summary` line carrying the trial total and the
//! metrics event-ring drop counters. The format is line-oriented so a
//! truncated log (crashed run) still parses up to the cut.
//!
//! Writes are serialized behind a mutex and I/O errors are deferred:
//! hooks fire on worker threads where a `Result` has nowhere to go, so
//! the first error is stashed and surfaced by [`RunLog::finish`].

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::clock;
use crate::emit::escape_json;
use crate::observer::{Observer, RunInfo};

/// Stable digest of a run configuration: FNV-1a over the parts, joined
/// with `\x1f` separators so `("ab", "c")` and `("a", "bc")` differ.
/// Rendered as 16 lowercase hex digits.
#[must_use]
pub fn config_digest(parts: &[&str]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for part in parts {
        for byte in part.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash ^= 0x1f;
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:016x}")
}

/// Identity written as the run log's `meta` header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Experiment / run identifier (e.g. `fig6_phase_breakdown`).
    pub run_id: String,
    /// Digest of the run configuration, via [`config_digest`].
    pub config_digest: String,
    /// Base RNG seed the trial seeds derive from.
    pub base_seed: u64,
}

/// Totals written as the run log's final `summary` line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Trials completed across all logged runner invocations.
    pub trials_done: u64,
    /// Events offered to the metrics event ring (0 when unused).
    pub events_recorded: u64,
    /// Events the ring dropped at capacity (0 when unused).
    pub events_dropped: u64,
    /// Peak resident set size of the process in bytes, via
    /// [`crate::clock::peak_rss_bytes`] (0 when unavailable).
    pub peak_rss_bytes: u64,
}

struct Inner {
    out: Box<dyn Write + Send>,
    error: Option<io::Error>,
    /// Per-worker claim timestamp for the currently open chunk.
    open_chunks: BTreeMap<usize, u64>,
    trials_done: u64,
}

impl Inner {
    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

/// JSONL run-log writer; see the module docs.
pub struct RunLog {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for RunLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLog").finish_non_exhaustive()
    }
}

impl RunLog {
    /// Opens a run log at `path` (creating parent directories) and
    /// writes the `meta` header line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the file.
    pub fn create(path: &Path, meta: &RunMeta) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let out = BufWriter::new(File::create(path)?);
        Ok(Self::to_writer(Box::new(out), meta))
    }

    /// A run log over an arbitrary writer (for tests); writes the
    /// `meta` header line immediately.
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>, meta: &RunMeta) -> Self {
        let log = Self {
            inner: Mutex::new(Inner {
                out,
                error: None,
                open_chunks: BTreeMap::new(),
                trials_done: 0,
            }),
        };
        let line = format!(
            "{{\"type\":\"meta\",\"run_id\":\"{}\",\"config_digest\":\"{}\",\"base_seed\":{},\"unix_ms\":{}}}",
            escape_json(&meta.run_id),
            escape_json(&meta.config_digest),
            meta.base_seed,
            clock::wall_unix_millis(),
        );
        log.lock().write_line(&line);
        log
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Trials completed according to the chunk lines logged so far.
    #[must_use]
    pub fn trials_done(&self) -> u64 {
        self.lock().trials_done
    }

    /// Writes the final `summary` line and flushes, surfacing any I/O
    /// error deferred from the hook paths.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the error from the
    /// summary write / flush itself.
    pub fn finish(&self, summary: &RunSummary) -> io::Result<()> {
        let mut inner = self.lock();
        let line = format!(
            "{{\"type\":\"summary\",\"trials_done\":{},\"events_recorded\":{},\"events_dropped\":{},\"peak_rss_bytes\":{},\"unix_ms\":{}}}",
            summary.trials_done,
            summary.events_recorded,
            summary.events_dropped,
            summary.peak_rss_bytes,
            clock::wall_unix_millis(),
        );
        inner.write_line(&line);
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        inner.out.flush()
    }
}

impl Observer for RunLog {
    fn on_run_start(&self, info: RunInfo) {
        let line = format!(
            "{{\"type\":\"run_start\",\"trials\":{},\"workers\":{},\"at_us\":{}}}",
            info.trials,
            info.workers,
            clock::monotonic_micros(),
        );
        self.lock().write_line(&line);
    }

    fn on_run_end(&self, info: RunInfo) {
        let line = format!(
            "{{\"type\":\"run_end\",\"trials\":{},\"workers\":{},\"at_us\":{}}}",
            info.trials,
            info.workers,
            clock::monotonic_micros(),
        );
        self.lock().write_line(&line);
    }

    fn on_chunk_claimed(&self, worker: usize, _start: usize, _len: usize) {
        let now = clock::monotonic_micros();
        self.lock().open_chunks.insert(worker, now);
    }

    fn on_chunk_completed(&self, worker: usize, start: usize, len: usize) {
        let now = clock::monotonic_micros();
        let mut inner = self.lock();
        let micros = inner
            .open_chunks
            .remove(&worker)
            .map_or(0, |claimed| now.saturating_sub(claimed));
        inner.trials_done += len as u64;
        let line = format!(
            "{{\"type\":\"chunk\",\"worker\":{worker},\"start\":{start},\"len\":{len},\"micros\":{micros}}}",
        );
        inner.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handing bytes to a shared buffer the test can read.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            run_id: "test_run".into(),
            config_digest: config_digest(&["scheme=rewind", "n=16"]),
            base_seed: 42,
        }
    }

    #[test]
    fn digest_is_stable_and_separator_sensitive() {
        assert_eq!(config_digest(&["a", "b"]), config_digest(&["a", "b"]));
        assert_ne!(config_digest(&["ab"]), config_digest(&["a", "b"]));
        assert_ne!(config_digest(&["ab", "c"]), config_digest(&["a", "bc"]));
        assert_eq!(config_digest(&["x"]).len(), 16);
    }

    #[test]
    fn log_lines_are_one_json_object_each() {
        let buf = SharedBuf::default();
        let log = RunLog::to_writer(Box::new(buf.clone()), &meta());
        log.on_run_start(RunInfo {
            trials: 8,
            workers: 2,
        });
        log.on_chunk_claimed(0, 0, 4);
        log.on_chunk_completed(0, 0, 4);
        log.on_chunk_claimed(1, 4, 4);
        log.on_chunk_completed(1, 4, 4);
        log.on_run_end(RunInfo {
            trials: 8,
            workers: 2,
        });
        log.finish(&RunSummary {
            trials_done: log.trials_done(),
            events_recorded: 10,
            events_dropped: 3,
            peak_rss_bytes: 4096,
        })
        .unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[0].starts_with("{\"type\":\"meta\""), "{text}");
        assert!(lines[0].contains("\"run_id\":\"test_run\""));
        assert!(lines[0].contains("\"base_seed\":42"));
        assert!(lines[1].starts_with("{\"type\":\"run_start\""));
        assert!(lines[2].contains("\"type\":\"chunk\""));
        assert!(lines[2].contains("\"worker\":0"));
        assert!(lines[2].contains("\"start\":0"));
        assert!(lines[3].contains("\"worker\":1"));
        assert!(lines[4].starts_with("{\"type\":\"run_end\""));
        assert!(lines[5].contains("\"type\":\"summary\""));
        assert!(lines[5].contains("\"trials_done\":8"));
        assert!(lines[5].contains("\"events_dropped\":3"));
        assert!(lines[5].contains("\"peak_rss_bytes\":4096"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn run_id_is_json_escaped() {
        let buf = SharedBuf::default();
        let tricky = RunMeta {
            run_id: "we\"ird\nid".into(),
            config_digest: "0".into(),
            base_seed: 0,
        };
        let log = RunLog::to_writer(Box::new(buf.clone()), &tricky);
        log.finish(&RunSummary::default()).unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("we\\\"ird\\nid"), "{text}");
        // Still exactly one object per line despite the raw newline in
        // the id.
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn write_errors_are_deferred_to_finish() {
        struct FailingWriter;

        impl Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }

            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let log = RunLog::to_writer(Box::new(FailingWriter), &meta());
        // Hooks must not panic even though every write fails.
        log.on_run_start(RunInfo {
            trials: 1,
            workers: 1,
        });
        log.on_chunk_claimed(0, 0, 1);
        log.on_chunk_completed(0, 0, 1);
        let err = log.finish(&RunSummary::default()).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
