//! Minimal JSON string escaping shared by the trace and run-log
//! writers (the crate is dependency-free by design).

/// Escapes `s` for embedding inside a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
