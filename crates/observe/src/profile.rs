//! Wall-clock phase profiling with Chrome trace-event export.
//!
//! [`PhaseProfiler`] aggregates every [`Observer::on_phase`] span into
//! per-`(phase, worker)` totals and keeps a bounded list of raw trace
//! events. Two renderings come out:
//!
//! * [`PhaseProfiler::write_chrome_trace`] — Chrome trace-event JSON
//!   (the `{"traceEvents": […]}` flavor), loadable in `chrome://tracing`,
//!   speedscope, and Perfetto; one `tid` per worker.
//! * [`PhaseProfiler::summary_table`] — an aligned text table in the
//!   style of `beeps metrics`' wall section, explicitly banner-marked
//!   non-deterministic.
//!
//! The profiler also derives chunk spans from the claim/complete hook
//! pair: chunks never interleave within a worker, so the claim
//! timestamp stored per worker brackets exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::ambient::MAIN_WORKER;
use crate::clock;
use crate::observer::Observer;

/// Default bound on retained raw trace events; past it events are
/// counted (`dropped_events`) but not stored, keeping memory bounded
/// on million-trial sweeps while per-phase totals stay exact.
pub const DEFAULT_MAX_TRACE_EVENTS: usize = 100_000;

/// Span name used for runner chunk executions derived from the
/// claim/complete hook pair.
pub const CHUNK_PHASE: &str = "runner.chunk";

#[derive(Debug, Clone, Copy, Default)]
struct PhaseTotal {
    calls: u64,
    micros: u64,
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    worker: usize,
    ts: u64,
    /// `None` renders as an instantaneous event (`ph: "i"`).
    dur: Option<u64>,
    /// Chunk args: `(start, len)`.
    chunk: Option<(usize, usize)>,
}

#[derive(Debug, Default)]
struct ProfState {
    totals: BTreeMap<(&'static str, usize), PhaseTotal>,
    events: Vec<TraceEvent>,
    dropped: u64,
    /// Per-worker claim info for the currently open chunk:
    /// `(start, len, claimed_at_micros)`.
    open_chunks: BTreeMap<usize, (usize, usize, u64)>,
}

impl ProfState {
    fn record(&mut self, event: TraceEvent, max_events: usize) {
        let total = self.totals.entry((event.name, event.worker)).or_default();
        total.calls += 1;
        total.micros += event.dur.unwrap_or(0);
        if self.events.len() < max_events {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

/// Aggregating wall-clock profiler; see the module docs.
#[derive(Debug)]
pub struct PhaseProfiler {
    state: Mutex<ProfState>,
    max_events: usize,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    /// A profiler retaining up to [`DEFAULT_MAX_TRACE_EVENTS`] raw events.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_events(DEFAULT_MAX_TRACE_EVENTS)
    }

    /// A profiler retaining up to `max_events` raw trace events
    /// (per-phase totals are unbounded and exact either way).
    #[must_use]
    pub fn with_max_events(max_events: usize) -> Self {
        Self {
            state: Mutex::new(ProfState::default()),
            max_events,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfState> {
        // A poisoned lock means another observer hook panicked; the
        // profiler's data is simple enough to keep serving.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Raw trace events retained so far.
    #[must_use]
    pub fn events_retained(&self) -> usize {
        self.lock().events.len()
    }

    /// Raw trace events dropped by the retention bound.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Total recorded wall-clock micros for `phase` across all workers.
    #[must_use]
    pub fn phase_micros(&self, phase: &str) -> u64 {
        self.lock()
            .totals
            .iter()
            .filter(|((name, _), _)| *name == phase)
            .map(|(_, t)| t.micros)
            .sum()
    }

    /// Total recorded calls for `phase` across all workers.
    #[must_use]
    pub fn phase_calls(&self, phase: &str) -> u64 {
        self.lock()
            .totals
            .iter()
            .filter(|((name, _), _)| *name == phase)
            .map(|(_, t)| t.calls)
            .sum()
    }

    /// Serializes the profile as Chrome trace-event JSON.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        let state = self.lock();
        w.write_all(b"{\"traceEvents\":[")?;
        let mut first = true;
        for ev in &state.events {
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            let tid = tid_of(ev.worker);
            write!(
                w,
                "\n{{\"name\":\"{}\",\"cat\":\"beeps\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
                ev.name, ev.ts
            )?;
            match ev.dur {
                Some(dur) => write!(w, ",\"ph\":\"X\",\"dur\":{dur}")?,
                None => write!(w, ",\"ph\":\"i\",\"s\":\"t\"")?,
            }
            if let Some((start, len)) = ev.chunk {
                write!(w, ",\"args\":{{\"start\":{start},\"len\":{len}}}")?;
            }
            w.write_all(b"}")?;
        }
        write!(
            w,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":\"{}\"}}}}\n",
            state.dropped
        )?;
        Ok(())
    }

    /// Writes the Chrome trace to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_chrome_trace(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut out = BufWriter::new(File::create(path)?);
        self.write_chrome_trace(&mut out)?;
        out.flush()
    }

    /// Renders per-phase totals, aggregated across workers, as an
    /// aligned table under the same NON-DETERMINISTIC banner as
    /// `MetricsRegistry::render_wall`. Empty string when nothing was
    /// recorded.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let state = self.lock();
        if state.totals.is_empty() {
            return String::new();
        }
        // Aggregate across workers; count distinct workers per phase.
        let mut by_phase: BTreeMap<&'static str, (PhaseTotal, usize)> = BTreeMap::new();
        for ((name, _worker), total) in &state.totals {
            let entry = by_phase.entry(name).or_insert((PhaseTotal::default(), 0));
            entry.0.calls += total.calls;
            entry.0.micros += total.micros;
            entry.1 += 1;
        }
        let width = by_phase.keys().map(|n| n.len()).max().unwrap_or(5).max(5);
        let mut out = String::from(
            "phase profile (wall-clock, NON-DETERMINISTIC, excluded from reproducibility checks):\n",
        );
        let _ = writeln!(
            out,
            "  {:<width$}  {:>10}  {:>12}  {:>10}  {:>7}",
            "phase", "calls", "total_ms", "mean_us", "workers"
        );
        for (name, (total, workers)) in &by_phase {
            let mean = if total.calls > 0 {
                total.micros as f64 / total.calls as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>10}  {:>12.3}  {mean:>10.1}  {workers:>7}",
                total.calls,
                total.micros as f64 / 1e3,
            );
        }
        if state.dropped > 0 {
            let _ = writeln!(
                out,
                "  ({} raw trace event(s) dropped past the {}-event bound; totals stay exact)",
                state.dropped, self.max_events
            );
        }
        out
    }
}

/// Chrome trace `tid` for a worker index: the invoking thread
/// ([`MAIN_WORKER`]) renders as tid 0, pool workers as `worker + 1`.
fn tid_of(worker: usize) -> usize {
    if worker == MAIN_WORKER {
        0
    } else {
        worker + 1
    }
}

impl Observer for PhaseProfiler {
    fn on_phase(&self, worker: usize, name: &'static str, start_micros: u64, end_micros: u64) {
        let event = TraceEvent {
            name,
            worker,
            ts: start_micros,
            dur: Some(end_micros.saturating_sub(start_micros)),
            chunk: None,
        };
        self.lock().record(event, self.max_events);
    }

    fn on_mark(&self, worker: usize, name: &'static str, at_micros: u64) {
        let event = TraceEvent {
            name,
            worker,
            ts: at_micros,
            dur: None,
            chunk: None,
        };
        self.lock().record(event, self.max_events);
    }

    fn on_chunk_claimed(&self, worker: usize, start: usize, len: usize) {
        let now = clock::monotonic_micros();
        self.lock().open_chunks.insert(worker, (start, len, now));
    }

    fn on_chunk_completed(&self, worker: usize, start: usize, len: usize) {
        let now = clock::monotonic_micros();
        let mut state = self.lock();
        let Some((claim_start, claim_len, claimed_at)) = state.open_chunks.remove(&worker) else {
            return; // unmatched completion: drop rather than guess
        };
        debug_assert_eq!((claim_start, claim_len), (start, len));
        let event = TraceEvent {
            name: CHUNK_PHASE,
            worker,
            ts: claimed_at,
            dur: Some(now.saturating_sub(claimed_at)),
            chunk: Some((start, len)),
        };
        state.record(event, self.max_events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_aggregate_per_worker_and_phase() {
        let p = PhaseProfiler::new();
        p.on_phase(0, "sim.rewind.chunk", 0, 100);
        p.on_phase(1, "sim.rewind.chunk", 50, 250);
        p.on_phase(0, "channel.transmit", 10, 20);
        assert_eq!(p.phase_micros("sim.rewind.chunk"), 300);
        assert_eq!(p.phase_calls("sim.rewind.chunk"), 2);
        assert_eq!(p.phase_micros("channel.transmit"), 10);
    }

    #[test]
    fn chunk_pair_produces_a_span() {
        let p = PhaseProfiler::new();
        p.on_chunk_claimed(2, 64, 32);
        p.on_chunk_completed(2, 64, 32);
        assert_eq!(p.phase_calls(CHUNK_PHASE), 1);
        assert_eq!(p.events_retained(), 1);
    }

    #[test]
    fn event_bound_drops_but_totals_stay_exact() {
        let p = PhaseProfiler::with_max_events(2);
        for i in 0..5 {
            p.on_phase(0, "sim.rewind.verify", i * 10, i * 10 + 5);
        }
        assert_eq!(p.events_retained(), 2);
        assert_eq!(p.events_dropped(), 3);
        assert_eq!(p.phase_calls("sim.rewind.verify"), 5);
        assert_eq!(p.phase_micros("sim.rewind.verify"), 25);
    }

    #[test]
    fn chrome_trace_shape() {
        let p = PhaseProfiler::new();
        p.on_phase(0, "sim.rewind.chunk", 5, 25);
        p.on_mark(1, "sim.rewind.rewind", 30);
        p.on_chunk_claimed(MAIN_WORKER, 0, 4);
        p.on_chunk_completed(MAIN_WORKER, 0, 4);
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"sim.rewind.chunk\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"start\":0,\"len\":4}"));
        assert!(json.contains("\"tid\":0"), "main thread is tid 0: {json}");
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn summary_table_lists_phases() {
        let p = PhaseProfiler::new();
        assert!(p.summary_table().is_empty());
        p.on_phase(0, "runner.merge", 0, 1000);
        p.on_phase(1, "runner.merge", 0, 3000);
        let table = p.summary_table();
        assert!(table.contains("NON-DETERMINISTIC"), "{table}");
        assert!(table.contains("runner.merge"), "{table}");
        assert!(table.contains("2"), "{table}");
    }
}
