//! Ambient (thread-local) observer installation for deep code paths.
//!
//! The runner can pass an [`Observer`] handle explicitly, but the
//! interesting spans live far below it — the executor's round loop,
//! the lane engines' chunk/owners/verify phases — behind APIs whose
//! signatures must not grow an observability parameter. Instead, each
//! worker *installs* its observer into thread-local storage for the
//! duration of its work, and instrumentation points call [`phase`] /
//! [`mark`] ambiently.
//!
//! The contract that keeps this free for unobserved runs: [`phase`]
//! and [`mark`] first check a global relaxed [`AtomicUsize`] install
//! count. When zero (no observer installed anywhere in the process —
//! the common case for tests and unobserved benchmarks), they return
//! after **one atomic load**: no TLS access, no clock read, no
//! allocation. This is the "zero overhead when no observer is
//! attached" guarantee asserted by `crates/bench/tests/observer_progress.rs`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::clock;
use crate::observer::Observer;

/// Worker index reported for instrumented work on the invoking thread
/// (outside the worker pool), e.g. the trial-index-order metrics merge.
pub const MAIN_WORKER: usize = usize::MAX;

/// Number of observer installations currently live across all threads.
/// Zero means every ambient call is a single relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Installed>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Installed {
    observer: Arc<dyn Observer>,
    worker: usize,
}

/// Installs `observer` as this thread's ambient observer, reporting
/// hooks as worker `worker`, until the returned guard drops (which
/// restores whatever was installed before).
#[must_use = "the observer is uninstalled when the guard drops"]
pub fn install(observer: Arc<dyn Observer>, worker: usize) -> InstallGuard {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let previous = CURRENT.with(|c| c.replace(Some(Installed { observer, worker })));
    InstallGuard { previous }
}

/// Uninstalls the ambient observer (restoring the previous one) on drop.
pub struct InstallGuard {
    previous: Option<Installed>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Whether any thread currently has an observer installed. The inverse
/// is the fast-path guarantee: when false, [`phase`] and [`mark`] cost
/// one relaxed atomic load.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

fn with_current<R>(f: impl FnOnce(&Installed) -> R) -> Option<R> {
    if !is_active() {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// An open wall-clock span; reports to the ambient observer when
/// dropped. Inert (and cost-free beyond one atomic load) when no
/// observer is installed on this thread.
#[must_use = "a span reports its duration when dropped"]
pub struct PhaseSpan {
    open: Option<(Arc<dyn Observer>, usize, &'static str, u64)>,
}

/// Opens a named span on this thread's ambient observer. The span
/// closes (and fires [`Observer::on_phase`]) when the returned value
/// drops.
pub fn phase(name: &'static str) -> PhaseSpan {
    PhaseSpan {
        open: with_current(|cur| {
            (
                Arc::clone(&cur.observer),
                cur.worker,
                name,
                clock::monotonic_micros(),
            )
        }),
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some((observer, worker, name, start)) = self.open.take() {
            observer.on_phase(worker, name, start, clock::monotonic_micros());
        }
    }
}

/// Fires a named instantaneous [`Observer::on_mark`] on this thread's
/// ambient observer, if one is installed.
pub fn mark(name: &'static str) {
    let target = with_current(|cur| (Arc::clone(&cur.observer), cur.worker));
    if let Some((observer, worker)) = target {
        observer.on_mark(worker, name, clock::monotonic_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recording {
        phases: Mutex<Vec<(usize, &'static str)>>,
        marks: Mutex<Vec<(usize, &'static str)>>,
    }

    impl Observer for Recording {
        fn on_phase(&self, worker: usize, name: &'static str, start: u64, end: u64) {
            assert!(end >= start);
            self.phases.lock().unwrap().push((worker, name));
        }

        fn on_mark(&self, worker: usize, name: &'static str, _at: u64) {
            self.marks.lock().unwrap().push((worker, name));
        }
    }

    #[test]
    fn inert_without_installation() {
        // Nothing to assert beyond "does not panic / does not leak":
        // the span must be inert when no observer is installed.
        let span = phase("nothing");
        drop(span);
        mark("nothing");
    }

    #[test]
    fn spans_and_marks_reach_the_installed_observer() {
        let obs = Arc::new(Recording::default());
        {
            let _guard = install(Arc::clone(&obs) as Arc<dyn Observer>, 3);
            assert!(is_active());
            let span = phase("work");
            mark("tick");
            drop(span);
        }
        assert_eq!(*obs.phases.lock().unwrap(), vec![(3, "work")]);
        assert_eq!(*obs.marks.lock().unwrap(), vec![(3, "tick")]);
        // After the guard drops, this thread is quiet again.
        mark("ignored");
        assert_eq!(obs.marks.lock().unwrap().len(), 1);
    }

    #[test]
    fn nested_installs_restore_the_previous_observer() {
        let outer = Arc::new(Recording::default());
        let inner = Arc::new(Recording::default());
        let _outer_guard = install(Arc::clone(&outer) as Arc<dyn Observer>, 0);
        {
            let _inner_guard = install(Arc::clone(&inner) as Arc<dyn Observer>, 1);
            mark("inner");
        }
        mark("outer");
        assert_eq!(*inner.marks.lock().unwrap(), vec![(1, "inner")]);
        assert_eq!(*outer.marks.lock().unwrap(), vec![(0, "outer")]);
    }

    #[test]
    fn installation_is_per_thread() {
        let obs = Arc::new(Recording::default());
        let _guard = install(Arc::clone(&obs) as Arc<dyn Observer>, 0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // The other thread sees the process-wide ACTIVE count,
                // but has no thread-local observer: marks go nowhere.
                mark("other-thread");
            });
        });
        assert!(obs.marks.lock().unwrap().is_empty());
    }
}
