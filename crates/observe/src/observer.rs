//! The [`Observer`] hook trait and its trivial implementations.
//!
//! Every method has an empty default body, so an observer implements
//! only what it cares about, and the trait doubles as its own no-op.
//! Implementations must be cheap and `Send + Sync`: hooks fire from
//! worker threads concurrently, and nothing an observer does can be
//! allowed to block the engine for long (the shipped observers use
//! relaxed atomics or a short mutex).
//!
//! Hooks are **observation-only**: no method returns a value the
//! engine reads, which is the structural half of the "side-effect-free
//! on simulation output" invariant (the other half — bitwise-identical
//! observed vs. unobserved output — is pinned by
//! `crates/bench/tests/metrics_determinism.rs`).

use std::sync::Arc;

/// Metadata for one `TrialRunner` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunInfo {
    /// Trials this invocation will run.
    pub trials: usize,
    /// Worker threads the runner settled on (after clamping to the
    /// trial count).
    pub workers: usize,
}

/// Receives engine lifecycle events. All methods default to no-ops.
///
/// `worker` arguments are the runner's worker index (`0..workers`), or
/// [`crate::MAIN_WORKER`] for work done on the invoking thread outside
/// the pool (e.g. the trial-index-order metrics merge).
pub trait Observer: Send + Sync {
    /// One `TrialRunner` invocation is starting.
    fn on_run_start(&self, info: RunInfo) {
        let _ = info;
    }

    /// The invocation announced by [`Observer::on_run_start`] finished.
    fn on_run_end(&self, info: RunInfo) {
        let _ = info;
    }

    /// Worker `worker` claimed the contiguous trial-index chunk
    /// `start..start + len` from the shared counter.
    fn on_chunk_claimed(&self, worker: usize, start: usize, len: usize) {
        let _ = (worker, start, len);
    }

    /// Worker `worker` finished every trial of the chunk it last
    /// claimed. Chunks never interleave within a worker, so claimed /
    /// completed pairs bracket exactly.
    fn on_chunk_completed(&self, worker: usize, start: usize, len: usize) {
        let _ = (worker, start, len);
    }

    /// Worker `worker` dispatched a claimed chunk as one lane-sliced
    /// `simulate_batch` group of `trials` trials.
    fn on_lane_group(&self, worker: usize, trials: usize) {
        let _ = (worker, trials);
    }

    /// A named wall-clock span closed on worker `worker`
    /// (`start_micros..end_micros` on the [`crate::clock`] timebase).
    fn on_phase(&self, worker: usize, name: &'static str, start_micros: u64, end_micros: u64) {
        let _ = (worker, name, start_micros, end_micros);
    }

    /// A named instantaneous event on worker `worker`.
    fn on_mark(&self, worker: usize, name: &'static str, at_micros: u64) {
        let _ = (worker, name, at_micros);
    }
}

/// The explicit no-op observer (every hook keeps its default body).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Fans every hook out to a list of observers, in order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Arc<dyn Observer>>,
}

impl MultiObserver {
    /// An empty fan-out (behaves like [`NoopObserver`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observer to the fan-out list.
    #[must_use]
    pub fn with(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Number of registered observers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Whether no observers are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl Observer for MultiObserver {
    fn on_run_start(&self, info: RunInfo) {
        for o in &self.observers {
            o.on_run_start(info);
        }
    }

    fn on_run_end(&self, info: RunInfo) {
        for o in &self.observers {
            o.on_run_end(info);
        }
    }

    fn on_chunk_claimed(&self, worker: usize, start: usize, len: usize) {
        for o in &self.observers {
            o.on_chunk_claimed(worker, start, len);
        }
    }

    fn on_chunk_completed(&self, worker: usize, start: usize, len: usize) {
        for o in &self.observers {
            o.on_chunk_completed(worker, start, len);
        }
    }

    fn on_lane_group(&self, worker: usize, trials: usize) {
        for o in &self.observers {
            o.on_lane_group(worker, trials);
        }
    }

    fn on_phase(&self, worker: usize, name: &'static str, start_micros: u64, end_micros: u64) {
        for o in &self.observers {
            o.on_phase(worker, name, start_micros, end_micros);
        }
    }

    fn on_mark(&self, worker: usize, name: &'static str, at_micros: u64) {
        for o in &self.observers {
            o.on_mark(worker, name, at_micros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting {
        calls: AtomicU64,
    }

    impl Observer for Counting {
        fn on_chunk_claimed(&self, _worker: usize, _start: usize, _len: usize) {
            self.calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let o = NoopObserver;
        o.on_run_start(RunInfo {
            trials: 3,
            workers: 1,
        });
        o.on_chunk_claimed(0, 0, 3);
        o.on_phase(0, "x", 0, 1);
        o.on_run_end(RunInfo {
            trials: 3,
            workers: 1,
        });
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = Arc::new(Counting::default());
        let b = Arc::new(Counting::default());
        let multi = MultiObserver::new()
            .with(Arc::clone(&a) as Arc<dyn Observer>)
            .with(Arc::clone(&b) as Arc<dyn Observer>);
        assert_eq!(multi.len(), 2);
        multi.on_chunk_claimed(0, 0, 8);
        multi.on_chunk_claimed(1, 8, 8);
        assert_eq!(a.calls.load(Ordering::Relaxed), 2);
        assert_eq!(b.calls.load(Ordering::Relaxed), 2);
    }
}
