//! Live observability side-channel for the trial engine.
//!
//! Everything in `beeps-metrics` is *deterministic by construction* —
//! wall-clock is excluded from equality and serialization — which makes
//! a long sweep a black box while it runs: no progress, no ETA, no
//! per-phase timing, no worker-utilization view. This crate is the
//! other half of the bargain: a **side channel** that may read the
//! clock and write to stderr/files, under the hard invariant that it
//! never influences simulation output.
//!
//! The design enforces that invariant structurally:
//!
//! * Hooks are **observation-only**. The [`Observer`] trait receives
//!   copies of scheduling facts (chunk claims, lane-group dispatches,
//!   phase spans); nothing it returns is read by the engine.
//! * Timing flows one way. Observers read the clock *themselves* (via
//!   the one sanctioned [`clock`] module — see the beeps-lint
//!   `wall-clock` rule); the deterministic engine never touches it.
//! * The inactive path is free. Instrumentation points in hot code go
//!   through [`ambient`], whose fast path is a single relaxed atomic
//!   load when no observer is installed — no clock read, no TLS
//!   access, no allocation.
//!
//! Three production observers ship here:
//!
//! * [`ProgressTracker`] — lock-free atomic counters (trials completed,
//!   lane-groups dispatched, per-worker chunk claims) sampled by a
//!   [`ProgressReporter`] thread that renders throughput + ETA to
//!   stderr (`--progress` / `BEEPS_PROGRESS=1` in the binaries).
//! * [`PhaseProfiler`] — aggregates wall-clock phase spans per worker
//!   and exports Chrome trace-event JSON (`--profile <path>`, loadable
//!   in speedscope/perfetto) plus a summary table.
//! * [`RunLog`] — a structured JSONL writer (run id, config digest,
//!   seed, per-chunk timings, event-ring drop counters) written
//!   alongside the `target/experiments/<id>.json` logs.
//!
//! Determinism is pinned by `crates/bench/tests/metrics_determinism.rs`:
//! observed and unobserved runs produce bitwise-identical results and
//! metrics registries at 1/2/8 threads for all six schemes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ambient;
pub mod clock;
mod emit;
pub mod observer;
pub mod profile;
pub mod progress;
pub mod runlog;

pub use ambient::{install, is_active, mark, phase, InstallGuard, PhaseSpan, MAIN_WORKER};
pub use observer::{MultiObserver, NoopObserver, Observer, RunInfo};
pub use profile::PhaseProfiler;
pub use progress::{ProgressReporter, ProgressSnapshot, ProgressTracker};
pub use runlog::{config_digest, RunLog, RunMeta, RunSummary};
