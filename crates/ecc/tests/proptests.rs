//! Property-based tests for the code substrate: decoding guarantees hold
//! for *arbitrary* error patterns within the design radius, not just the
//! hand-picked ones in the unit tests.

use beeps_ecc::{
    BitMetric, ConcatenatedCode, GfField, Hadamard, RandomCode, ReedSolomon, RepetitionCode,
    SymbolCode,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RS corrects every error pattern of weight ≤ t, wherever it lands.
    #[test]
    fn rs_corrects_any_pattern_within_radius(
        msg in prop::collection::vec(0u16..16, 7),
        positions in prop::collection::btree_set(0usize..15, 0..=4),
        magnitudes in prop::collection::vec(1u16..16, 4),
    ) {
        let rs = ReedSolomon::new(GfField::new(4), 15, 7);
        let mut cw = rs.encode(&msg);
        for (idx, &pos) in positions.iter().enumerate() {
            cw[pos] ^= magnitudes[idx % magnitudes.len()];
        }
        prop_assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    /// Errors-and-erasures: any pattern with 2e + f <= n - k decodes.
    #[test]
    fn rs_errors_and_erasures_within_budget(
        msg in prop::collection::vec(0u16..16, 7),
        erased in prop::collection::btree_set(0usize..15, 0..=4),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let rs = ReedSolomon::new(GfField::new(4), 15, 7);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cw = rs.encode(&msg);
        // f erasures with arbitrary junk values...
        let erased: Vec<usize> = erased.into_iter().collect();
        for &i in &erased {
            cw[i] = rng.gen_range(0..16);
        }
        // ...plus e errors outside the erased set, 2e <= 8 - f.
        let e_budget = (8 - erased.len()) / 2;
        let mut errors = 0;
        for (i, symbol) in cw.iter_mut().enumerate() {
            if errors >= e_budget {
                break;
            }
            if !erased.contains(&i) && rng.gen_bool(0.2) {
                *symbol ^= rng.gen_range(1..16) as u16;
                errors += 1;
            }
        }
        prop_assert_eq!(rs.decode_with_erasures(&cw, &erased).unwrap(), msg);
    }

    /// Hadamard decodes any pattern below half the minimum distance.
    #[test]
    fn hadamard_unique_decoding_radius(
        symbol in 0usize..32,
        flips in prop::collection::btree_set(0usize..32, 0..8), // < d/2 = 8
    ) {
        let code = Hadamard::new(5);
        let mut w = code.encode(symbol);
        for &i in &flips {
            w[i] = !w[i];
        }
        prop_assert_eq!(code.decode(&w, BitMetric::Hamming), symbol);
    }

    /// Repetition decodes when strictly fewer than half of each bit's
    /// copies flip.
    #[test]
    fn repetition_majority_radius(
        symbol in 0usize..16,
        flip_one in 0usize..5,
        flip_two in 0usize..5,
    ) {
        let code = RepetitionCode::new(16, 5);
        let mut w = code.encode(symbol);
        // Flip at most 2 copies (minority) of two different bits.
        w[flip_one] = !w[flip_one];
        let second = 5 + flip_two;
        w[second] = !w[second];
        // Undo if both flips hit the same copy index of bit 0... they
        // can't: disjoint ranges. Majority (3 of 5) survives single flips.
        prop_assert_eq!(code.decode_bitwise(&w, 3), symbol);
    }

    /// Random codes roundtrip cleanly for every symbol and seed.
    #[test]
    fn random_code_roundtrips(seed in any::<u64>(), q in 2usize..64) {
        let code = RandomCode::new(q, 8, seed);
        for s in 0..q {
            prop_assert_eq!(code.decode(&code.encode(s), BitMetric::Hamming), s);
        }
    }

    /// Z-up metric decodes any received word that covers exactly one
    /// codeword (no erasures of 1s have happened).
    #[test]
    fn zup_decodes_covering_words(seed in any::<u64>(), symbol in 0usize..16) {
        let code = RandomCode::new(16, 10, seed);
        let mut w = code.encode(symbol);
        // Lift every fourth zero.
        let mut count = 0;
        for b in w.iter_mut() {
            if !*b {
                count += 1;
                if count % 4 == 0 {
                    *b = true;
                }
            }
        }
        // The true codeword is covered; under ZUp it must beat any
        // codeword with a 1 outside the received word. (Another codeword
        // could also be covered, but with 40-bit random words at q=16 the
        // chance is negligible; accept rare mismatch by re-checking cost.)
        let decoded = code.decode(&w, BitMetric::ZUp);
        if decoded != symbol {
            // Then the decoded word must also be covered and sparser.
            let alt = code.encode(decoded);
            let covered = alt.iter().zip(&w).all(|(&c, &r)| !c || r);
            prop_assert!(covered, "ZUp returned an impossible codeword");
        }
    }

    /// Concatenated codes survive any single corrupted inner block.
    #[test]
    fn concat_survives_one_block(
        symbol in 0usize..100,
        block in 0usize..15,
        pattern in any::<u16>(),
    ) {
        let code = ConcatenatedCode::for_alphabet(100, 4);
        let mut w = code.encode(symbol);
        for i in 0..16 {
            if (pattern >> i) & 1 == 1 {
                w[block * 16 + i] = !w[block * 16 + i];
            }
        }
        prop_assert_eq!(code.decode(&w, BitMetric::Hamming), symbol);
    }

    /// GF arithmetic: random triples satisfy field axioms in GF(256).
    #[test]
    fn gf256_axioms(a in 0u16..256, b in 0u16..256, c in 0u16..256) {
        let f = GfField::new(8);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
        prop_assert_eq!(
            f.mul(a, f.add(b, c)),
            f.add(f.mul(a, b), f.mul(a, c))
        );
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }
}
