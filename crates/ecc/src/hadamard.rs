//! The Walsh–Hadamard code: `k` message bits → `2^k` codeword bits, with
//! relative distance exactly 1/2 — the inner code of
//! [`crate::concat::ConcatenatedCode`].

use crate::bits::{BitMetric, PackedBits};
use crate::SymbolCode;

/// The Hadamard code of dimension `k`: message `x ∈ {0,1}^k` maps to the
/// codeword whose bit at position `y` is `⟨x, y⟩ mod 2`.
///
/// Any two distinct codewords differ in exactly `2^{k-1}` positions.
/// Decoding is brute-force maximum likelihood over all `2^k` codewords,
/// which is exact and fast for the `k ≤ 12` dimensions used here.
///
/// # Examples
///
/// ```
/// use beeps_ecc::{BitMetric, Hadamard, SymbolCode};
///
/// let code = Hadamard::new(4);
/// assert_eq!(code.codeword_len(), 16);
/// let mut word = code.encode(9);
/// word[3] ^= true; // three errors out of 16 stay inside half the distance
/// word[7] ^= true;
/// word[12] ^= true;
/// assert_eq!(code.decode(&word, BitMetric::Hamming), 9);
/// ```
#[derive(Debug, Clone)]
pub struct Hadamard {
    k: u32,
    codewords: Vec<PackedBits>,
}

impl Hadamard {
    /// Builds the Hadamard code of dimension `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= 14` (codewords of `2^14` bits are the
    /// practical ceiling for brute-force decoding).
    pub fn new(k: u32) -> Self {
        assert!((1..=14).contains(&k), "supported dimensions are 1..=14");
        let q = 1usize << k;
        let codewords = (0..q)
            .map(|x| {
                let bits: Vec<bool> = (0..q).map(|y| ((x & y).count_ones() & 1) == 1).collect();
                PackedBits::from_bools(&bits)
            })
            .collect();
        Self { k, codewords }
    }

    /// Message dimension `k`.
    pub fn dimension(&self) -> u32 {
        self.k
    }

    /// Decodes directly from packed bits (used by the concatenated code to
    /// avoid repacking).
    pub(crate) fn decode_packed(&self, received: &PackedBits, metric: BitMetric) -> usize {
        assert_eq!(
            received.len(),
            self.codeword_len(),
            "received word has wrong length"
        );
        let mut best = 0usize;
        let mut best_cost = u64::MAX;
        for (sym, cw) in self.codewords.iter().enumerate() {
            let cost = metric.cost(cw, received);
            if cost < best_cost {
                best_cost = cost;
                best = sym;
            }
        }
        best
    }
}

impl SymbolCode for Hadamard {
    fn alphabet_size(&self) -> usize {
        1usize << self.k
    }

    fn codeword_len(&self) -> usize {
        1usize << self.k
    }

    fn encode(&self, symbol: usize) -> Vec<bool> {
        assert!(
            symbol < self.alphabet_size(),
            "symbol {symbol} outside alphabet of {}",
            self.alphabet_size()
        );
        self.codewords[symbol].to_bools()
    }

    fn decode(&self, received: &[bool], metric: BitMetric) -> usize {
        self.decode_packed(&PackedBits::from_bools(received), metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_distance_is_exactly_half() {
        let code = Hadamard::new(5);
        for a in 0..code.alphabet_size() {
            for b in (a + 1)..code.alphabet_size() {
                let d = code.codewords[a].hamming(&code.codewords[b]);
                assert_eq!(d, 16, "distance between {a} and {b}");
            }
        }
    }

    #[test]
    fn zero_message_gives_zero_codeword() {
        let code = Hadamard::new(3);
        assert!(code.encode(0).iter().all(|&b| !b));
    }

    #[test]
    fn clean_roundtrip_all_symbols() {
        let code = Hadamard::new(6);
        for s in 0..code.alphabet_size() {
            let w = code.encode(s);
            assert_eq!(code.decode(&w, BitMetric::Hamming), s);
        }
    }

    #[test]
    fn corrects_below_quarter_of_length() {
        // Unique decoding radius is d/2 - 1 = 2^{k-2} - 1 errors.
        let code = Hadamard::new(6); // 64 bits, distance 32, corrects 15
        let mut w = code.encode(37);
        for i in 0..15 {
            w[i * 4] ^= true;
        }
        assert_eq!(code.decode(&w, BitMetric::Hamming), 37);
    }

    #[test]
    fn zup_metric_decodes_covered_words() {
        // One-sided up channel: received = codeword OR noise.
        let code = Hadamard::new(5);
        let mut w = code.encode(19);
        // Flip up a third of the zero positions.
        let mut flipped = 0;
        for b in w.iter_mut() {
            if !*b && flipped < 10 {
                *b = true;
                flipped += 1;
            }
        }
        assert_eq!(code.decode(&w, BitMetric::ZUp), 19);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn encode_out_of_range_panics() {
        Hadamard::new(3).encode(8);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn decode_wrong_length_panics() {
        Hadamard::new(3).decode(&[false; 7], BitMetric::Hamming);
    }
}
