//! Seeded random codes with maximum-likelihood decoding — the default
//! code `C` for Algorithm 1's owners phase.
//!
//! See the crate-level docs for why ML-decoded random codes (rather than
//! bounded-distance algebraic codes) are the right substrate at the
//! paper's `ε = 1/3` noise rate.

use crate::bits::{BitMetric, PackedBits};
use crate::SymbolCode;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A code of `q` pseudorandom codewords of length
/// `expansion · max(⌈log₂ q⌉, 1)` bits, drawn i.i.d. uniform from a seed
/// (with rejection of duplicate codewords).
///
/// All parties construct the same code from the same seed — in protocol
/// terms the code is part of the (shared, public) protocol description.
///
/// # Examples
///
/// ```
/// use beeps_ecc::{BitMetric, RandomCode, SymbolCode};
///
/// let code = RandomCode::new(65, 8, 1234);
/// assert_eq!(code.codeword_len(), 7 * 8);
/// let w = code.encode(64);
/// assert_eq!(code.decode(&w, BitMetric::Hamming), 64);
/// ```
#[derive(Debug, Clone)]
pub struct RandomCode {
    q: usize,
    len: usize,
    codewords: Vec<PackedBits>,
}

impl RandomCode {
    /// Builds a code for `alphabet_size` symbols with the given length
    /// `expansion` factor over the binary representation.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet_size < 2`, `expansion == 0`, or (pathological)
    /// the alphabet cannot be given distinct codewords at this length.
    pub fn new(alphabet_size: usize, expansion: usize, seed: u64) -> Self {
        assert!(expansion > 0, "expansion factor must be positive");
        let bits = if alphabet_size >= 2 {
            (usize::BITS as usize - (alphabet_size - 1).leading_zeros() as usize).max(1)
        } else {
            1
        };
        Self::with_length(alphabet_size, bits * expansion, seed)
    }

    /// Builds a code for `alphabet_size` symbols with an explicit codeword
    /// length in bits (e.g. from
    /// `beeps_info::tail::random_code_length`).
    ///
    /// # Panics
    ///
    /// Same conditions as [`RandomCode::new`].
    pub fn with_length(alphabet_size: usize, len: usize, seed: u64) -> Self {
        assert!(alphabet_size >= 2, "alphabet must have at least 2 symbols");
        assert!(len > 0, "codeword length must be positive");
        assert!(
            len >= 64 || alphabet_size as u128 <= (1u128 << len),
            "alphabet does not fit at this codeword length"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codewords: Vec<PackedBits> = Vec::with_capacity(alphabet_size);
        // Duplicate rejection via set membership: the draws (and therefore
        // the resulting code) are identical to the old O(q²) linear scan,
        // construction is just O(q log q) comparisons instead.
        let mut seen = std::collections::BTreeSet::new();
        let mut attempts = 0usize;
        while codewords.len() < alphabet_size {
            let bits_vec: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
            let cw = PackedBits::from_bools(&bits_vec);
            if !seen.insert(cw.clone()) {
                attempts += 1;
                assert!(
                    attempts < 10_000,
                    "could not draw distinct codewords; increase expansion"
                );
                continue;
            }
            codewords.push(cw);
        }
        Self {
            q: alphabet_size,
            len,
            codewords,
        }
    }

    /// Minimum pairwise Hamming distance of the code (O(q²) scan; intended
    /// for tests and experiment reporting, not hot paths).
    pub fn min_distance(&self) -> u32 {
        let mut best = u32::MAX;
        for i in 0..self.q {
            for j in (i + 1)..self.q {
                best = best.min(self.codewords[i].hamming(&self.codewords[j]));
            }
        }
        best
    }
}

impl SymbolCode for RandomCode {
    fn alphabet_size(&self) -> usize {
        self.q
    }

    fn codeword_len(&self) -> usize {
        self.len
    }

    fn encode(&self, symbol: usize) -> Vec<bool> {
        self.encode_packed(symbol).to_bools()
    }

    fn decode(&self, received: &[bool], metric: BitMetric) -> usize {
        assert_eq!(received.len(), self.len, "wrong word length");
        self.decode_packed(&PackedBits::from_bools(received), metric)
    }

    fn encode_packed(&self, symbol: usize) -> PackedBits {
        assert!(
            symbol < self.q,
            "symbol {symbol} outside alphabet of {}",
            self.q
        );
        self.codewords[symbol].clone()
    }

    fn decode_packed(&self, received: &PackedBits, metric: BitMetric) -> usize {
        assert_eq!(received.len(), self.len, "wrong word length");
        let mut best = 0usize;
        let mut best_cost = u64::MAX;
        for (sym, cw) in self.codewords.iter().enumerate() {
            let cost = metric.cost(cw, received);
            if cost < best_cost {
                best_cost = cost;
                best = sym;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn same_seed_same_code() {
        let a = RandomCode::new(20, 6, 99);
        let b = RandomCode::new(20, 6, 99);
        for s in 0..20 {
            assert_eq!(a.encode(s), b.encode(s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomCode::new(20, 6, 1);
        let b = RandomCode::new(20, 6, 2);
        assert!((0..20).any(|s| a.encode(s) != b.encode(s)));
    }

    #[test]
    fn clean_roundtrip_whole_alphabet() {
        let code = RandomCode::new(129, 8, 5);
        for s in 0..129 {
            assert_eq!(code.decode(&code.encode(s), BitMetric::Hamming), s);
        }
    }

    #[test]
    fn survives_bsc_noise_below_capacity_margin() {
        // Empirical check that ML decoding of the random code handles the
        // paper's eps = 1/3 with a generous expansion factor.
        let code = RandomCode::new(33, 24, 7);
        let mut rng = StdRng::seed_from_u64(0xF00D);
        let mut failures = 0u32;
        let trials = 400;
        for t in 0..trials {
            let sym = t as usize % 33;
            let mut w = code.encode(sym);
            for b in w.iter_mut() {
                if rng.gen_bool(1.0 / 3.0) {
                    *b = !*b;
                }
            }
            if code.decode(&w, BitMetric::Hamming) != sym {
                failures += 1;
            }
        }
        assert!(
            failures <= trials / 10,
            "ML decode failed {failures}/{trials} times at eps=1/3"
        );
    }

    #[test]
    fn survives_z_channel_at_high_rate() {
        // One-sided 0->1 noise at eps = 1/3 with the ZUp metric.
        let code = RandomCode::new(33, 12, 8);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut failures = 0u32;
        let trials = 400;
        for t in 0..trials {
            let sym = t as usize % 33;
            let mut w = code.encode(sym);
            for b in w.iter_mut() {
                if !*b && rng.gen_bool(1.0 / 3.0) {
                    *b = true;
                }
            }
            if code.decode(&w, BitMetric::ZUp) != sym {
                failures += 1;
            }
        }
        assert!(
            failures <= trials / 20,
            "Z-channel decode failed {failures}/{trials} times"
        );
    }

    #[test]
    fn packed_paths_match_bool_paths() {
        let code = RandomCode::new(33, 8, 42);
        let mut rng = StdRng::seed_from_u64(0x9A);
        for sym in 0..33 {
            assert_eq!(code.encode_packed(sym).to_bools(), code.encode(sym));
            // Noisy word: both decode entry points must agree bit for bit.
            let mut w = code.encode(sym);
            for b in w.iter_mut() {
                if rng.gen_bool(0.2) {
                    *b = !*b;
                }
            }
            let packed = PackedBits::from_bools(&w);
            for metric in [BitMetric::Hamming, BitMetric::ZUp, BitMetric::ZDown] {
                assert_eq!(code.decode(&w, metric), code.decode_packed(&packed, metric));
            }
        }
    }

    #[test]
    fn min_distance_positive() {
        let code = RandomCode::new(16, 10, 3);
        assert!(code.min_distance() > 0);
    }

    #[test]
    #[should_panic(expected = "wrong word length")]
    fn decode_length_mismatch_panics() {
        let code = RandomCode::new(4, 4, 0);
        code.decode(&[true; 3], BitMetric::Hamming);
    }
}
