//! Arithmetic in the finite fields `GF(2^m)`, `3 ≤ m ≤ 12`, via
//! log/antilog tables over a primitive element.
//!
//! This is the base layer of the Reed–Solomon substrate ([`crate::rs`]).

use std::fmt;

/// Primitive polynomials (with the leading `x^m` term included) indexed by
/// `m`; entry `m - 3` is used for `GF(2^m)`.
const PRIMITIVE_POLYS: [u32; 10] = [
    0b1011,             // m = 3:  x^3 + x + 1
    0b1_0011,           // m = 4:  x^4 + x + 1
    0b10_0101,          // m = 5:  x^5 + x^2 + 1
    0b100_0011,         // m = 6:  x^6 + x + 1
    0b1000_1001,        // m = 7:  x^7 + x^3 + 1
    0b1_0001_1101,      // m = 8:  x^8 + x^4 + x^3 + x^2 + 1
    0b10_0001_0001,     // m = 9:  x^9 + x^4 + 1
    0b100_0000_1001,    // m = 10: x^10 + x^3 + 1
    0b1000_0000_0101,   // m = 11: x^11 + x^2 + 1
    0b1_0000_0101_0011, // m = 12: x^12 + x^6 + x^4 + x + 1
];

/// The field `GF(2^m)` with precomputed exponential and logarithm tables.
///
/// Elements are represented as `u16` bit patterns of their polynomial
/// coefficients. Addition is XOR; multiplication goes through the tables.
///
/// # Examples
///
/// ```
/// use beeps_ecc::GfField;
///
/// let f = GfField::new(8);
/// let a = 0x53;
/// let b = 0xCA;
/// // Multiplication distributes over addition (XOR).
/// let c = 0x0F;
/// let lhs = f.mul(a, f.add(b, c));
/// let rhs = f.add(f.mul(a, b), f.mul(a, c));
/// assert_eq!(lhs, rhs);
/// ```
#[derive(Clone)]
pub struct GfField {
    m: u32,
    size: usize,
    exp: Vec<u16>,
    log: Vec<u16>,
}

impl fmt::Debug for GfField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GfField").field("m", &self.m).finish()
    }
}

impl GfField {
    /// Constructs `GF(2^m)`.
    ///
    /// # Panics
    ///
    /// Panics unless `3 <= m <= 12`.
    pub fn new(m: u32) -> Self {
        assert!(
            (3..=12).contains(&m),
            "supported fields are GF(2^3)..GF(2^12)"
        );
        let poly = PRIMITIVE_POLYS[(m - 3) as usize];
        let size = 1usize << m;
        let mut exp = vec![0u16; 2 * (size - 1)];
        let mut log = vec![0u16; size];
        let mut x: u32 = 1;
        #[allow(clippy::needless_range_loop)] // i indexes exp while x walks log
        for i in 0..(size - 1) {
            exp[i] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        // Duplicate the table so exp[i + j] never needs a modulo.
        for i in 0..(size - 1) {
            exp[size - 1 + i] = exp[i];
        }
        Self { m, size, exp, log }
    }

    /// The extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Number of field elements `2^m`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The multiplicative order `2^m − 1` of the primitive element.
    pub fn order(&self) -> usize {
        self.size - 1
    }

    /// The primitive element `α` (always the polynomial `x`).
    pub fn alpha(&self) -> u16 {
        2
    }

    /// Field addition (XOR). Inherent so call sites read algebraically.
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication.
    ///
    /// # Panics
    ///
    /// Debug-panics if an operand is outside the field.
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!((a as usize) < self.size && (b as usize) < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        let la = self.log[a as usize] as usize;
        let lb = self.log[b as usize] as usize;
        self.exp[la + lb]
    }

    /// `α^k` for any non-negative exponent.
    pub fn alpha_pow(&self, k: usize) -> u16 {
        self.exp[k % self.order()]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "zero has no inverse");
        let la = self.log[a as usize] as usize;
        self.exp[self.order() - la]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u16, b: u16) -> u16 {
        self.mul(a, self.inv(b))
    }

    /// `a^k` by repeated table lookups.
    pub fn pow(&self, a: u16, k: usize) -> u16 {
        if a == 0 {
            return u16::from(k == 0);
        }
        let la = self.log[a as usize] as usize;
        self.exp[(la * k) % self.order()]
    }

    /// Evaluates the polynomial `poly` (coefficients low-to-high) at `x`
    /// by Horner's rule.
    pub fn poly_eval(&self, poly: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in poly.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }

    /// Multiplies two polynomials over the field (coefficients low-to-high).
    pub fn poly_mul(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u16; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] = self.add(out[i + j], self.mul(ai, bj));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent_for_all_fields() {
        for m in 3..=12 {
            let f = GfField::new(m);
            // alpha has full multiplicative order.
            let mut seen = vec![false; f.size()];
            for k in 0..f.order() {
                let v = f.alpha_pow(k) as usize;
                assert!(v != 0 && !seen[v], "GF(2^{m}): alpha not primitive at {k}");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn field_axioms_hold_exhaustively_in_gf16() {
        let f = GfField::new(4);
        let n = f.size() as u16;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..n {
                    assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity failed at {a} {b} {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverses_in_gf256() {
        let f = GfField::new(8);
        for a in 1..f.size() as u16 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "inverse of {a}");
            assert_eq!(f.div(a, a), 1);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = GfField::new(5);
        for a in 0..f.size() as u16 {
            let mut acc = 1u16;
            for k in 0..10 {
                assert_eq!(f.pow(a, k), acc, "{a}^{k}");
                acc = f.mul(acc, a);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_horner() {
        let f = GfField::new(4);
        // p(x) = 3 + 2x + x^2 at x = alpha: evaluate manually.
        let p = [3u16, 2, 1];
        let x = f.alpha();
        let manual = f.add(f.add(3, f.mul(2, x)), f.mul(x, x));
        assert_eq!(f.poly_eval(&p, x), manual);
        // Constant and empty polynomials.
        assert_eq!(f.poly_eval(&[7], x), 7);
        assert_eq!(f.poly_eval(&[], x), 0);
    }

    #[test]
    fn poly_mul_matches_eval() {
        let f = GfField::new(6);
        let a = [1u16, 5, 0, 9];
        let b = [3u16, 0, 7];
        let prod = f.poly_mul(&a, &b);
        for k in 0..f.order().min(20) {
            let x = f.alpha_pow(k);
            assert_eq!(
                f.poly_eval(&prod, x),
                f.mul(f.poly_eval(&a, x), f.poly_eval(&b, x)),
                "product evaluation at alpha^{k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        GfField::new(4).inv(0);
    }

    #[test]
    #[should_panic(expected = "supported fields")]
    fn unsupported_degree_panics() {
        GfField::new(2);
    }
}
