//! Concatenated Reed–Solomon ∘ Hadamard binary codes.
//!
//! The classic constant-rate, constant-relative-distance construction:
//! an outer `[n_out, k_out]` Reed–Solomon code over `GF(2^m)` whose symbols
//! are then encoded by the inner Hadamard code of dimension `m`. Relative
//! distance ≈ `(1 − k_out/n_out) · 1/2`, suitable for the moderate noise
//! rates where bounded-distance decoding applies (the paper's `ε = 1/3`
//! regime uses [`crate::RandomCode`] instead; see the crate docs).

use crate::bits::{BitMetric, PackedBits};
use crate::gf::GfField;
use crate::hadamard::Hadamard;
use crate::rs::ReedSolomon;
use crate::SymbolCode;

/// A concatenated code mapping a symbol of a finite alphabet to
/// `n_out · 2^m` bits: the symbol is written in base `2^m`, RS-encoded,
/// and every RS symbol is Hadamard-encoded.
///
/// Decoding is hard-decision: each inner block is ML-decoded to a field
/// symbol, then the outer RS decoder corrects block errors. If RS decoding
/// fails, the systematic part of the inner decode is used as-is (decoders
/// must be total for the owners phase).
///
/// # Examples
///
/// ```
/// use beeps_ecc::{BitMetric, ConcatenatedCode, SymbolCode};
///
/// let code = ConcatenatedCode::for_alphabet(100, 4);
/// let mut w = code.encode(73);
/// // Corrupt two entire inner blocks.
/// for b in w.iter_mut().take(32) { *b = !*b; }
/// assert_eq!(code.decode(&w, BitMetric::Hamming), 73);
/// ```
#[derive(Debug, Clone)]
pub struct ConcatenatedCode {
    q: usize,
    rs: ReedSolomon,
    inner: Hadamard,
    m: u32,
}

impl ConcatenatedCode {
    /// Builds a code for `alphabet_size` symbols using `GF(2^m)`.
    ///
    /// The outer code is `[2^m − 1, k]` RS with
    /// `k = ⌈log₂(alphabet_size) / m⌉`, so the outer relative distance is
    /// `1 − k/(2^m − 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet_size < 2`, `m` is outside `3..=8`, or the
    /// alphabet is too large for the field (`k ≥ 2^m − 1`).
    pub fn for_alphabet(alphabet_size: usize, m: u32) -> Self {
        assert!(alphabet_size >= 2, "alphabet must have at least 2 symbols");
        assert!((3..=8).contains(&m), "inner dimension m must be in 3..=8");
        let bits_needed = (usize::BITS - (alphabet_size - 1).leading_zeros()).max(1);
        let k = (bits_needed as usize).div_ceil(m as usize).max(1);
        let n_out = (1usize << m) - 1;
        assert!(
            k < n_out,
            "alphabet of {alphabet_size} needs k={k} symbols, too many for GF(2^{m})"
        );
        let field = GfField::new(m);
        Self {
            q: alphabet_size,
            rs: ReedSolomon::new(field, n_out, k),
            inner: Hadamard::new(m),
            m,
        }
    }

    /// The outer Reed–Solomon code.
    pub fn outer(&self) -> &ReedSolomon {
        &self.rs
    }

    /// The inner Hadamard code.
    pub fn inner(&self) -> &Hadamard {
        &self.inner
    }

    fn symbol_to_digits(&self, symbol: usize) -> Vec<u16> {
        let k = self.rs.message_symbols();
        let mask = (1usize << self.m) - 1;
        (0..k)
            .map(|i| ((symbol >> (i * self.m as usize)) & mask) as u16)
            .collect()
    }

    fn digits_to_symbol(&self, digits: &[u16]) -> usize {
        let mut symbol = 0usize;
        for (i, &d) in digits.iter().enumerate() {
            let shift = i * self.m as usize;
            if shift >= usize::BITS as usize {
                break;
            }
            symbol |= (d as usize) << shift;
        }
        symbol
    }
}

impl SymbolCode for ConcatenatedCode {
    fn alphabet_size(&self) -> usize {
        self.q
    }

    fn codeword_len(&self) -> usize {
        self.rs.codeword_symbols() * self.inner.codeword_len()
    }

    fn encode(&self, symbol: usize) -> Vec<bool> {
        assert!(
            symbol < self.q,
            "symbol {symbol} outside alphabet of {}",
            self.q
        );
        let digits = self.symbol_to_digits(symbol);
        let rs_word = self.rs.encode(&digits);
        let mut bits = Vec::with_capacity(self.codeword_len());
        for &s in &rs_word {
            bits.extend(self.inner.encode(s as usize));
        }
        bits
    }

    fn decode(&self, received: &[bool], metric: BitMetric) -> usize {
        assert_eq!(received.len(), self.codeword_len(), "wrong word length");
        let block = self.inner.codeword_len();
        let rs_word: Vec<u16> = received
            .chunks(block)
            .map(|chunk| {
                self.inner
                    .decode_packed(&PackedBits::from_bools(chunk), metric) as u16
            })
            .collect();
        let digits = match self.rs.decode(&rs_word) {
            Ok(msg) => msg,
            // Total decoding: fall back to the systematic symbols.
            Err(_) => rs_word[..self.rs.message_symbols()].to_vec(),
        };
        let symbol = self.digits_to_symbol(&digits);
        if symbol < self.q {
            symbol
        } else {
            // Out-of-alphabet decode: clamp to the nearest valid symbol by
            // re-encoding cost would be expensive; the caller treats any
            // wrong symbol the same, so return a deterministic in-range one.
            symbol % self.q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn parameters_scale_with_alphabet() {
        let small = ConcatenatedCode::for_alphabet(10, 4);
        assert_eq!(small.outer().message_symbols(), 1);
        let big = ConcatenatedCode::for_alphabet(1 << 13, 4);
        assert_eq!(big.outer().message_symbols(), 4);
        assert_eq!(big.codeword_len(), 15 * 16);
    }

    #[test]
    fn clean_roundtrip() {
        let code = ConcatenatedCode::for_alphabet(513, 4);
        for s in [0usize, 1, 7, 100, 511, 512] {
            assert_eq!(code.decode(&code.encode(s), BitMetric::Hamming), s);
        }
    }

    #[test]
    fn corrects_burst_of_block_errors() {
        let code = ConcatenatedCode::for_alphabet(513, 4);
        // distance of outer [15, 3] code is 13: corrects 6 block errors.
        let mut w = code.encode(300);
        for block in 0..6 {
            for i in 0..16 {
                w[block * 16 + i] = !w[block * 16 + i];
            }
        }
        assert_eq!(code.decode(&w, BitMetric::Hamming), 300);
    }

    #[test]
    fn corrects_scattered_bit_noise_at_low_rate() {
        let code = ConcatenatedCode::for_alphabet(100, 4);
        let mut rng = StdRng::seed_from_u64(42);
        let mut failures = 0;
        for trial in 0..200 {
            let s = trial % 100;
            let mut w = code.encode(s);
            for b in w.iter_mut() {
                if rng.gen_bool(0.08) {
                    *b = !*b;
                }
            }
            if code.decode(&w, BitMetric::Hamming) != s {
                failures += 1;
            }
        }
        assert!(failures <= 4, "failed {failures}/200 at 8% bit noise");
    }

    #[test]
    fn decode_is_total_under_catastrophic_noise() {
        let code = ConcatenatedCode::for_alphabet(50, 4);
        let w = vec![true; code.codeword_len()];
        let s = code.decode(&w, BitMetric::Hamming);
        assert!(s < 50);
    }

    #[test]
    #[should_panic(expected = "too many for GF")]
    fn oversized_alphabet_rejected() {
        // GF(2^3): n_out = 7, so k must be < 7, i.e. alphabet < 2^21;
        // push beyond it.
        ConcatenatedCode::for_alphabet(1 << 22, 3);
    }
}
