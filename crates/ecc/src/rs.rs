//! Reed–Solomon codes over `GF(2^m)` with algebraic decoding
//! (syndromes → Berlekamp–Massey → Chien search → Forney).
//!
//! Used as the outer code of [`crate::concat::ConcatenatedCode`]; also a
//! standalone substrate for low-noise codeword exchanges.

use crate::gf::GfField;
use std::fmt;

/// Decoding failure of a Reed–Solomon word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// More errors occurred than `(n - k) / 2`; the decoder detected it.
    TooManyErrors,
    /// More than `n - k` positions were declared erased.
    TooManyErasures,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::TooManyErrors => write!(f, "more errors than the code can correct"),
            RsError::TooManyErasures => write!(f, "more erasures than parity symbols"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic `[n, k]` Reed–Solomon code over `GF(2^m)`.
///
/// Corrects up to `⌊(n − k) / 2⌋` symbol errors. Codewords are
/// `message ‖ parity` with symbols as `u16` field elements.
///
/// # Examples
///
/// ```
/// use beeps_ecc::{GfField, ReedSolomon};
///
/// let rs = ReedSolomon::new(GfField::new(4), 15, 7);
/// let msg = vec![1u16, 2, 3, 4, 5, 6, 7];
/// let mut cw = rs.encode(&msg);
/// // Corrupt up to 4 symbols; the code corrects them.
/// cw[0] ^= 9; cw[5] ^= 3; cw[10] ^= 1; cw[14] ^= 7;
/// assert_eq!(rs.decode(&cw).unwrap(), msg);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    field: GfField,
    n: usize,
    k: usize,
    /// Generator polynomial `∏_{i=1}^{n-k} (x − α^i)`, low-to-high.
    generator: Vec<u16>,
}

impl ReedSolomon {
    /// Builds the `[n, k]` code over `field`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n ≤ 2^m − 1`.
    pub fn new(field: GfField, n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "need 0 < k < n, got k={k} n={n}");
        assert!(
            n <= field.order(),
            "n={n} exceeds field order {}",
            field.order()
        );
        let mut generator = vec![1u16];
        for i in 1..=(n - k) {
            // Multiply by (x + α^i); over GF(2), −α^i = α^i.
            generator = field.poly_mul(&generator, &[field.alpha_pow(i), 1]);
        }
        Self {
            field,
            n,
            k,
            generator,
        }
    }

    /// Codeword length in symbols.
    pub fn codeword_symbols(&self) -> usize {
        self.n
    }

    /// Message length in symbols.
    pub fn message_symbols(&self) -> usize {
        self.k
    }

    /// Maximum number of correctable symbol errors `⌊(n − k)/2⌋`.
    pub fn correctable(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// The underlying field.
    pub fn field(&self) -> &GfField {
        &self.field
    }

    /// Systematically encodes `message` (length `k`) into a codeword of
    /// length `n`: `message ‖ parity`.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != k` or a symbol is outside the field.
    pub fn encode(&self, message: &[u16]) -> Vec<u16> {
        assert_eq!(message.len(), self.k, "message must have k symbols");
        for &s in message {
            assert!(
                (s as usize) < self.field.size(),
                "symbol {s} outside GF(2^{})",
                self.field.degree()
            );
        }
        let parity_len = self.n - self.k;
        // Compute message(x) * x^{n-k} mod generator(x).
        // Work with the polynomial low-to-high; codeword layout is
        // [message symbols..., parity symbols...].
        let mut remainder = vec![0u16; parity_len];
        // Synthetic long division, feeding message symbols high-to-low.
        for &m in message.iter().rev() {
            let feedback = self.field.add(m, remainder[parity_len - 1]);
            // Shift remainder up by one.
            for idx in (1..parity_len).rev() {
                let delta = self.field.mul(feedback, self.generator[idx]);
                remainder[idx] = self.field.add(remainder[idx - 1], delta);
            }
            remainder[0] = self.field.mul(feedback, self.generator[0]);
        }
        let mut codeword = Vec::with_capacity(self.n);
        codeword.extend_from_slice(message);
        codeword.extend_from_slice(&remainder);
        codeword
    }

    /// Polynomial view of a codeword: coefficient of `x^j` is
    /// `codeword_poly[j]`. The systematic layout `message ‖ parity` maps to
    /// `c(x) = m(x)·x^{n-k} + r(x)` with message symbol `i` at degree
    /// `n - k + i` and parity symbol `j` at degree `j`.
    fn to_poly(&self, codeword: &[u16]) -> Vec<u16> {
        let parity_len = self.n - self.k;
        let mut poly = vec![0u16; self.n];
        poly[..parity_len].copy_from_slice(&codeword[self.k..]);
        poly[parity_len..].copy_from_slice(&codeword[..self.k]);
        poly
    }

    fn poly_to_codeword(&self, poly: &[u16]) -> Vec<u16> {
        let parity_len = self.n - self.k;
        let mut codeword = vec![0u16; self.n];
        codeword[..self.k].copy_from_slice(&poly[parity_len..]);
        codeword[self.k..].copy_from_slice(&poly[..parity_len]);
        codeword
    }

    /// Decodes `received` (length `n`), correcting up to
    /// [`ReedSolomon::correctable`] symbol errors, and returns the message.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::TooManyErrors`] when the error pattern is beyond
    /// the code's correction radius *and* detectable. (Like every bounded-
    /// distance decoder, patterns that land inside another codeword's
    /// radius miscorrect silently; callers that need stronger guarantees
    /// wrap this in the ML decoding of [`crate::random_code`].)
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n`.
    pub fn decode(&self, received: &[u16]) -> Result<Vec<u16>, RsError> {
        self.decode_with_erasures(received, &[])
    }

    /// Errors-and-erasures decoding: corrects `e` symbol errors and `f`
    /// caller-declared erasures whenever `2e + f ≤ n − k` (twice the
    /// budget of error-only decoding per known-bad symbol). Over the
    /// beeping channel this matters for the one-sided regimes, where some
    /// corruption locations are *known*: a party that beeped into a round
    /// heard as silence can mark that symbol as erased.
    ///
    /// `erasures` are codeword indices (`0..n`, systematic layout);
    /// duplicates are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::TooManyErrors`] as for [`ReedSolomon::decode`],
    /// or [`RsError::TooManyErasures`] when more than `n − k` positions
    /// are declared erased.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n` or an erasure index is out of
    /// range.
    pub fn decode_with_erasures(
        &self,
        received: &[u16],
        erasures: &[usize],
    ) -> Result<Vec<u16>, RsError> {
        assert_eq!(received.len(), self.n, "received word must have n symbols");
        let f = &self.field;
        let poly = self.to_poly(received);
        let parity_len = self.n - self.k;

        let mut erasure_degrees: Vec<usize> = erasures
            .iter()
            .map(|&i| {
                assert!(i < self.n, "erasure index {i} out of range");
                self.codeword_index_to_degree(i)
            })
            .collect();
        erasure_degrees.sort_unstable();
        erasure_degrees.dedup();
        let num_erasures = erasure_degrees.len();
        if num_erasures > parity_len {
            return Err(RsError::TooManyErasures);
        }

        // Syndromes S_i = r(α^i) for i = 1..=n-k.
        let syndromes: Vec<u16> = (1..=parity_len)
            .map(|i| f.poly_eval(&poly, f.alpha_pow(i)))
            .collect();
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(self.poly_to_codeword(&poly)[..self.k].to_vec());
        }

        // Erasure locator Γ(x) = ∏ (1 + X_j x) for erasure locators
        // X_j = α^{degree}.
        let mut gamma = vec![1u16];
        for &deg in &erasure_degrees {
            gamma = f.poly_mul(&gamma, &[1, f.alpha_pow(deg % f.order())]);
        }

        // Forney syndromes: Ξ(x) = S(x)·Γ(x) mod x^{2t}; the tail
        // Ξ_f, …, Ξ_{2t−1} is an LFSR sequence generated by the *error*
        // locator alone.
        let mut xi = f.poly_mul(&syndromes, &gamma);
        xi.truncate(parity_len);
        xi.resize(parity_len, 0);
        let modified: Vec<u16> = xi[num_erasures..].to_vec();

        // Berlekamp–Massey on the modified sequence gives sigma(x).
        let (sigma, num_errors) = berlekamp_massey(f, &modified);
        if 2 * num_errors + num_erasures > parity_len {
            return Err(RsError::TooManyErrors);
        }

        // Full locator ψ = σ·Γ covers errors and erasures alike.
        let psi = f.poly_mul(&sigma, &gamma);

        // Chien search: roots of psi are α^{-j} for corrupt degrees j.
        let mut corrupt_degrees = Vec::new();
        for j in 0..self.n {
            let x_inv = f.alpha_pow((f.order() - j % f.order()) % f.order());
            if f.poly_eval(&psi, x_inv) == 0 {
                corrupt_degrees.push(j);
            }
        }
        if corrupt_degrees.len() != num_errors + num_erasures {
            return Err(RsError::TooManyErrors);
        }

        // Forney: omega(x) = [S(x)·psi(x)] mod x^{n-k}.
        let mut omega = f.poly_mul(&syndromes, &psi);
        omega.truncate(parity_len);

        let mut corrected = poly;
        for &j in &corrupt_degrees {
            let x_inv = f.alpha_pow((f.order() - j % f.order()) % f.order());
            let omega_val = f.poly_eval(&omega, x_inv);
            // psi'(x): formal derivative (over GF(2): odd-degree terms).
            let psi_deriv: u16 = {
                let mut acc = 0u16;
                let mut idx = 1;
                while idx < psi.len() {
                    acc = f.add(acc, f.mul(psi[idx], f.pow(x_inv, idx - 1)));
                    idx += 2;
                }
                acc
            };
            if psi_deriv == 0 {
                return Err(RsError::TooManyErrors);
            }
            // Magnitude = omega(x_inv) / psi'(x_inv); syndromes start at
            // α^1, so no extra X_j factor (single-error check: with
            // S(x) = Σ_{i>=1} S_i x^{i-1}, an error of value e at locator
            // X gives omega(x) = e·X and psi'(x) = X).
            let magnitude = f.div(omega_val, psi_deriv);
            corrected[j] = f.add(corrected[j], magnitude);
        }

        // Verify: all syndromes of the corrected word must vanish.
        for i in 1..=parity_len {
            if f.poly_eval(&corrected, f.alpha_pow(i)) != 0 {
                return Err(RsError::TooManyErrors);
            }
        }
        Ok(self.poly_to_codeword(&corrected)[..self.k].to_vec())
    }

    /// Polynomial degree carrying codeword index `i` in the systematic
    /// layout (`message ‖ parity`).
    fn codeword_index_to_degree(&self, i: usize) -> usize {
        let parity_len = self.n - self.k;
        if i < self.k {
            parity_len + i
        } else {
            i - self.k
        }
    }
}

/// Berlekamp–Massey over `GF(2^m)`: the minimal LFSR (connection
/// polynomial, low-to-high, constant term 1) generating `seq`, together
/// with its length `L`.
fn berlekamp_massey(f: &GfField, seq: &[u16]) -> (Vec<u16>, usize) {
    let mut sigma = vec![1u16];
    let mut prev_sigma = vec![1u16];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut prev_discrepancy = 1u16;
    for n_iter in 0..seq.len() {
        let mut d = seq[n_iter];
        for i in 1..=l.min(sigma.len() - 1) {
            d = f.add(d, f.mul(sigma[i], seq[n_iter - i]));
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n_iter {
            let tmp = sigma.clone();
            let coeff = f.div(d, prev_discrepancy);
            sigma = poly_sub_shifted(f, &sigma, &prev_sigma, coeff, m);
            prev_sigma = tmp;
            l = n_iter + 1 - l;
            prev_discrepancy = d;
            m = 1;
        } else {
            let coeff = f.div(d, prev_discrepancy);
            sigma = poly_sub_shifted(f, &sigma, &prev_sigma, coeff, m);
            m += 1;
        }
    }
    (sigma, l)
}

/// `a(x) + coeff · x^shift · b(x)` over GF(2^m) (subtraction = addition).
fn poly_sub_shifted(f: &GfField, a: &[u16], b: &[u16], coeff: u16, shift: usize) -> Vec<u16> {
    let len = a.len().max(b.len() + shift);
    let mut out = vec![0u16; len];
    out[..a.len()].copy_from_slice(a);
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] = f.add(out[i + shift], f.mul(coeff, bi));
    }
    // Trim trailing zeros but keep at least the constant term.
    while out.len() > 1 && *out.last().unwrap() == 0 {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rs15_7() -> ReedSolomon {
        ReedSolomon::new(GfField::new(4), 15, 7)
    }

    #[test]
    fn encode_is_systematic() {
        let rs = rs15_7();
        let msg: Vec<u16> = (1..=7).collect();
        let cw = rs.encode(&msg);
        assert_eq!(&cw[..7], msg.as_slice());
        assert_eq!(cw.len(), 15);
    }

    #[test]
    fn clean_roundtrip() {
        let rs = rs15_7();
        let msg: Vec<u16> = vec![0, 15, 7, 7, 1, 0, 9];
        assert_eq!(rs.decode(&rs.encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn codeword_evaluates_to_zero_at_generator_roots() {
        let rs = rs15_7();
        let msg: Vec<u16> = vec![3, 1, 4, 1, 5, 9, 2];
        let cw = rs.encode(&msg);
        let poly = rs.to_poly(&cw);
        for i in 1..=8 {
            assert_eq!(
                rs.field().poly_eval(&poly, rs.field().alpha_pow(i)),
                0,
                "codeword must vanish at alpha^{i}"
            );
        }
    }

    #[test]
    fn corrects_up_to_t_errors_everywhere() {
        let rs = rs15_7();
        let mut rng = StdRng::seed_from_u64(0x55);
        for trial in 0..300 {
            let msg: Vec<u16> = (0..7).map(|_| rng.gen_range(0..16)).collect();
            let mut cw = rs.encode(&msg);
            let errors = rng.gen_range(0..=rs.correctable());
            let mut positions: Vec<usize> = (0..15).collect();
            // Partial shuffle for distinct positions.
            for i in 0..errors {
                let j = rng.gen_range(i..15);
                positions.swap(i, j);
            }
            for &p in &positions[..errors] {
                let e = rng.gen_range(1..16) as u16;
                cw[p] ^= e;
            }
            assert_eq!(
                rs.decode(&cw).unwrap(),
                msg,
                "trial {trial}: {errors} errors must be corrected"
            );
        }
    }

    #[test]
    fn detects_excess_errors_usually() {
        // With > t errors the decoder must not return the original message
        // silently claiming success; it either errs or miscorrects to a
        // *different* valid codeword. We check it never returns the true
        // message while reporting success on a heavily corrupted word
        // whose corruption touched the message part.
        let rs = rs15_7();
        let msg: Vec<u16> = vec![1, 2, 3, 4, 5, 6, 7];
        let cw = rs.encode(&msg);
        let mut corrupted = cw;
        for item in corrupted.iter_mut().take(11) {
            *item ^= 0xF;
        }
        match rs.decode(&corrupted) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(
                decoded, msg,
                "silent success with wrong content is the acceptable failure mode"
            ),
        }
    }

    #[test]
    fn works_over_larger_fields() {
        let rs = ReedSolomon::new(GfField::new(8), 255, 223);
        let mut rng = StdRng::seed_from_u64(0x77);
        let msg: Vec<u16> = (0..223).map(|_| rng.gen_range(0..256)).collect();
        let mut cw = rs.encode(&msg);
        for i in 0..16 {
            cw[i * 15] ^= rng.gen_range(1..256) as u16;
        }
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn single_error_in_parity_corrected() {
        let rs = rs15_7();
        let msg: Vec<u16> = vec![9; 7];
        let mut cw = rs.encode(&msg);
        cw[14] ^= 1;
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn pure_erasures_up_to_parity_count() {
        // f erasures, zero errors: correctable up to n - k = 8.
        let rs = rs15_7();
        let msg: Vec<u16> = vec![4, 8, 15, 1, 6, 2, 3];
        let cw = rs.encode(&msg);
        let mut corrupted = cw.clone();
        let erased: Vec<usize> = vec![0, 2, 5, 8, 9, 11, 13, 14];
        for &i in &erased {
            corrupted[i] = 0; // decoder only uses the positions, not values
        }
        assert_eq!(rs.decode_with_erasures(&corrupted, &erased).unwrap(), msg);
        // Error-only decoding could never fix 8 corruptions (t = 4).
        if corrupted != cw {
            assert!(rs.decode(&corrupted).is_err() || rs.decode(&corrupted).unwrap() != msg);
        }
    }

    #[test]
    fn mixed_errors_and_erasures_within_budget() {
        // 2e + f <= 8: try e = 2 errors plus f = 4 erasures.
        let rs = rs15_7();
        let mut rng = StdRng::seed_from_u64(0xEE);
        for trial in 0..200 {
            let msg: Vec<u16> = (0..7).map(|_| rng.gen_range(0..16)).collect();
            let mut cw = rs.encode(&msg);
            let mut positions: Vec<usize> = (0..15).collect();
            for i in 0..6 {
                let j = rng.gen_range(i..15);
                positions.swap(i, j);
            }
            let erased = &positions[..4];
            let errored = &positions[4..6];
            for &i in erased {
                cw[i] = rng.gen_range(0..16);
            }
            for &i in errored {
                cw[i] ^= rng.gen_range(1..16) as u16;
            }
            assert_eq!(
                rs.decode_with_erasures(&cw, erased).unwrap(),
                msg,
                "trial {trial} failed"
            );
        }
    }

    #[test]
    fn erasures_double_the_budget() {
        // 5 corruptions at known positions decode fine (5 <= 8), while
        // the same 5 at unknown positions exceed t = 4.
        let rs = rs15_7();
        let msg: Vec<u16> = vec![7; 7];
        let cw = rs.encode(&msg);
        let mut corrupted = cw;
        let positions = [1usize, 3, 6, 10, 12];
        for &i in &positions {
            corrupted[i] ^= 5;
        }
        assert_eq!(
            rs.decode_with_erasures(&corrupted, &positions).unwrap(),
            msg
        );
        match rs.decode(&corrupted) {
            Err(RsError::TooManyErrors) => {}
            Ok(decoded) => assert_ne!(decoded, msg),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn erased_but_intact_positions_are_harmless() {
        // Declaring healthy symbols erased must not corrupt anything.
        let rs = rs15_7();
        let msg: Vec<u16> = vec![1, 2, 3, 4, 5, 6, 7];
        let mut cw = rs.encode(&msg);
        cw[4] ^= 9; // one real error on top
        assert_eq!(rs.decode_with_erasures(&cw, &[0, 10, 14]).unwrap(), msg);
    }

    #[test]
    fn too_many_erasures_reported() {
        let rs = rs15_7();
        let cw = rs.encode(&[0; 7]);
        let erased: Vec<usize> = (0..9).collect();
        assert_eq!(
            rs.decode_with_erasures(&cw, &erased),
            Err(RsError::TooManyErasures)
        );
    }

    #[test]
    fn duplicate_erasures_are_deduplicated() {
        let rs = rs15_7();
        let msg: Vec<u16> = vec![9, 9, 9, 0, 0, 0, 1];
        let mut cw = rs.encode(&msg);
        cw[2] ^= 3;
        assert_eq!(rs.decode_with_erasures(&cw, &[2, 2, 2, 2]).unwrap(), msg);
    }

    #[test]
    #[should_panic(expected = "k symbols")]
    fn wrong_message_length_panics() {
        rs15_7().encode(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "need 0 < k < n")]
    fn degenerate_dimensions_rejected() {
        ReedSolomon::new(GfField::new(4), 15, 15);
    }

    #[test]
    #[should_panic(expected = "exceeds field order")]
    fn oversized_n_rejected() {
        ReedSolomon::new(GfField::new(4), 16, 4);
    }
}
