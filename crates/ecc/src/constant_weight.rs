//! Constant-weight codes: every codeword carries exactly `w` ones.
//!
//! Two reasons to care in the beeping world:
//!
//! * **Energy.** A beep costs energy; a codeword's weight *is* its energy.
//!   Random codes beep on half their bits; a constant-weight code at
//!   `w ≪ len/2` cuts the owners phase's energy proportionally.
//! * **The Z-channel.** Over one-sided `0→1` noise the 1s of a codeword
//!   are never erased, so what distinguishes codewords is where their 1s
//!   *aren't* — superimposed-code territory, where low-weight codes with
//!   small pairwise support intersections excel.
//!
//! Codewords are random distinct `w`-subsets of the positions, drawn from
//! a seed like [`crate::RandomCode`]; decoding is maximum likelihood under
//! the caller's [`BitMetric`].

use crate::bits::{BitMetric, PackedBits};
use crate::SymbolCode;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A code of `q` codewords of length `len`, each of Hamming weight
/// exactly `weight`.
///
/// # Examples
///
/// ```
/// use beeps_ecc::{BitMetric, ConstantWeightCode, SymbolCode};
///
/// let code = ConstantWeightCode::new(17, 48, 6, 0xC0DE);
/// let w = code.encode(11);
/// assert_eq!(w.iter().filter(|&&b| b).count(), 6);
/// assert_eq!(code.decode(&w, BitMetric::ZUp), 11);
/// ```
#[derive(Debug, Clone)]
pub struct ConstantWeightCode {
    q: usize,
    len: usize,
    weight: usize,
    codewords: Vec<PackedBits>,
}

impl ConstantWeightCode {
    /// Builds the code from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet_size < 2`, `weight` is 0 or ≥ `len`, or
    /// distinct supports cannot be drawn (alphabet too large for
    /// `C(len, weight)`).
    pub fn new(alphabet_size: usize, len: usize, weight: usize, seed: u64) -> Self {
        assert!(alphabet_size >= 2, "alphabet must have at least 2 symbols");
        assert!(
            weight >= 1 && weight < len,
            "weight must be in 1..len, got {weight} of {len}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codewords: Vec<PackedBits> = Vec::with_capacity(alphabet_size);
        // Set-membership duplicate rejection: same draws and resulting
        // code as the old O(q²) linear scan, minus the quadratic scans.
        let mut seen = std::collections::BTreeSet::new();
        let mut attempts = 0usize;
        while codewords.len() < alphabet_size {
            // Partial Fisher–Yates draw of a w-subset.
            let mut positions: Vec<usize> = (0..len).collect();
            for i in 0..weight {
                let j = rng.gen_range(i..len);
                positions.swap(i, j);
            }
            let mut bits = vec![false; len];
            for &p in &positions[..weight] {
                bits[p] = true;
            }
            let cw = PackedBits::from_bools(&bits);
            if !seen.insert(cw.clone()) {
                attempts += 1;
                assert!(
                    attempts < 10_000,
                    "could not draw distinct supports; increase len or weight"
                );
                continue;
            }
            codewords.push(cw);
        }
        Self {
            q: alphabet_size,
            len,
            weight,
            codewords,
        }
    }

    /// The common Hamming weight of every codeword.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Largest pairwise support intersection (O(q²); for analysis).
    pub fn max_support_overlap(&self) -> u32 {
        let mut worst = 0;
        for i in 0..self.q {
            for j in (i + 1)..self.q {
                let d = self.codewords[i].hamming(&self.codewords[j]);
                // |A ∩ B| = w − d/2 for equal-weight words.
                let overlap = self.weight as u32 - d / 2;
                worst = worst.max(overlap);
            }
        }
        worst
    }
}

impl SymbolCode for ConstantWeightCode {
    fn alphabet_size(&self) -> usize {
        self.q
    }

    fn codeword_len(&self) -> usize {
        self.len
    }

    fn encode(&self, symbol: usize) -> Vec<bool> {
        self.encode_packed(symbol).to_bools()
    }

    fn decode(&self, received: &[bool], metric: BitMetric) -> usize {
        assert_eq!(received.len(), self.len, "wrong word length");
        self.decode_packed(&PackedBits::from_bools(received), metric)
    }

    fn encode_packed(&self, symbol: usize) -> PackedBits {
        assert!(
            symbol < self.q,
            "symbol {symbol} outside alphabet of {}",
            self.q
        );
        self.codewords[symbol].clone()
    }

    fn decode_packed(&self, received: &PackedBits, metric: BitMetric) -> usize {
        assert_eq!(received.len(), self.len, "wrong word length");
        let mut best = 0usize;
        let mut best_cost = u64::MAX;
        for (sym, cw) in self.codewords.iter().enumerate() {
            let cost = metric.cost(cw, received);
            if cost < best_cost {
                best_cost = cost;
                best = sym;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_codeword_has_the_declared_weight() {
        let code = ConstantWeightCode::new(33, 60, 8, 1);
        for s in 0..33 {
            assert_eq!(code.encode(s).iter().filter(|&&b| b).count(), 8);
        }
    }

    #[test]
    fn clean_roundtrip() {
        let code = ConstantWeightCode::new(65, 80, 10, 2);
        for s in 0..65 {
            assert_eq!(code.decode(&code.encode(s), BitMetric::ZUp), s);
            assert_eq!(code.decode(&code.encode(s), BitMetric::Hamming), s);
        }
    }

    #[test]
    fn z_channel_resilience_at_paper_rate() {
        // One-sided 0->1 at eps = 1/3: ones survive, zeros lift.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let code = ConstantWeightCode::new(33, 72, 9, 3);
        let mut rng = StdRng::seed_from_u64(0x2EE);
        let mut failures = 0u32;
        let trials = 400;
        for t in 0..trials {
            let sym = t as usize % 33;
            let mut w = code.encode(sym);
            for b in w.iter_mut() {
                if !*b && rng.gen_bool(1.0 / 3.0) {
                    *b = true;
                }
            }
            if code.decode(&w, BitMetric::ZUp) != sym {
                failures += 1;
            }
        }
        assert!(
            failures <= trials / 20,
            "Z decode failed {failures}/{trials}"
        );
    }

    #[test]
    fn lighter_than_random_codes_at_same_length() {
        use crate::RandomCode;
        let len = 72;
        let cw = ConstantWeightCode::new(33, len, 9, 4);
        let rc = RandomCode::with_length(33, len, 4);
        let cw_energy: usize = (0..33)
            .map(|s| cw.encode(s).iter().filter(|&&b| b).count())
            .sum();
        let rc_energy: usize = (0..33)
            .map(|s| rc.encode(s).iter().filter(|&&b| b).count())
            .sum();
        assert!(
            cw_energy * 2 < rc_energy,
            "constant-weight {cw_energy} vs random {rc_energy}"
        );
    }

    #[test]
    fn support_overlap_is_small_for_sparse_codes() {
        let code = ConstantWeightCode::new(17, 96, 8, 5);
        // Random 8-of-96 supports rarely share more than a few positions.
        assert!(
            code.max_support_overlap() <= 4,
            "{}",
            code.max_support_overlap()
        );
    }

    #[test]
    fn packed_paths_match_bool_paths() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let code = ConstantWeightCode::new(17, 64, 7, 6);
        let mut rng = StdRng::seed_from_u64(0x9B);
        for sym in 0..17 {
            assert_eq!(code.encode_packed(sym).to_bools(), code.encode(sym));
            let mut w = code.encode(sym);
            for b in w.iter_mut() {
                if !*b && rng.gen_bool(0.2) {
                    *b = true;
                }
            }
            let packed = PackedBits::from_bools(&w);
            for metric in [BitMetric::Hamming, BitMetric::ZUp, BitMetric::ZDown] {
                assert_eq!(code.decode(&w, metric), code.decode_packed(&packed, metric));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ConstantWeightCode::new(9, 32, 5, 7);
        let b = ConstantWeightCode::new(9, 32, 5, 7);
        for s in 0..9 {
            assert_eq!(a.encode(s), b.encode(s));
        }
    }

    #[test]
    #[should_panic(expected = "weight must be in 1..len")]
    fn full_weight_rejected() {
        ConstantWeightCode::new(4, 8, 8, 0);
    }
}
