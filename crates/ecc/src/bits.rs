//! Packed bit-vectors and channel-aware distance metrics.
//!
//! Maximum-likelihood decoding compares a received word against every
//! codeword; packing bits into `u64` limbs makes each comparison a handful
//! of XOR/AND/popcount operations.

/// A fixed-length bit string packed into `u64` limbs (LSB-first within each
/// limb).
///
/// The derived ordering (lexicographic over the limbs, then the length) is
/// arbitrary but total and stable — exactly what the seeded code
/// constructors need for `BTreeSet` duplicate rejection.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PackedBits {
    limbs: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An empty bit string.
    pub fn new() -> Self {
        Self {
            limbs: Vec::new(),
            len: 0,
        }
    }

    /// Packs a bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut limbs = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                limbs[i / 64] |= 1u64 << (i % 64);
            }
        }
        Self {
            limbs,
            len: bits.len(),
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.limbs.push(0);
        }
        if bit {
            self.limbs[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Empties the bit string, retaining the limb allocation so a reused
    /// receive buffer (e.g. the owners-phase word accumulator) never
    /// reallocates.
    pub fn clear(&mut self) {
        self.limbs.clear();
        self.len = 0;
    }

    /// Unpacks into a bool vector.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bit string is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn weight(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch");
        self.limbs
            .iter()
            .zip(&other.limbs)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Number of positions where `self` is 1 and `other` is 0.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn ones_not_in(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch");
        self.limbs
            .iter()
            .zip(&other.limbs)
            .map(|(a, b)| (a & !b).count_ones())
            .sum()
    }
}

impl Default for PackedBits {
    fn default() -> Self {
        Self::new()
    }
}

/// Decoding metric matched to the channel that carried the codeword.
///
/// A single party transmits its codeword bit-by-bit over the beeping
/// channel while everyone else stays silent, so each bit crosses the
/// channel's noise regime directly:
///
/// * [`BitMetric::Hamming`] — symmetric flips (correlated / independent
///   noise): maximum likelihood = minimum Hamming distance;
/// * [`BitMetric::ZUp`] — one-sided `0→1` noise: a transmitted 1 is never
///   erased, so any codeword with a 1 where the received word has a 0 is
///   impossible; among possible codewords, minimize the spurious 1s;
/// * [`BitMetric::ZDown`] — one-sided `1→0` noise, the mirror image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitMetric {
    /// Symmetric bit flips.
    Hamming,
    /// Only `0→1` flips are possible on the channel.
    ZUp,
    /// Only `1→0` flips are possible on the channel.
    ZDown,
}

impl BitMetric {
    /// Decoding cost of explaining `received` given that `codeword` was
    /// sent; lower is more likely. Impossible explanations are penalized
    /// with a large (but finite) cost so decoding stays total even when the
    /// caller's channel assumption is violated.
    pub fn cost(&self, codeword: &PackedBits, received: &PackedBits) -> u64 {
        let impossible = (codeword.len() as u64) + 1;
        match self {
            BitMetric::Hamming => u64::from(codeword.hamming(received)),
            BitMetric::ZUp => {
                // codeword 1s missing from received are impossible;
                // received 1s not in codeword are noise.
                let erased = u64::from(codeword.ones_not_in(received));
                let spurious = u64::from(received.ones_not_in(codeword));
                erased * impossible + spurious
            }
            BitMetric::ZDown => {
                let created = u64::from(received.ones_not_in(codeword));
                let dropped = u64::from(codeword.ones_not_in(received));
                created * impossible + dropped
            }
        }
    }

    /// The metric appropriate for a noise regime described by its flips:
    /// `(zero_to_one, one_to_zero)`.
    pub fn for_flips(zero_to_one: bool, one_to_zero: bool) -> Self {
        match (zero_to_one, one_to_zero) {
            (true, false) => BitMetric::ZUp,
            (false, true) => BitMetric::ZDown,
            _ => BitMetric::Hamming,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(bits: &[u8]) -> PackedBits {
        PackedBits::from_bools(&bits.iter().map(|&b| b != 0).collect::<Vec<_>>())
    }

    #[test]
    fn roundtrip_across_limb_boundary() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let p = PackedBits::from_bools(&bits);
        assert_eq!(p.len(), 130);
        assert_eq!(p.to_bools(), bits);
        assert_eq!(p.weight() as usize, bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn push_matches_from_bools_and_clear_keeps_capacity() {
        let bits: Vec<bool> = (0..200).map(|i| i % 5 == 1 || i % 7 == 0).collect();
        let mut p = PackedBits::new();
        for &b in &bits {
            p.push(b);
        }
        assert_eq!(p, PackedBits::from_bools(&bits));
        p.clear();
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        // Refilling after clear reproduces the same packing (tail limbs
        // must not leak stale bits).
        for &b in &bits[..70] {
            p.push(b);
        }
        assert_eq!(p, PackedBits::from_bools(&bits[..70]));
    }

    #[test]
    fn ordering_is_total_and_consistent_with_equality() {
        let a = pb(&[1, 0, 1]);
        let b = pb(&[1, 0, 1]);
        let c = pb(&[0, 1, 1]);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&c), std::cmp::Ordering::Equal);
        let mut set = std::collections::BTreeSet::new();
        assert!(set.insert(a.clone()));
        assert!(!set.insert(b));
        assert!(set.insert(c));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn hamming_basics() {
        let a = pb(&[1, 0, 1, 1]);
        let b = pb(&[1, 1, 0, 1]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn ones_not_in_is_asymmetric() {
        let a = pb(&[1, 1, 0, 0]);
        let b = pb(&[1, 0, 1, 0]);
        assert_eq!(a.ones_not_in(&b), 1);
        assert_eq!(b.ones_not_in(&a), 1);
        let c = pb(&[1, 1, 1, 1]);
        assert_eq!(a.ones_not_in(&c), 0);
        assert_eq!(c.ones_not_in(&a), 2);
    }

    #[test]
    fn zup_prefers_covered_codewords() {
        // Received word covers cw1 but not cw2.
        let received = pb(&[1, 1, 1, 0]);
        let cw1 = pb(&[1, 0, 1, 0]); // covered: cost = 1 spurious one
        let cw2 = pb(&[1, 1, 1, 1]); // has a 1 erased: impossible under ZUp
        let m = BitMetric::ZUp;
        assert!(m.cost(&cw1, &received) < m.cost(&cw2, &received));
        // Even though cw2 is closer in Hamming distance... (both distance 1)
        assert_eq!(cw1.hamming(&received), 1);
        assert_eq!(cw2.hamming(&received), 1);
    }

    #[test]
    fn zdown_mirrors_zup() {
        let received = pb(&[1, 0, 0, 0]);
        let cw1 = pb(&[1, 1, 1, 0]); // 1s dropped: fine under ZDown, cost 2
        let cw2 = pb(&[0, 0, 0, 0]); // received 1 out of thin air: impossible
        let m = BitMetric::ZDown;
        assert!(m.cost(&cw1, &received) < m.cost(&cw2, &received));
    }

    #[test]
    fn for_flips_selects_metric() {
        assert_eq!(BitMetric::for_flips(true, false), BitMetric::ZUp);
        assert_eq!(BitMetric::for_flips(false, true), BitMetric::ZDown);
        assert_eq!(BitMetric::for_flips(true, true), BitMetric::Hamming);
        assert_eq!(BitMetric::for_flips(false, false), BitMetric::Hamming);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        pb(&[1]).hamming(&pb(&[1, 0]));
    }
}
