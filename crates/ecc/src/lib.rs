//! Error-correcting-code substrate for the `noisy-beeps` reproduction.
//!
//! Algorithm 1 of the paper (the *finding owners* phase) has each party in
//! turn transmit a codeword `C(j)` or `C(Next)` over the noisy beeping
//! channel, where `C : [n] ∪ {Next} → {0,1}^{Θ(log n)}` is a
//! "constant rate error correcting code" that all parties decode. This
//! crate builds that substrate from scratch:
//!
//! * [`gf`] — arithmetic in `GF(2^m)` via log/antilog tables;
//! * [`rs`] — Reed–Solomon codes over `GF(2^m)` with
//!   Berlekamp–Massey / Chien / Forney decoding;
//! * [`hadamard`] — the Walsh–Hadamard binary code (relative distance 1/2),
//!   used as the inner code of concatenations;
//! * [`repetition`] — bitwise repetition with (biased) majority decoding;
//! * [`mod@concat`] — concatenated RS ∘ Hadamard binary codes;
//! * [`random_code`] — seeded random codes with maximum-likelihood
//!   (nearest-codeword) decoding, the default for Algorithm 1;
//! * [`constant_weight`] — fixed-weight codes for energy-frugal beeping
//!   and the Z-channel;
//! * [`bits`] — packed bit-vectors and the channel-aware distance metrics.
//!
//! ## Why random codes are the default
//!
//! The paper fixes the noise rate at `ε = 1/3`. No binary code of more than
//! a few codewords has relative distance above 1/2 (Plotkin bound), so
//! *bounded-distance* decoding cannot tolerate a 1/3 expected fraction of
//! flipped bits. Maximum-likelihood decoding of random codes, however,
//! succeeds at any rate below the channel capacity `1 − h(1/3) ≈ 0.082`,
//! and the alphabets here are small (`q = O(n)` symbols), so brute-force
//! nearest-codeword decoding over packed 64-bit words is cheap. This is the
//! substitution documented in `DESIGN.md`. Over the one-sided `0→1` channel
//! the decoder switches to the Z-channel metric: codeword 1s can never have
//! been erased.
//!
//! # Examples
//!
//! ```
//! use beeps_ecc::{BitMetric, RandomCode, SymbolCode};
//!
//! // A code for 17 symbols with 6x length expansion.
//! let code = RandomCode::new(17, 6, 0xC0DE);
//! let word = code.encode(11);
//! assert_eq!(word.len(), code.codeword_len());
//! assert_eq!(code.decode(&word, BitMetric::Hamming), 11);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bits;
pub mod concat;
pub mod constant_weight;
pub mod gf;
pub mod hadamard;
pub mod random_code;
pub mod repetition;
pub mod rs;

pub use bits::BitMetric;
pub use concat::ConcatenatedCode;
pub use constant_weight::ConstantWeightCode;
pub use gf::GfField;
pub use hadamard::Hadamard;
pub use random_code::RandomCode;
pub use repetition::RepetitionCode;
pub use rs::{ReedSolomon, RsError};

/// A code over a finite symbol alphabet `0..alphabet_size`, mapping each
/// symbol to a binary codeword of fixed length — the interface Algorithm 1
/// consumes.
///
/// Decoders are total: they always return *some* symbol (maximum-likelihood
/// style), because the owners phase must make progress every iteration;
/// reliability is quantified by experiment E4 rather than signalled
/// per-call.
pub trait SymbolCode: std::fmt::Debug {
    /// Number of encodable symbols `q`.
    fn alphabet_size(&self) -> usize;

    /// Length of every codeword in bits.
    fn codeword_len(&self) -> usize;

    /// Encodes `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= self.alphabet_size()`.
    fn encode(&self, symbol: usize) -> Vec<bool>;

    /// Decodes `received` to the most likely symbol under `metric`.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != self.codeword_len()`.
    fn decode(&self, received: &[bool], metric: BitMetric) -> usize;

    /// Encodes `symbol` straight into packed form.
    ///
    /// Codes that store packed codewords internally (the random and
    /// constant-weight codes) override this to hand out a limb copy with
    /// no per-bit unpack/repack; the default round-trips through
    /// [`SymbolCode::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= self.alphabet_size()`.
    fn encode_packed(&self, symbol: usize) -> bits::PackedBits {
        bits::PackedBits::from_bools(&self.encode(symbol))
    }

    /// Decodes an already-packed received word — the hot-path form used
    /// by the owners phase, which accumulates heard bits packed and must
    /// not unpack them per decode.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != self.codeword_len()`.
    fn decode_packed(&self, received: &bits::PackedBits, metric: BitMetric) -> usize {
        self.decode(&received.to_bools(), metric)
    }
}
