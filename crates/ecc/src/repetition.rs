//! Bitwise repetition coding — the scheme behind footnote 1 of the paper
//! ("repeat every round `O(log n)` times and take the majority").

use crate::bits::{BitMetric, PackedBits};
use crate::SymbolCode;

/// A repetition code over a symbol alphabet: the symbol's binary
/// representation (`⌈log₂ q⌉` bits) is sent with every bit repeated `r`
/// times.
///
/// Decoding is maximum likelihood over all `q` codewords by default, with a
/// classic per-bit threshold-majority decoder also available
/// ([`RepetitionCode::decode_bitwise`]) for the experiments that study the
/// repetition scheme in isolation.
///
/// # Examples
///
/// ```
/// use beeps_ecc::{BitMetric, RepetitionCode, SymbolCode};
///
/// let code = RepetitionCode::new(10, 5);
/// assert_eq!(code.codeword_len(), 4 * 5); // ceil(log2 10) = 4 bits
/// let mut w = code.encode(7);
/// w[0] ^= true; // one flipped copy out of five
/// w[6] ^= true;
/// assert_eq!(code.decode(&w, BitMetric::Hamming), 7);
/// ```
#[derive(Debug, Clone)]
pub struct RepetitionCode {
    q: usize,
    bits: usize,
    r: usize,
    codewords: Vec<PackedBits>,
}

impl RepetitionCode {
    /// A code for `alphabet_size` symbols with `repetitions` copies of each
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet_size < 2` or `repetitions == 0`.
    pub fn new(alphabet_size: usize, repetitions: usize) -> Self {
        assert!(alphabet_size >= 2, "alphabet must have at least 2 symbols");
        assert!(repetitions > 0, "need at least one repetition");
        let bits = usize::BITS as usize - (alphabet_size - 1).leading_zeros() as usize;
        let bits = bits.max(1);
        let codewords = (0..alphabet_size)
            .map(|s| PackedBits::from_bools(&Self::expand(s, bits, repetitions)))
            .collect();
        Self {
            q: alphabet_size,
            bits,
            r: repetitions,
            codewords,
        }
    }

    /// Number of copies of each bit.
    pub fn repetitions(&self) -> usize {
        self.r
    }

    /// Bits in the unrepeated symbol representation.
    pub fn symbol_bits(&self) -> usize {
        self.bits
    }

    fn expand(symbol: usize, bits: usize, r: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(bits * r);
        for b in 0..bits {
            let bit = (symbol >> b) & 1 == 1;
            out.extend(std::iter::repeat_n(bit, r));
        }
        out
    }

    /// Per-bit threshold decoding: bit `b` decodes to 1 iff at least
    /// `ones_needed` of its `r` copies read 1. The classic majority decoder
    /// uses `ones_needed = r / 2 + 1`; one-sided `0→1` channels want a
    /// higher threshold (e.g. `⌈r · (1 + ε) / 2⌉`).
    ///
    /// Returns the decoded symbol, clamped into the alphabet by ML fallback
    /// if the raw bit pattern exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if `received.len()` differs from the codeword length or
    /// `ones_needed` is 0 or exceeds `r`.
    pub fn decode_bitwise(&self, received: &[bool], ones_needed: usize) -> usize {
        assert_eq!(received.len(), self.codeword_len(), "wrong word length");
        assert!(
            ones_needed >= 1 && ones_needed <= self.r,
            "threshold must be within 1..=r"
        );
        let mut symbol = 0usize;
        for b in 0..self.bits {
            let ones = received[b * self.r..(b + 1) * self.r]
                .iter()
                .filter(|&&x| x)
                .count();
            if ones >= ones_needed {
                symbol |= 1 << b;
            }
        }
        if symbol < self.q {
            symbol
        } else {
            // The bit pattern names no symbol; fall back to ML.
            self.decode(received, BitMetric::Hamming)
        }
    }
}

impl SymbolCode for RepetitionCode {
    fn alphabet_size(&self) -> usize {
        self.q
    }

    fn codeword_len(&self) -> usize {
        self.bits * self.r
    }

    fn encode(&self, symbol: usize) -> Vec<bool> {
        assert!(
            symbol < self.q,
            "symbol {symbol} outside alphabet of {}",
            self.q
        );
        self.codewords[symbol].to_bools()
    }

    fn decode(&self, received: &[bool], metric: BitMetric) -> usize {
        assert_eq!(received.len(), self.codeword_len(), "wrong word length");
        let packed = PackedBits::from_bools(received);
        let mut best = 0usize;
        let mut best_cost = u64::MAX;
        for (sym, cw) in self.codewords.iter().enumerate() {
            let cost = metric.cost(cw, &packed);
            if cost < best_cost {
                best_cost = cost;
                best = sym;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let code = RepetitionCode::new(33, 3);
        for s in 0..33 {
            let w = code.encode(s);
            assert_eq!(code.decode(&w, BitMetric::Hamming), s);
            assert_eq!(code.decode_bitwise(&w, 2), s);
        }
    }

    #[test]
    fn binary_alphabet_uses_one_bit() {
        let code = RepetitionCode::new(2, 7);
        assert_eq!(code.symbol_bits(), 1);
        assert_eq!(code.codeword_len(), 7);
    }

    #[test]
    fn majority_corrects_minority_flips() {
        let code = RepetitionCode::new(4, 5);
        let mut w = code.encode(2);
        w[0] ^= true; // 2 of 5 copies of bit 0 flipped
        w[1] ^= true;
        w[5] ^= true; // 1 of 5 copies of bit 1 flipped
        assert_eq!(code.decode_bitwise(&w, 3), 2);
        assert_eq!(code.decode(&w, BitMetric::Hamming), 2);
    }

    #[test]
    fn biased_threshold_resists_up_flips() {
        // One-sided up channel on a true 0 bit: 2 of 5 copies flip up.
        let code = RepetitionCode::new(2, 5);
        let mut w = code.encode(0);
        w[0] = true;
        w[1] = true;
        // Plain majority (3 of 5) survives here, but threshold 4 gives margin.
        assert_eq!(code.decode_bitwise(&w, 4), 0);
        assert_eq!(code.decode(&w, BitMetric::ZUp), 0);
    }

    #[test]
    fn bitwise_falls_back_to_ml_outside_alphabet() {
        // Alphabet of 3 symbols uses 2 bits; the pattern `11` is invalid.
        let code = RepetitionCode::new(3, 1);
        let w = vec![true, true];
        let s = code.decode_bitwise(&w, 1);
        assert!(s < 3, "fallback must return an in-alphabet symbol");
    }

    #[test]
    #[should_panic(expected = "at least 2 symbols")]
    fn tiny_alphabet_rejected() {
        RepetitionCode::new(1, 3);
    }

    #[test]
    #[should_panic(expected = "within 1..=r")]
    fn zero_threshold_rejected() {
        let code = RepetitionCode::new(4, 3);
        code.decode_bitwise(&vec![false; code.codeword_len()], 0);
    }
}
