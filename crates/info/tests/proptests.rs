//! Property-based tests for the information-theoretic substrate: the
//! textbook inequalities of Appendix B must hold for arbitrary
//! distributions.

use beeps_info::entropy::{binary_entropy, Distribution, JointDistribution};
use beeps_info::stats::{kl_divergence, total_variation};
use beeps_info::tail::{
    binomial_tail_ge, cutoff_rate_bsc, cutoff_rate_z, decode_error_at, random_code_length,
};
use proptest::prelude::*;

fn weights(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fact B.4: 0 <= H(X) <= log |Omega|.
    #[test]
    fn entropy_bounds(ws in (2usize..12).prop_flat_map(weights)) {
        let d = Distribution::from_weights(&ws).unwrap();
        prop_assert!(d.entropy() >= 0.0);
        prop_assert!(d.entropy() <= (ws.len() as f64).log2() + 1e-9);
    }

    /// Fact B.6 (subadditivity) and Fact B.5 (conditioning reduces
    /// entropy), for arbitrary joints.
    #[test]
    fn joint_entropy_inequalities(
        ws in (2usize..5).prop_flat_map(|nx| {
            (2usize..5).prop_flat_map(move |ny| {
                weights(nx * ny).prop_map(move |w| (nx, ny, w))
            })
        }),
    ) {
        let (nx, ny, w) = ws;
        let j = JointDistribution::from_weights(nx, ny, &w).unwrap();
        let hx = j.marginal_x().entropy();
        let hy = j.marginal_y().entropy();
        prop_assert!(j.joint_entropy() <= hx + hy + 1e-9);
        prop_assert!(j.conditional_entropy_x_given_y() <= hx + 1e-9);
        prop_assert!(j.mutual_information() >= -1e-12);
        prop_assert!(j.mutual_information() <= hx.min(hy) + 1e-9);
    }

    /// Binary entropy is concave-shaped: maximal at 1/2, symmetric.
    #[test]
    fn binary_entropy_shape(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
        prop_assert!(h <= binary_entropy(0.5) + 1e-12);
    }

    /// KL is non-negative (Gibbs) and TV is a metric-range quantity.
    #[test]
    fn divergences_behave(
        wp in (2usize..8).prop_flat_map(weights),
        scale in 0.5f64..2.0,
    ) {
        let p = Distribution::from_weights(&wp).unwrap();
        let wq: Vec<f64> = wp.iter().enumerate()
            .map(|(i, &w)| if i % 2 == 0 { w * scale } else { w })
            .collect();
        let q = Distribution::from_weights(&wq).unwrap();
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        let tv = total_variation(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv));
        // Pinsker (bits): KL >= 2 TV^2 / ln 2.
        prop_assert!(
            kl_divergence(&p, &q) + 1e-9 >= 2.0 * tv * tv / std::f64::consts::LN_2
        );
    }

    /// Binomial tails are monotone in k (down) and p (up).
    #[test]
    fn binomial_tail_monotonicity(n in 1u64..60, p in 0.05f64..0.95, k in 0u64..60) {
        let k = k.min(n);
        let t = binomial_tail_ge(n, p, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
        if k < n {
            prop_assert!(binomial_tail_ge(n, p, k + 1) <= t + 1e-12);
        }
        let p2 = (p + 0.04).min(0.99);
        prop_assert!(binomial_tail_ge(n, p2, k) + 1e-12 >= t);
    }

    /// Decode error decreases with more repetitions (odd counts, majority).
    #[test]
    fn decode_error_improves_with_r(eps in 0.01f64..0.45, r in 1u64..40) {
        let e1 = decode_error_at(eps, 0.5, 2 * r - 1);
        let e2 = decode_error_at(eps, 0.5, 2 * r + 1);
        prop_assert!(e2 <= e1 + 1e-12, "r {} -> {}: {e1} -> {e2}", 2*r-1, 2*r+1);
    }

    /// Cutoff rates: in (0, 1], Z dominates BSC, both shrink with eps.
    #[test]
    fn cutoff_rate_ordering(eps in 0.01f64..0.49) {
        let bsc = cutoff_rate_bsc(eps);
        let z = cutoff_rate_z(eps);
        prop_assert!(bsc > 0.0 && bsc <= 1.0);
        prop_assert!(z > bsc);
        prop_assert!(cutoff_rate_bsc(eps / 2.0) > bsc);
    }

    /// Sized code lengths are monotone in q and in 1/target.
    #[test]
    fn code_length_monotonicity(q in 2usize..512, expo in 1i32..12) {
        let r0 = cutoff_rate_bsc(0.2);
        let target = 10f64.powi(-expo);
        let len = random_code_length(q, r0, target);
        prop_assert!(len >= 1);
        prop_assert!(random_code_length(q * 2, r0, target) >= len);
        prop_assert!(random_code_length(q, r0, target / 10.0) >= len);
    }
}
