//! Statistical comparison tools for the channel-equivalence experiments.
//!
//! Experiment E6 claims the A.1.2 reduction channel is *distributionally*
//! equal to a native `ε = 1/4` channel; eyeballing flip rates is not a
//! test. This module provides Pearson's chi-square homogeneity statistic
//! (with a conservative threshold table), KL divergence, and total
//! variation distance over finite distributions.

use crate::entropy::Distribution;

/// Kullback–Leibler divergence `D(P ‖ Q)` in bits.
///
/// Returns `f64::INFINITY` when `P` puts mass where `Q` has none.
///
/// # Panics
///
/// Panics if the distributions have different support sizes.
///
/// # Examples
///
/// ```
/// use beeps_info::entropy::Distribution;
/// use beeps_info::stats::kl_divergence;
///
/// let p = Distribution::from_weights(&[1.0, 1.0]).unwrap();
/// let q = Distribution::from_weights(&[3.0, 1.0]).unwrap();
/// assert!(kl_divergence(&p, &p) < 1e-12);
/// assert!(kl_divergence(&p, &q) > 0.0);
/// ```
pub fn kl_divergence(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.len(), q.len(), "support size mismatch");
    let mut total = 0.0;
    for i in 0..p.len() {
        let pi = p.prob(i);
        if pi == 0.0 {
            continue;
        }
        let qi = q.prob(i);
        if qi == 0.0 {
            return f64::INFINITY;
        }
        total += pi * (pi / qi).log2();
    }
    total.max(0.0)
}

/// Total variation distance `½ Σ |p_i − q_i|`.
///
/// # Panics
///
/// Panics if the distributions have different support sizes.
pub fn total_variation(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.len(), q.len(), "support size mismatch");
    0.5 * (0..p.len())
        .map(|i| (p.prob(i) - q.prob(i)).abs())
        .sum::<f64>()
}

/// Result of a chi-square two-sample homogeneity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The Pearson statistic.
    pub statistic: f64,
    /// Degrees of freedom (`categories − 1`).
    pub dof: usize,
    /// Whether the statistic stays below the 99.9% quantile of the
    /// chi-square distribution with `dof` degrees of freedom — i.e., the
    /// samples are *consistent* with a common distribution.
    pub consistent_at_999: bool,
}

/// Pearson chi-square homogeneity test for two count vectors over the
/// same categories: are both samples drawn from one distribution?
///
/// Categories where both samples have zero counts are ignored. The
/// 99.9% threshold is exact for small `dof` (table) and approximated by
/// the Wilson–Hilferty transform beyond it.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or a sample has zero
/// total count.
///
/// # Examples
///
/// ```
/// use beeps_info::stats::chi_square_homogeneity;
///
/// // Same coin, two samples.
/// let r = chi_square_homogeneity(&[4980, 5020], &[5051, 4949]);
/// assert!(r.consistent_at_999);
/// // A fair coin vs a 2:1 coin.
/// let r = chi_square_homogeneity(&[5000, 5000], &[6667, 3333]);
/// assert!(!r.consistent_at_999);
/// ```
pub fn chi_square_homogeneity(a: &[u64], b: &[u64]) -> ChiSquare {
    assert_eq!(a.len(), b.len(), "category count mismatch");
    assert!(!a.is_empty(), "need at least one category");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "each sample needs observations");
    let na_f = na as f64;
    let nb_f = nb as f64;
    let total = na_f + nb_f;

    let mut statistic = 0.0;
    let mut used = 0usize;
    for i in 0..a.len() {
        let row = a[i] as f64 + b[i] as f64;
        if row == 0.0 {
            continue;
        }
        used += 1;
        let ea = row * na_f / total;
        let eb = row * nb_f / total;
        statistic += (a[i] as f64 - ea).powi(2) / ea;
        statistic += (b[i] as f64 - eb).powi(2) / eb;
    }
    let dof = used.saturating_sub(1).max(1);
    ChiSquare {
        statistic,
        dof,
        consistent_at_999: statistic <= chi_square_quantile_999(dof),
    }
}

/// 99.9% quantile of the chi-square distribution with `dof` degrees of
/// freedom.
fn chi_square_quantile_999(dof: usize) -> f64 {
    // Exact values for the small dof the experiments use.
    const TABLE: [f64; 10] = [
        10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124, 27.877, 29.588,
    ];
    if dof <= TABLE.len() {
        return TABLE[dof - 1];
    }
    // Wilson–Hilferty: chi2_q(k) ~= k (1 - 2/(9k) + z sqrt(2/(9k)))^3,
    // z_{0.999} = 3.0902.
    let k = dof as f64;
    let z = 3.0902;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t.powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn kl_zero_iff_equal() {
        let p = Distribution::from_weights(&[0.2, 0.3, 0.5]).unwrap();
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let q = Distribution::from_weights(&[0.5, 0.3, 0.2]).unwrap();
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_infinite_on_support_mismatch() {
        let p = Distribution::from_weights(&[0.5, 0.5]).unwrap();
        let q = Distribution::from_weights(&[1.0, 0.0]).unwrap();
        assert_eq!(kl_divergence(&p, &q), f64::INFINITY);
        // ...but not the other way around.
        assert!(kl_divergence(&q, &p).is_finite());
    }

    #[test]
    fn tv_distance_bounds() {
        let p = Distribution::from_weights(&[1.0, 0.0]).unwrap();
        let q = Distribution::from_weights(&[0.0, 1.0]).unwrap();
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn chi_square_accepts_same_source() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut accepted = 0;
        for _ in 0..20 {
            let mut a = [0u64; 4];
            let mut b = [0u64; 4];
            for _ in 0..10_000 {
                a[rng.gen_range(0..4)] += 1;
                b[rng.gen_range(0..4)] += 1;
            }
            if chi_square_homogeneity(&a, &b).consistent_at_999 {
                accepted += 1;
            }
        }
        // At the 99.9% level essentially all same-source pairs pass.
        assert!(accepted >= 19, "only {accepted}/20 accepted");
    }

    #[test]
    fn chi_square_rejects_different_sources() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = [0u64; 2];
        let mut b = [0u64; 2];
        for _ in 0..20_000 {
            a[usize::from(rng.gen_bool(0.50))] += 1;
            b[usize::from(rng.gen_bool(0.55))] += 1;
        }
        let r = chi_square_homogeneity(&a, &b);
        assert!(!r.consistent_at_999, "statistic {}", r.statistic);
    }

    #[test]
    fn chi_square_ignores_empty_categories() {
        let r = chi_square_homogeneity(&[100, 100, 0], &[110, 90, 0]);
        assert_eq!(r.dof, 1);
    }

    #[test]
    fn quantile_table_monotone_and_continuous() {
        let mut prev = 0.0;
        for dof in 1..=20 {
            let q = chi_square_quantile_999(dof);
            assert!(q > prev, "quantile must grow with dof");
            prev = q;
        }
        // Wilson-Hilferty continuation is close to the last table entry.
        let table_10 = chi_square_quantile_999(10);
        let approx_11 = chi_square_quantile_999(11);
        assert!(approx_11 > table_10 && approx_11 < table_10 + 4.0);
    }

    #[test]
    #[should_panic(expected = "category count mismatch")]
    fn chi_square_length_mismatch_panics() {
        chi_square_homogeneity(&[1], &[1, 2]);
    }
}
