//! Lemmas B.7 and B.8 of the paper, as executable functions.
//!
//! * [`cauchy_schwarz_ratio`] computes both sides of Lemma B.7:
//!   `(Σ a_i)² / (Σ b_i) ≤ Σ a_i² / b_i` for positive sequences. The
//!   lower-bound proof (Theorem C.3) uses it to pass from a sum of `ζ`
//!   values to a ratio of aggregated probabilities.
//! * [`unique_indices`] and [`lemma_b8_bound`] implement Lemma B.8: among
//!   `k` i.i.d. uniform samples from a set of size `|S|`, the number of
//!   *unique* samples is at least `k/3` except with probability
//!   `(3/2)(1 − e^{−k/|S|})`. The set `G_1(x)` of players with unique
//!   inputs (subsection C.2) is exactly this quantity.

/// Both sides of Lemma B.7 for positive sequences `a`, `b`:
/// returns `(lhs, rhs)` where `lhs = (Σ a)² / Σ b` and `rhs = Σ a²/b`.
///
/// # Examples
///
/// ```
/// use beeps_info::lemmas::cauchy_schwarz_ratio;
/// let (lhs, rhs) = cauchy_schwarz_ratio(&[1.0, 2.0], &[1.0, 1.0]).unwrap();
/// assert!(lhs <= rhs + 1e-12);
/// ```
///
/// # Errors
///
/// Returns `Err` with a description if the slices are empty, have different
/// lengths, or contain non-positive or non-finite entries.
pub fn cauchy_schwarz_ratio(a: &[f64], b: &[f64]) -> Result<(f64, f64), String> {
    if a.is_empty() || a.len() != b.len() {
        return Err(format!(
            "need equal-length non-empty slices, got {} and {}",
            a.len(),
            b.len()
        ));
    }
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if !(x.is_finite() && y.is_finite() && x > 0.0 && y > 0.0) {
            return Err(format!(
                "entries must be positive and finite, bad pair at {i}"
            ));
        }
    }
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    let lhs = sa * sa / sb;
    let rhs: f64 = a.iter().zip(b).map(|(&x, &y)| x * x / y).sum();
    Ok((lhs, rhs))
}

/// Indices `i` such that `samples[i]` occurs exactly once in `samples`
/// — the set `I` of Lemma B.8 and the set `G_1(x)` of unique-input players
/// in subsection C.2 of the paper.
///
/// # Examples
///
/// ```
/// use beeps_info::lemmas::unique_indices;
/// assert_eq!(unique_indices(&[3, 1, 3, 7]), vec![1, 3]);
/// ```
pub fn unique_indices(samples: &[usize]) -> Vec<usize> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for &s in samples {
        *counts.entry(s).or_insert(0) += 1;
    }
    samples
        .iter()
        .enumerate()
        .filter(|(_, s)| counts[s] == 1)
        .map(|(i, _)| i)
        .collect()
}

/// The Lemma B.8 bound: `Pr[|I| <= k/3] <= (3/2)(1 − e^{−k/|S|})` for `k`
/// uniform samples from a set of size `set_size`.
///
/// # Panics
///
/// Panics if `k == 0`, `set_size == 0`, or `k >= set_size` (the lemma's
/// hypothesis is `k < |S|`).
pub fn lemma_b8_bound(k: u64, set_size: u64) -> f64 {
    assert!(k > 0 && set_size > 0, "k and |S| must be positive");
    assert!(k < set_size, "Lemma B.8 requires k < |S|");
    1.5 * (1.0 - (-(k as f64) / set_size as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn lemma_b7_simple_cases() {
        let (lhs, rhs) = cauchy_schwarz_ratio(&[1.0], &[2.0]).unwrap();
        assert!((lhs - 0.5).abs() < 1e-12);
        assert!((rhs - 0.5).abs() < 1e-12);

        // Equality holds iff a_i / b_i is constant.
        let (lhs, rhs) = cauchy_schwarz_ratio(&[2.0, 4.0], &[1.0, 2.0]).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);

        // Strict inequality otherwise.
        let (lhs, rhs) = cauchy_schwarz_ratio(&[1.0, 4.0], &[1.0, 1.0]).unwrap();
        assert!(lhs < rhs);
    }

    #[test]
    fn lemma_b7_rejects_bad_input() {
        assert!(cauchy_schwarz_ratio(&[], &[]).is_err());
        assert!(cauchy_schwarz_ratio(&[1.0], &[1.0, 2.0]).is_err());
        assert!(cauchy_schwarz_ratio(&[0.0], &[1.0]).is_err());
        assert!(cauchy_schwarz_ratio(&[1.0], &[-1.0]).is_err());
        assert!(cauchy_schwarz_ratio(&[f64::INFINITY], &[1.0]).is_err());
    }

    #[test]
    fn lemma_b7_holds_on_random_sequences() {
        let mut rng = StdRng::seed_from_u64(0xB7);
        for _ in 0..200 {
            let len = rng.gen_range(1..20);
            let a: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01..10.0)).collect();
            let b: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01..10.0)).collect();
            let (lhs, rhs) = cauchy_schwarz_ratio(&a, &b).unwrap();
            assert!(
                lhs <= rhs * (1.0 + 1e-12),
                "Lemma B.7 violated: {lhs} > {rhs}"
            );
        }
    }

    #[test]
    fn unique_indices_edge_cases() {
        assert_eq!(unique_indices(&[]), Vec::<usize>::new());
        assert_eq!(unique_indices(&[5]), vec![0]);
        assert_eq!(unique_indices(&[5, 5]), Vec::<usize>::new());
        assert_eq!(unique_indices(&[1, 2, 3]), vec![0, 1, 2]);
    }

    #[test]
    fn lemma_b8_empirically_valid() {
        // n parties sample uniformly from [2n] (the InputSet distribution):
        // check Pr[|I| <= k/3] against the bound by Monte Carlo.
        let mut rng = StdRng::seed_from_u64(0xB8);
        for &k in &[8usize, 16, 64] {
            let set_size = 2 * k;
            let trials = 2_000;
            let mut bad = 0u32;
            for _ in 0..trials {
                let samples: Vec<usize> = (0..k).map(|_| rng.gen_range(0..set_size)).collect();
                if unique_indices(&samples).len() * 3 <= k {
                    bad += 1;
                }
            }
            let freq = f64::from(bad) / f64::from(trials);
            let bound = lemma_b8_bound(k as u64, set_size as u64);
            assert!(
                freq <= bound + 0.02,
                "k={k}: empirical {freq} exceeds Lemma B.8 bound {bound}"
            );
        }
    }

    #[test]
    fn lemma_b8_bound_range() {
        // For k = |S|/2 the bound is (3/2)(1 - e^{-1/2}) ≈ 0.59.
        let b = lemma_b8_bound(10, 20);
        assert!(b > 0.58 && b < 0.60);
    }

    #[test]
    #[should_panic(expected = "k < |S|")]
    fn lemma_b8_requires_small_k() {
        lemma_b8_bound(20, 20);
    }
}
