//! Binomial tails and Chernoff/Hoeffding bounds.
//!
//! The simulation schemes of `beeps-core` repeat every beep `r` times and
//! decode by (possibly biased) majority. The proofs of Theorem 1.2 and
//! Theorem D.1 need per-step failure probabilities that are polynomially
//! small in `n`; this module provides both the *exact* binomial tails (used
//! in tests and experiments) and the closed-form bounds (used to pick `r`
//! at runtime without iterating).

/// Exact probability that `Binomial(n, p) >= k`.
///
/// Computed by summing the PMF with a numerically stable multiplicative
/// recurrence; exact enough for the `n <= 10^4` range used here.
///
/// # Examples
///
/// ```
/// use beeps_info::tail::binomial_tail_ge;
/// // A fair coin lands heads at least 0 times with certainty.
/// assert_eq!(binomial_tail_ge(10, 0.5, 0), 1.0);
/// // P[X >= 6] + P[X <= 5] = 1.
/// let hi = binomial_tail_ge(10, 0.5, 6);
/// let lo = beeps_info::tail::binomial_tail_le(10, 0.5, 5);
/// assert!((hi + lo - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_tail_ge(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    // Sum PMF terms from k..=n. Start from the log-PMF at k to avoid
    // underflow, then use the recurrence
    //   pmf(i+1) = pmf(i) * (n - i) / (i + 1) * p / (1 - p).
    let log_pmf_k = log_binomial_pmf(n, p, k);
    let mut term = log_pmf_k.exp();
    let mut sum = term;
    let odds = p / (1.0 - p);
    for i in k..n {
        term *= (n - i) as f64 / (i + 1) as f64 * odds;
        sum += term;
        if term < 1e-320 {
            break;
        }
    }
    sum.min(1.0)
}

/// Exact probability that `Binomial(n, p) <= k`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_tail_le(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 1.0;
    }
    1.0 - binomial_tail_ge(n, p, k + 1)
}

/// Natural log of the binomial PMF at `k`, via `ln_gamma`.
fn log_binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    debug_assert!(k <= n);
    let n_f = n as f64;
    let k_f = k as f64;
    ln_choose(n, k) + k_f * p.ln() + (n_f - k_f) * (1.0 - p).ln()
}

/// Natural log of `n choose k` using Stirling-free `ln_gamma` (Lanczos).
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`; absolute error below
/// `1e-10` on the range used here.
fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0);
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Hoeffding bound: `P[X - np >= t*n] <= exp(-2 t^2 n)` for
/// `X ~ Binomial(n, p)`.
///
/// # Examples
///
/// ```
/// use beeps_info::tail::hoeffding_tail;
/// let bound = hoeffding_tail(100, 0.1);
/// assert!(bound < 0.14);
/// ```
///
/// # Panics
///
/// Panics if `t` is negative.
pub fn hoeffding_tail(n: u64, t: f64) -> f64 {
    assert!(t >= 0.0, "deviation must be non-negative, got {t}");
    (-2.0 * t * t * n as f64).exp()
}

/// Smallest repetition count `r` such that a biased-majority decode of `r`
/// independent ε-noisy copies errs with probability at most `target`.
///
/// The decode rule declares 1 when at least `ceil(threshold * r)` copies
/// read 1. For the symmetric two-sided channel use `threshold = 0.5`; for
/// the one-sided `0→1` channel (where a true 1 is never corrupted) any
/// `threshold` strictly between ε and 1 works, and the caller picks the
/// midpoint `(1 + ε) / 2`.
///
/// Returns the exact smallest `r` by scanning with the exact binomial tail;
/// `r` is capped at `4096` which is far beyond anything the experiments
/// need (the cap is asserted in debug builds).
///
/// # Examples
///
/// ```
/// use beeps_info::tail::repetitions_for_error;
/// // Decoding a bit across an epsilon = 1/3 two-sided channel to 1e-3.
/// let r = repetitions_for_error(1.0 / 3.0, 0.5, 1e-3);
/// assert!(r >= 10 && r < 200);
/// ```
///
/// # Panics
///
/// Panics if `eps` is not in `[0, 0.5]` for `threshold == 0.5`, if
/// `threshold` is not in `(eps, 1)`, or if `target` is not in `(0, 1)`.
pub fn repetitions_for_error(eps: f64, threshold: f64, target: f64) -> u64 {
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    assert!(
        threshold > eps && threshold < 1.0,
        "threshold must be in (eps, 1), got {threshold} with eps {eps}"
    );
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    if eps == 0.0 {
        return 1;
    }
    for r in 1..=4096u64 {
        if decode_error_at(eps, threshold, r) <= target {
            return r;
        }
    }
    debug_assert!(false, "repetition count exceeded cap for target {target}");
    4096
}

/// Smallest repetition count `r` such that a threshold decode of `r` copies
/// sent over the one-sided `0→1` channel (a Z-channel: true 1s are never
/// corrupted) errs with probability at most `target`.
///
/// Only a true 0 can be misread, so unlike [`repetitions_for_error`] the
/// threshold may sit anywhere in `(eps, 1]`-exclusive, and convergence is
/// guaranteed for every `eps < threshold`.
///
/// # Examples
///
/// ```
/// use beeps_info::tail::{decode_error_one_sided_up, repetitions_for_error_one_sided};
/// let eps = 1.0 / 3.0;
/// let thr = (1.0 + eps) / 2.0;
/// let r = repetitions_for_error_one_sided(eps, thr, 1e-6);
/// assert!(decode_error_one_sided_up(eps, thr, r) <= 1e-6);
/// ```
///
/// # Panics
///
/// Panics under the same conditions as [`repetitions_for_error`].
pub fn repetitions_for_error_one_sided(eps: f64, threshold: f64, target: f64) -> u64 {
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    assert!(
        threshold > eps && threshold < 1.0,
        "threshold must be in (eps, 1), got {threshold} with eps {eps}"
    );
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    if eps == 0.0 {
        return 1;
    }
    for r in 1..=4096u64 {
        if decode_error_one_sided_up(eps, threshold, r) <= target {
            return r;
        }
    }
    debug_assert!(false, "repetition count exceeded cap for target {target}");
    4096
}

/// Probability that a biased-majority decode of `r` copies errs, in the
/// worst case over the transmitted bit, for a channel that flips each copy
/// independently with probability `eps`.
///
/// A true 0 is misread when at least `ceil(threshold * r)` copies flip to 1;
/// a true 1 is misread when fewer than that many copies stay 1 (i.e. more
/// than `r - k` of them flip). The function returns the max of the two.
pub fn decode_error_at(eps: f64, threshold: f64, r: u64) -> f64 {
    let k = (threshold * r as f64).ceil() as u64;
    let k = k.clamp(1, r);
    // True 0: each copy reads 1 w.p. eps; error iff #ones >= k.
    let err0 = binomial_tail_ge(r, eps, k);
    // True 1: each copy reads 0 w.p. eps; error iff #ones <= k - 1,
    // i.e. #zeros >= r - k + 1.
    let err1 = binomial_tail_ge(r, eps, r - k + 1);
    err0.max(err1)
}

/// Probability that a biased-majority decode of `r` copies errs over the
/// one-sided `0→1` channel: a true 1 is never corrupted, so only a true 0
/// can be misread (when ≥ `ceil(threshold * r)` copies flip up).
pub fn decode_error_one_sided_up(eps: f64, threshold: f64, r: u64) -> f64 {
    let k = ((threshold * r as f64).ceil() as u64).clamp(1, r);
    binomial_tail_ge(r, eps, k)
}

/// Cutoff rate `R₀ = 1 − log₂(1 + 2√(ε(1−ε)))` of the binary symmetric
/// channel — the exponent of the random-coding union bound
/// `P_err ≤ q · 2^{−len·R₀}` for maximum-likelihood decoding of a random
/// code with `q` codewords.
///
/// `beeps-core` uses this to size the Algorithm 1 codewords: the bound is
/// loose but safe, and (crucially) positive for every `ε < 1/2`, unlike
/// bounded-distance decoding which dies at `ε = 1/4` (see the `beeps-ecc`
/// crate docs).
///
/// # Panics
///
/// Panics unless `0 ≤ ε < 0.5`.
pub fn cutoff_rate_bsc(eps: f64) -> f64 {
    assert!(
        (0.0..0.5).contains(&eps),
        "BSC cutoff rate needs eps in [0, 0.5)"
    );
    1.0 - (1.0 + 2.0 * (eps * (1.0 - eps)).sqrt()).log2()
}

/// Cutoff rate `R₀ = 1 − log₂(1 + √ε)` of the Z-channel with crossover
/// `ε` (only `0→1` flips) — via the Bhattacharyya parameter `√ε`.
///
/// # Panics
///
/// Panics unless `0 ≤ ε < 1`.
pub fn cutoff_rate_z(eps: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&eps),
        "Z cutoff rate needs eps in [0, 1)"
    );
    1.0 - (1.0 + eps.sqrt()).log2()
}

/// Codeword length for which the random-coding union bound
/// `q · 2^{−len·r0}` drops below `target`, given a channel cutoff rate
/// `r0`.
///
/// # Panics
///
/// Panics if `q < 2`, `r0 <= 0`, or `target` is not in `(0, 1)`.
pub fn random_code_length(q: usize, r0: f64, target: f64) -> usize {
    assert!(q >= 2, "need at least two codewords");
    assert!(r0 > 0.0, "cutoff rate must be positive");
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let needed = ((q as f64).log2() + (1.0 / target).log2()) / r0;
    needed.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force binomial tail by full PMF enumeration with f64 binomials.
    fn naive_tail_ge(n: u64, p: f64, k: u64) -> f64 {
        let mut total = 0.0;
        for i in k..=n {
            let mut c = 1.0;
            for j in 0..i {
                c = c * (n - j) as f64 / (j + 1) as f64;
            }
            total += c * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
        }
        total
    }

    #[test]
    fn tail_matches_naive_enumeration() {
        for &(n, p) in &[
            (1u64, 0.3f64),
            (5, 0.5),
            (10, 0.1),
            (20, 0.9),
            (30, 1.0 / 3.0),
        ] {
            for k in 0..=n {
                let fast = binomial_tail_ge(n, p, k);
                let slow = naive_tail_ge(n, p, k);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "tail mismatch at n={n} p={p} k={k}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(binomial_tail_ge(10, 0.5, 0), 1.0);
        assert_eq!(binomial_tail_ge(10, 0.5, 11), 0.0);
        assert_eq!(binomial_tail_ge(10, 0.0, 1), 0.0);
        assert_eq!(binomial_tail_ge(10, 1.0, 10), 1.0);
        assert_eq!(binomial_tail_le(10, 0.5, 10), 1.0);
    }

    #[test]
    fn tail_is_monotone_in_k() {
        let n = 50;
        let p = 1.0 / 3.0;
        let mut prev = 1.0;
        for k in 0..=n {
            let t = binomial_tail_ge(n, p, k);
            assert!(t <= prev + 1e-12, "tail must decrease in k");
            prev = t;
        }
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1u64..=20 {
            fact *= n as f64;
            assert!(
                (ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-8,
                "ln_gamma({}) should be ln({n}!)",
                n + 1
            );
        }
    }

    #[test]
    fn hoeffding_dominates_exact_tail() {
        // Chernoff-Hoeffding is an upper bound on the deviation probability.
        let n = 200u64;
        let p = 1.0 / 3.0;
        for t10 in 1..=5u32 {
            let t = t10 as f64 / 10.0;
            let k = ((p + t) * n as f64).ceil() as u64;
            if k > n {
                continue;
            }
            let exact = binomial_tail_ge(n, p, k);
            let bound = hoeffding_tail(n, t);
            assert!(
                exact <= bound + 1e-12,
                "t={t}: exact {exact} > bound {bound}"
            );
        }
    }

    #[test]
    fn repetitions_hit_target() {
        for &target in &[1e-2, 1e-4, 1e-8] {
            let r = repetitions_for_error(1.0 / 3.0, 0.5, target);
            assert!(decode_error_at(1.0 / 3.0, 0.5, r) <= target);
            if r > 1 {
                assert!(
                    decode_error_at(1.0 / 3.0, 0.5, r - 1) > target,
                    "r should be minimal"
                );
            }
        }
    }

    #[test]
    fn repetitions_scale_logarithmically() {
        // Doubling the exponent of the target should roughly double r:
        // the defining property of the O(log n) repetition scheme.
        let r1 = repetitions_for_error(1.0 / 3.0, 0.5, 1e-3);
        let r2 = repetitions_for_error(1.0 / 3.0, 0.5, 1e-6);
        let r4 = repetitions_for_error(1.0 / 3.0, 0.5, 1e-12);
        assert!(r2 > r1 && r4 > r2);
        let ratio = (r4 - r2) as f64 / (r2 - r1) as f64;
        assert!(
            ratio > 0.5 && ratio < 2.5,
            "growth should be ~linear in log(1/target)"
        );
    }

    #[test]
    fn one_sided_threshold_allows_higher_noise() {
        // With one-sided 0->1 noise at eps=1/3 and threshold (1+eps)/2,
        // a true 1 is never misread; only the 0-error matters.
        let eps = 1.0 / 3.0;
        let thr = (1.0 + eps) / 2.0;
        let r = repetitions_for_error_one_sided(eps, thr, 1e-6);
        assert!(decode_error_one_sided_up(eps, thr, r) <= 1e-6);
        // The one-sided decode needs no more repetitions than the symmetric
        // majority decode at the same noise level.
        let r_two_sided = repetitions_for_error(eps, 0.5, 1e-6);
        assert!(r <= r_two_sided);
    }

    #[test]
    fn zero_noise_needs_one_repetition() {
        assert_eq!(repetitions_for_error(0.0, 0.5, 1e-9), 1);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_below_eps_rejected() {
        repetitions_for_error(0.4, 0.3, 1e-3);
    }

    #[test]
    fn cutoff_rates_sane() {
        // Noiseless channels have rate 1.
        assert!((cutoff_rate_bsc(0.0) - 1.0).abs() < 1e-12);
        assert!((cutoff_rate_z(0.0) - 1.0).abs() < 1e-12);
        // The Z-channel is strictly friendlier at the same eps.
        for eps in [0.05, 0.1, 1.0 / 3.0, 0.45] {
            assert!(cutoff_rate_z(eps) > cutoff_rate_bsc(eps));
            assert!(cutoff_rate_bsc(eps) > 0.0);
        }
        // Monotone decreasing in eps.
        assert!(cutoff_rate_bsc(0.1) > cutoff_rate_bsc(0.3));
    }

    #[test]
    fn random_code_length_scales_logarithmically() {
        let r0 = cutoff_rate_bsc(0.1);
        let l1 = random_code_length(16, r0, 1e-3);
        let l2 = random_code_length(256, r0, 1e-3);
        // Quadrupling log q adds (not multiplies) length.
        assert!(l2 > l1 && l2 < 3 * l1);
        // Tighter target means longer code.
        assert!(random_code_length(16, r0, 1e-9) > l1);
    }

    #[test]
    #[should_panic(expected = "cutoff rate must be positive")]
    fn random_code_length_rejects_dead_channel() {
        random_code_length(4, 0.0, 0.1);
    }
}
