//! Entropy, conditional entropy, and mutual information
//! (Definitions B.1–B.3 of the paper).
//!
//! All logarithms are to base 2, matching the paper's convention
//! (subsection B.1). Distributions are finite and explicit; the
//! lower-bound experiments in `beeps-lowerbound` build them from either
//! exact probability computations or empirical counts.

use std::fmt;

/// Error returned when constructing a [`Distribution`] from invalid weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributionError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero, so the distribution cannot be normalized.
    ZeroMass,
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::Empty => write!(f, "weight slice was empty"),
            DistributionError::InvalidWeight { index } => {
                write!(f, "weight at index {index} was negative or non-finite")
            }
            DistributionError::ZeroMass => write!(f, "all weights were zero"),
        }
    }
}

impl std::error::Error for DistributionError {}

/// A finite discrete probability distribution over `0..len`.
///
/// # Examples
///
/// ```
/// use beeps_info::entropy::Distribution;
///
/// let d = Distribution::from_weights(&[3.0, 1.0]).unwrap();
/// assert!((d.prob(0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    probs: Vec<f64>,
}

impl Distribution {
    /// Builds a distribution by normalizing non-negative `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if `weights` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, DistributionError> {
        if weights.is_empty() {
            return Err(DistributionError::Empty);
        }
        for (index, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(DistributionError::InvalidWeight { index });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistributionError::ZeroMass);
        }
        Ok(Self {
            probs: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// Builds the uniform distribution over a support of size `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn uniform(len: usize) -> Self {
        assert!(len > 0, "uniform distribution needs non-empty support");
        Self {
            probs: vec![1.0 / len as f64; len],
        }
    }

    /// Builds an empirical distribution from occurrence counts.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::ZeroMass`] when every count is zero and
    /// [`DistributionError::Empty`] when `counts` is empty.
    pub fn from_counts(counts: &[u64]) -> Result<Self, DistributionError> {
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_weights(&weights)
    }

    /// Number of outcomes (including zero-probability ones).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the support vector is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of outcome `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The probabilities as a slice.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Shannon entropy `H(X) = Σ p log(1/p)` in bits (Definition B.1).
    ///
    /// Zero-probability outcomes contribute nothing, following the usual
    /// `0 log 0 = 0` convention.
    pub fn entropy(&self) -> f64 {
        entropy_of(&self.probs)
    }

    /// Support size: the number of outcomes with strictly positive mass.
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|&&p| p > 0.0).count()
    }
}

/// Entropy (bits) of an unnormalized-but-assumed-normalized probability
/// slice; shared by [`Distribution`] and [`JointDistribution`].
fn entropy_of(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// The binary entropy function `h(p) = -p log p - (1-p) log (1-p)`.
///
/// # Examples
///
/// ```
/// use beeps_info::entropy::binary_entropy;
/// assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
/// assert_eq!(binary_entropy(0.0), 0.0);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// A joint distribution over pairs `(x, y)` with `x in 0..nx`, `y in 0..ny`,
/// stored densely in row-major order.
///
/// Provides the conditional-entropy and mutual-information quantities of
/// Definitions B.2 and B.3, which Lemma C.5 of the paper uses to argue that
/// short transcripts leave the input distribution with high entropy.
///
/// # Examples
///
/// ```
/// use beeps_info::entropy::JointDistribution;
///
/// // Perfectly correlated bits: I(X:Y) = 1 bit.
/// let j = JointDistribution::from_weights(2, 2, &[1.0, 0.0, 0.0, 1.0]).unwrap();
/// assert!((j.mutual_information() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JointDistribution {
    nx: usize,
    ny: usize,
    probs: Vec<f64>,
}

impl JointDistribution {
    /// Builds a joint distribution by normalizing the `nx * ny` weight matrix
    /// given in row-major order (`weights[x * ny + y]`).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] if the matrix shape is wrong
    /// (reported as [`DistributionError::Empty`]), a weight is invalid, or
    /// the total mass is zero.
    pub fn from_weights(nx: usize, ny: usize, weights: &[f64]) -> Result<Self, DistributionError> {
        if nx == 0 || ny == 0 || weights.len() != nx * ny {
            return Err(DistributionError::Empty);
        }
        let flat = Distribution::from_weights(weights)?;
        Ok(Self {
            nx,
            ny,
            probs: flat.probs,
        })
    }

    /// Builds an empirical joint distribution from a pair-count matrix in
    /// row-major order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`JointDistribution::from_weights`].
    pub fn from_counts(nx: usize, ny: usize, counts: &[u64]) -> Result<Self, DistributionError> {
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_weights(nx, ny, &weights)
    }

    /// Probability of the pair `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= nx` or `y >= ny`.
    pub fn prob(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.nx && y < self.ny, "index out of bounds");
        self.probs[x * self.ny + y]
    }

    /// Marginal distribution of `X`.
    pub fn marginal_x(&self) -> Distribution {
        let probs = self
            .probs
            .chunks(self.ny)
            .map(|row| row.iter().sum())
            .collect();
        Distribution { probs }
    }

    /// Marginal distribution of `Y`.
    pub fn marginal_y(&self) -> Distribution {
        let mut probs = vec![0.0; self.ny];
        for row in self.probs.chunks(self.ny) {
            for (p, &v) in probs.iter_mut().zip(row) {
                *p += v;
            }
        }
        Distribution { probs }
    }

    /// Joint entropy `H(X, Y)` in bits.
    pub fn joint_entropy(&self) -> f64 {
        entropy_of(&self.probs)
    }

    /// Conditional entropy `H(X | Y) = H(X, Y) - H(Y)` (Definition B.2).
    pub fn conditional_entropy_x_given_y(&self) -> f64 {
        self.joint_entropy() - self.marginal_y().entropy()
    }

    /// Conditional entropy `H(Y | X) = H(X, Y) - H(X)`.
    pub fn conditional_entropy_y_given_x(&self) -> f64 {
        self.joint_entropy() - self.marginal_x().entropy()
    }

    /// Mutual information `I(X : Y) = H(X) - H(X | Y)` (Definition B.3).
    ///
    /// Clamped at zero to absorb floating-point jitter: Fact B.5 guarantees
    /// non-negativity mathematically.
    pub fn mutual_information(&self) -> f64 {
        let i = self.marginal_x().entropy() - self.conditional_entropy_x_given_y();
        i.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_entropy_is_log_support() {
        for len in [1usize, 2, 4, 8, 100] {
            let d = Distribution::uniform(len);
            assert!(
                (d.entropy() - (len as f64).log2()).abs() < 1e-10,
                "uniform({len}) entropy should be log2({len})"
            );
        }
    }

    #[test]
    fn entropy_bounded_by_log_support_fact_b4() {
        // Fact B.4: 0 <= H(X) <= log |Omega|.
        let d = Distribution::from_weights(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert!(d.entropy() >= 0.0);
        assert!(d.entropy() <= 2.0 + 1e-12);
    }

    #[test]
    fn point_mass_has_zero_entropy() {
        let d = Distribution::from_weights(&[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(d.entropy(), 0.0);
        assert_eq!(d.support_size(), 1);
    }

    #[test]
    fn from_weights_rejects_bad_input() {
        assert_eq!(
            Distribution::from_weights(&[]),
            Err(DistributionError::Empty)
        );
        assert_eq!(
            Distribution::from_weights(&[1.0, -0.5]),
            Err(DistributionError::InvalidWeight { index: 1 })
        );
        assert_eq!(
            Distribution::from_weights(&[1.0, f64::NAN]),
            Err(DistributionError::InvalidWeight { index: 1 })
        );
        assert_eq!(
            Distribution::from_weights(&[0.0, 0.0]),
            Err(DistributionError::ZeroMass)
        );
    }

    #[test]
    fn from_counts_normalizes() {
        let d = Distribution::from_counts(&[2, 6]).unwrap();
        assert!((d.prob(0) - 0.25).abs() < 1e-12);
        assert!((d.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_endpoints_and_symmetry() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        for p in [0.1, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn binary_entropy_rejects_out_of_range() {
        binary_entropy(1.5);
    }

    #[test]
    fn independent_joint_has_zero_mutual_information() {
        // X uniform on {0,1}, Y uniform on {0,1,2}, independent.
        let w: Vec<f64> = vec![1.0; 6];
        let j = JointDistribution::from_weights(2, 3, &w).unwrap();
        assert!(j.mutual_information().abs() < 1e-12);
        // Fact B.6 equality case: H(XY) = H(X) + H(Y).
        let sum = j.marginal_x().entropy() + j.marginal_y().entropy();
        assert!((j.joint_entropy() - sum).abs() < 1e-12);
    }

    #[test]
    fn correlated_joint_mutual_information() {
        let j = JointDistribution::from_weights(2, 2, &[1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!((j.mutual_information() - 1.0).abs() < 1e-12);
        assert!(j.conditional_entropy_x_given_y().abs() < 1e-12);
    }

    #[test]
    fn subadditivity_of_entropy_fact_b6() {
        // A skewed, dependent joint distribution.
        let j = JointDistribution::from_weights(2, 2, &[4.0, 1.0, 1.0, 2.0]).unwrap();
        let joint = j.joint_entropy();
        let sum = j.marginal_x().entropy() + j.marginal_y().entropy();
        assert!(joint <= sum + 1e-12, "H(XY) <= H(X) + H(Y)");
    }

    #[test]
    fn conditioning_reduces_entropy_fact_b5() {
        let j = JointDistribution::from_weights(2, 2, &[4.0, 1.0, 1.0, 2.0]).unwrap();
        assert!(j.conditional_entropy_x_given_y() <= j.marginal_x().entropy() + 1e-12);
        assert!(j.mutual_information() >= 0.0);
        assert!(j.mutual_information() <= j.marginal_x().entropy() + 1e-12);
    }

    #[test]
    fn joint_marginals_sum_to_one() {
        let j = JointDistribution::from_weights(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sx: f64 = j.marginal_x().probs().iter().sum();
        let sy: f64 = j.marginal_y().probs().iter().sum();
        assert!((sx - 1.0).abs() < 1e-12);
        assert!((sy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_rejects_shape_mismatch() {
        assert!(JointDistribution::from_weights(2, 2, &[1.0, 2.0]).is_err());
        assert!(JointDistribution::from_weights(0, 2, &[]).is_err());
    }
}
