//! Information-theoretic substrate for the `noisy-beeps` reproduction.
//!
//! This crate implements Appendix B of *Noisy Beeps* (Efremenko, Kol,
//! Saxena; PODC 2020) as executable, tested code:
//!
//! * [`entropy`] — binary entropy, conditional entropy, and mutual
//!   information of empirical discrete distributions
//!   (Definitions B.1–B.3 and Facts B.4–B.6);
//! * [`tail`] — binomial tail probabilities and Chernoff/Hoeffding bounds,
//!   used throughout `beeps-core` to *choose* repetition counts that hit the
//!   `n^{-c}`-style failure targets the paper's proofs require;
//! * [`lemmas`] — Lemma B.7 (a Cauchy–Schwarz ratio inequality) and
//!   Lemma B.8 (how many of `k` uniform samples are unique) as checked
//!   functions with property tests.
//!
//! # Examples
//!
//! ```
//! use beeps_info::entropy::Distribution;
//!
//! // A fair coin has one bit of entropy.
//! let coin = Distribution::from_weights(&[1.0, 1.0]).unwrap();
//! assert!((coin.entropy() - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod entropy;
pub mod lemmas;
pub mod stats;
pub mod tail;

pub use entropy::{Distribution, DistributionError, JointDistribution};
pub use stats::{chi_square_homogeneity, kl_divergence, total_variation, ChiSquare};
pub use tail::{binomial_tail_ge, binomial_tail_le, hoeffding_tail};
