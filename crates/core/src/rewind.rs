//! The full simulation scheme of Theorem 1.2 (Appendix D): chunked
//! simulation with owners, verification, and rewind-if-error.
//!
//! Each iteration has three phases:
//!
//! 1. **Chunk simulation** — the next `L` rounds of the noiseless protocol
//!    are simulated by `R`-fold repetition with threshold decoding
//!    (Algorithm 1's simulation phase);
//! 2. **Finding owners** — Algorithm 1's second phase assigns every 1 of
//!    the chunk transcript to a party that beeped it
//!    (the owners state machine in the `owners` module);
//! 3. **Verification** — every party recomputes what it *would* have
//!    beeped against the committed prefix plus the current chunk. A party
//!    raises the error flag iff (a) some 0-round contradicts its own beep,
//!    (b) it owns a 1-round it did not beep, or (c) some 1-round ended the
//!    owners phase unowned (the paper: "an error flag for rounds with no
//!    owner can be raised by any player"). The flag OR crosses the channel
//!    as `V` repetitions with a threshold decode. On success the chunk is
//!    committed; on failure the chunk is discarded **and** the most recent
//!    committed chunk is popped, so errors that slipped past an earlier
//!    verification are eventually unwound (the rewind-if-error
//!    discipline of \[EKS18\] that subsection D.2 builds on).
//!
//! Verification always covers the *entire* committed prefix, not just the
//! current chunk: re-checking is free (it costs the same `V` rounds) and is
//! what makes undetected two-sided errors recoverable.
//!
//! Over the one-sided `0→1` channel a raised flag can never be missed
//! (noise cannot erase beeps... it can only add them), so committed
//! prefixes are always correct there; over the two-sided channel the missed
//! -flag probability is driven below `target_error` by `V`.

use crate::driver::{drive, SimParty};
use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::owners::{metric_for, OwnersState, SharedCode};
use crate::params::{ResolvedParams, SimulatorConfig};
use beeps_channel::{NoiseModel, Protocol, StochasticChannel};
use std::sync::Arc;

/// The Theorem 1.2 simulator: `O(T log n)` rounds for any noiseless
/// protocol of length `T`, over correlated, one-sided, or independent
/// noise.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct RewindSimulator<'a, P> {
    protocol: &'a P,
    config: SimulatorConfig,
}

impl<'a, P: Protocol> RewindSimulator<'a, P> {
    /// Wraps `protocol` with the given parameters.
    pub fn new(protocol: &'a P, config: SimulatorConfig) -> Self {
        Self { protocol, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Channel rounds of one iteration (chunk + owners + verification) for
    /// a full-length chunk.
    pub fn rounds_per_iteration(&self) -> usize {
        let l = self.config.chunk_len;
        let n = self.protocol.num_parties();
        l * self.config.repetitions
            + OwnersState::channel_rounds(l, n, self.config.code_len)
            + self.config.verify_repetitions
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExhausted`] — rewinds consumed the round budget
    ///   (`budget_factor ×` the rewind-free cost) before the protocol
    ///   completed;
    /// * [`SimError::UnsupportedNoise`] — invalid noise parameter.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        self.simulate_with_scratch(inputs, model, seed, &mut crate::soa::SoaScratch::default())
    }

    /// [`RewindSimulator::simulate`] with a caller-owned scratch arena:
    /// shared-delivery models run on the collapsed struct-of-arrays
    /// engine (see [`crate::soa`]), whose buffers live in `scratch` so a
    /// worker thread can run many trials allocation-free. Results are
    /// bitwise identical to [`RewindSimulator::simulate`] (which is this
    /// method with a throwaway scratch).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RewindSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_with_scratch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
        scratch: &mut crate::soa::SoaScratch,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        if model.is_shared() {
            return crate::soa::rewind_collapsed(
                self.protocol,
                &self.config,
                inputs,
                model,
                seed,
                scratch,
            );
        }
        let mut channel = StochasticChannel::new(n, model, seed);
        self.simulate_over(inputs, model, &mut channel)
    }

    /// Runs one trial per seed, lane-sliced: up to 64 trials share each
    /// channel word, with per-lane noise drawn from each trial's own
    /// seed stream so every result — transcript, statistics, and
    /// `BudgetExhausted` errors alike — is bitwise identical to
    /// [`RewindSimulator::simulate`] with that seed.
    ///
    /// Independent noise (and invalid ε) falls back to the scalar
    /// per-trial loop — per-party deliveries diverge there, so the
    /// collapsed shared decode state the lane engine relies on does not
    /// hold.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        if model.validate().is_err() || matches!(model, NoiseModel::Independent { .. }) {
            return seeds
                .iter()
                .map(|&seed| self.simulate(inputs, model, seed))
                .collect();
        }
        seeds
            .chunks(beeps_channel::LANES)
            .flat_map(|group| {
                crate::lanes::rewind_lanes(self.protocol, &self.config, inputs, model, group)
            })
            .collect()
    }

    /// Runs the simulation over a caller-supplied channel — the hook for
    /// failure injection (scripted flip schedules) and the A.1.2 reduction
    /// channel. `model` tells the parties which thresholds and decoding
    /// metric to use; the channel is free to behave differently (that is
    /// the point of injecting one).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RewindSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()` or the channel is
    /// sized for a different number of parties.
    pub fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn beeps_channel::Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        let t = self.protocol.length();
        let resolved = self.config.resolve(model);
        let code = self.config.build_code();

        let mut parties: Vec<RewindParty<'_, P>> = (0..n)
            .map(|i| {
                RewindParty::new(
                    self.protocol,
                    inputs[i].clone(),
                    i,
                    n,
                    &self.config,
                    resolved,
                    Arc::clone(&code),
                    model,
                )
            })
            .collect();
        let chunks_needed = t.div_ceil(self.config.chunk_len).max(1);
        let ideal = chunks_needed * self.rounds_per_iteration();
        let budget = (self.config.budget_factor * ideal as f64).ceil() as usize;
        let corrupted_before = channel.corrupted_rounds();
        let result = drive(&mut parties, channel, budget);

        if !result.all_done {
            return Err(SimError::BudgetExhausted {
                rounds_used: result.rounds,
                committed: parties[0].committed_bits.len().min(t),
            });
        }

        let transcript: Vec<bool> = parties[0].committed_bits[..t].to_vec();
        let agreement = parties
            .iter()
            .all(|p| p.committed_bits[..t] == transcript[..]);
        let outputs = parties
            .iter()
            .map(|p| self.protocol.output(p.me, &p.input, &p.committed_bits[..t]))
            .collect();
        let stats = SimStats {
            channel_rounds: result.rounds,
            phase_rounds: parties[0].phase_rounds,
            protocol_rounds: t,
            chunks_committed: parties[0].chunks_committed,
            rewinds: parties[0].rewinds,
            agreement,
            energy: result.energy,
            corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        };
        Ok(SimOutcome::new(transcript, outputs, stats))
    }
}

/// Phase of the per-iteration state machine.
enum Phase {
    Chunk(ChunkPhase),
    Owners(OwnersState),
    Verify(VerifyPhase),
    Done,
}

struct ChunkPhase {
    /// Rounds in this (possibly tail) chunk.
    len: usize,
    /// Decoded bits so far.
    bits: Vec<bool>,
    /// What I beeped per chunk round.
    my_bits: Vec<bool>,
    rep: usize,
    ones: usize,
    current: bool,
}

struct VerifyPhase {
    chunk_bits: Vec<bool>,
    chunk_owners: Vec<Option<usize>>,
    my_flag: bool,
    idx: usize,
    ones: usize,
}

/// One party of the rewind protocol.
struct RewindParty<'a, P: Protocol> {
    protocol: &'a P,
    input: P::Input,
    me: usize,
    n: usize,
    chunk_len: usize,
    repetitions: usize,
    verify_repetitions: usize,
    params: ResolvedParams,
    code: SharedCode,
    model: NoiseModel,

    /// Committed simulated transcript (concatenated chunks).
    committed_bits: Vec<bool>,
    /// Owner of each committed round (None for 0-rounds).
    committed_owners: Vec<Option<usize>>,
    /// Length of each committed chunk, for rewinding.
    chunk_lens: Vec<usize>,
    /// `committed_bits` plus the decoded bits of the in-flight chunk,
    /// maintained incrementally so the hot chunk loop never rebuilds the
    /// prefix (the naive version cloned the whole committed transcript
    /// once per simulated round).
    working: Vec<bool>,

    chunks_committed: usize,
    rewinds: usize,
    phase_rounds: PhaseRounds,
    phase: Phase,
}

impl<'a, P: Protocol> RewindParty<'a, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        protocol: &'a P,
        input: P::Input,
        me: usize,
        n: usize,
        config: &SimulatorConfig,
        params: ResolvedParams,
        code: SharedCode,
        model: NoiseModel,
    ) -> Self {
        let mut party = Self {
            protocol,
            input,
            me,
            n,
            chunk_len: config.chunk_len,
            repetitions: config.repetitions,
            verify_repetitions: config.verify_repetitions,
            params,
            code,
            model,
            committed_bits: Vec::new(),
            committed_owners: Vec::new(),
            chunk_lens: Vec::new(),
            working: Vec::new(),
            chunks_committed: 0,
            rewinds: 0,
            phase_rounds: PhaseRounds::default(),
            phase: Phase::Done,
        };
        party.phase = party.start_chunk();
        party
    }

    /// Starts simulating the next chunk (or finishes if the protocol is
    /// fully committed).
    fn start_chunk(&self) -> Phase {
        let remaining = self
            .protocol
            .length()
            .saturating_sub(self.committed_bits.len());
        if remaining == 0 {
            return Phase::Done;
        }
        let len = remaining.min(self.chunk_len);
        Phase::Chunk(ChunkPhase {
            len,
            bits: Vec::with_capacity(len),
            my_bits: Vec::with_capacity(len),
            rep: 0,
            ones: 0,
            current: false,
        })
    }

    /// What this party would beep in simulated round `m` of the transcript
    /// prefix `prefix[..m]`.
    fn would_beep(&self, prefix: &[bool], m: usize) -> bool {
        self.protocol.beep(self.me, &self.input, &prefix[..m])
    }

    /// The verification flag over the committed prefix plus the pending
    /// chunk (see the module docs for the three conditions).
    fn compute_flag(&self, chunk_bits: &[bool], chunk_owners: &[Option<usize>]) -> bool {
        // `working` already holds committed prefix + decoded chunk, so the
        // only concatenation left is the owners lookup, done by index.
        debug_assert_eq!(
            self.working.len(),
            self.committed_bits.len() + chunk_bits.len()
        );
        debug_assert_eq!(&self.working[self.committed_bits.len()..], chunk_bits);
        let prefix = &self.working;
        let committed = self.committed_owners.len();
        for m in 0..prefix.len() {
            let b = self.would_beep(prefix, m);
            if !prefix[m] {
                if b {
                    return true; // my 1 is missing from the transcript
                }
            } else {
                let owner = if m < committed {
                    self.committed_owners[m]
                } else {
                    chunk_owners[m - committed]
                };
                match owner {
                    Some(owner) => {
                        if owner == self.me && !b {
                            return true; // I own a 1 I would not beep
                        }
                    }
                    None => return true, // unowned 1: flagged by everyone
                }
            }
        }
        false
    }

    fn finish_verification(&mut self, failed: bool, v: VerifyPhase) {
        if failed {
            self.rewinds += 1;
            // Discard the pending chunk and pop one committed chunk.
            if let Some(len) = self.chunk_lens.pop() {
                let new_len = self.committed_bits.len() - len;
                self.committed_bits.truncate(new_len);
                self.committed_owners.truncate(new_len);
                self.chunks_committed = self.chunks_committed.saturating_sub(1);
            }
        } else {
            self.committed_bits.extend_from_slice(&v.chunk_bits);
            self.committed_owners.extend_from_slice(&v.chunk_owners);
            self.chunk_lens.push(v.chunk_bits.len());
            self.chunks_committed += 1;
        }
        // Re-sync the working buffer with the committed prefix (a no-op on
        // commit, a rewind otherwise).
        self.working.truncate(self.committed_bits.len());
        self.phase = self.start_chunk();
    }
}

impl<P: Protocol> SimParty for RewindParty<'_, P> {
    fn beep(&mut self) -> bool {
        match &mut self.phase {
            Phase::Chunk(c) => {
                if c.rep == 0 {
                    // Decide this simulated round's bit against the
                    // committed prefix plus the chunk decoded so far —
                    // which is exactly the working buffer.
                    c.current = self.protocol.beep(self.me, &self.input, &self.working);
                }
                c.current
            }
            Phase::Owners(o) => o.beep(),
            Phase::Verify(v) => v.my_flag,
            Phase::Done => false,
        }
    }

    fn hear(&mut self, heard: bool) {
        // Attribute the round to the phase it belonged to.
        match &self.phase {
            Phase::Chunk(_) => self.phase_rounds.chunk += 1,
            Phase::Owners(_) => self.phase_rounds.owners += 1,
            Phase::Verify(_) => self.phase_rounds.verify += 1,
            Phase::Done => {}
        }
        // Take the phase out so transitions can borrow `self` freely.
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Chunk(mut c) => {
                c.ones += usize::from(heard);
                c.rep += 1;
                if c.rep == self.repetitions {
                    let bit = c.ones >= self.params.rep_ones;
                    c.bits.push(bit);
                    self.working.push(bit);
                    c.my_bits.push(c.current);
                    c.rep = 0;
                    c.ones = 0;
                }
                if c.bits.len() == c.len {
                    // Chunk simulated; find owners for its 1s.
                    self.phase = Phase::Owners(OwnersState::new(
                        self.me,
                        self.n,
                        c.bits,
                        c.my_bits,
                        Arc::clone(&self.code),
                        metric_for(self.model),
                    ));
                } else {
                    self.phase = Phase::Chunk(c);
                }
            }
            Phase::Owners(mut o) => {
                o.hear(heard);
                if o.finished() {
                    let chunk_bits = o.pi_bits().to_vec();
                    let chunk_owners = o.owners().to_vec();
                    let my_flag = self.compute_flag(&chunk_bits, &chunk_owners);
                    self.phase = Phase::Verify(VerifyPhase {
                        chunk_bits,
                        chunk_owners,
                        my_flag,
                        idx: 0,
                        ones: 0,
                    });
                } else {
                    self.phase = Phase::Owners(o);
                }
            }
            Phase::Verify(mut v) => {
                v.ones += usize::from(heard);
                v.idx += 1;
                if v.idx == self.verify_repetitions {
                    let failed = v.ones >= self.params.verify_ones;
                    self.finish_verification(failed, v);
                } else {
                    self.phase = Phase::Verify(v);
                }
            }
            Phase::Done => {}
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done) && self.committed_bits.len() >= self.protocol.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::run_noiseless;
    use beeps_protocols::{InputSet, LeaderElection, Membership, MultiOr};

    fn simulate_matches<P: Protocol>(
        protocol: &P,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: std::ops::Range<u64>,
        min_good: usize,
    ) {
        let truth = run_noiseless(protocol, inputs);
        let config = SimulatorConfig::builder(protocol.num_parties())
            .model(model)
            .build();
        let sim = RewindSimulator::new(protocol, config);
        let mut good = 0;
        let total = (seeds.end - seeds.start) as usize;
        for seed in seeds {
            match sim.simulate(inputs, model, seed) {
                Ok(out) if out.transcript() == truth.transcript() => good += 1,
                _ => {}
            }
        }
        assert!(good >= min_good, "only {good}/{total} exact simulations");
    }

    #[test]
    fn noiseless_simulation_is_exact() {
        let p = InputSet::new(4);
        let inputs = [1, 5, 5, 2];
        simulate_matches(&p, &inputs, NoiseModel::Noiseless, 0..3, 3);
    }

    #[test]
    fn correlated_noise_mild() {
        let p = InputSet::new(6);
        let inputs = [0, 3, 11, 11, 7, 2];
        simulate_matches(
            &p,
            &inputs,
            NoiseModel::Correlated { epsilon: 0.1 },
            0..10,
            9,
        );
    }

    #[test]
    fn correlated_noise_paper_rate() {
        // The paper's eps = 1/3: parameters get big, so keep n small.
        let p = InputSet::new(4);
        let inputs = [1, 6, 6, 3];
        simulate_matches(
            &p,
            &inputs,
            NoiseModel::Correlated { epsilon: 1.0 / 3.0 },
            0..5,
            4,
        );
    }

    #[test]
    fn one_sided_up_noise() {
        let p = InputSet::new(6);
        let inputs = [4, 4, 0, 9, 2, 11];
        simulate_matches(
            &p,
            &inputs,
            NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
            0..8,
            7,
        );
    }

    #[test]
    fn independent_noise() {
        let p = InputSet::new(5);
        let inputs = [2, 8, 8, 1, 0];
        simulate_matches(
            &p,
            &inputs,
            NoiseModel::Independent { epsilon: 0.1 },
            0..8,
            7,
        );
    }

    #[test]
    fn adaptive_protocols_simulate_correctly() {
        let p = LeaderElection::new(5, 8);
        let inputs = [13, 210, 99, 4, 180];
        simulate_matches(
            &p,
            &inputs,
            NoiseModel::Correlated { epsilon: 0.15 },
            0..6,
            5,
        );
    }

    #[test]
    fn heavily_adaptive_membership_simulates_correctly() {
        let p = Membership::new(4, 16);
        let inputs = [Some(2), None, Some(11), Some(15)];
        simulate_matches(
            &p,
            &inputs,
            NoiseModel::Correlated { epsilon: 0.1 },
            0..5,
            4,
        );
    }

    #[test]
    fn protocol_longer_than_chunking_boundary() {
        // Protocol length not divisible by chunk_len exercises tail chunks.
        let p = MultiOr::new(3, 10);
        let inputs = vec![
            vec![
                true, false, true, false, true, false, false, true, false, true,
            ],
            vec![false; 10],
            vec![
                false, true, false, false, false, false, true, false, false, false,
            ],
        ];
        let mut config = SimulatorConfig::builder(3)
            .model(NoiseModel::Correlated { epsilon: 0.1 })
            .build();
        config.chunk_len = 4; // forces a tail chunk of 2
        let sim = RewindSimulator::new(&p, config);
        let truth = run_noiseless(&p, &inputs);
        let out = sim
            .simulate(&inputs, NoiseModel::Correlated { epsilon: 0.1 }, 3)
            .unwrap();
        assert_eq!(out.transcript(), truth.transcript());
        assert!(out.stats().chunks_committed >= 3);
    }

    #[test]
    fn overhead_is_logarithmic_shape() {
        // Not a proof, but the measured overhead at fixed eps should grow
        // far slower than linearly in n.
        let eps = 0.1;
        let model = NoiseModel::Correlated { epsilon: eps };
        let mut overheads = Vec::new();
        for n in [4usize, 16] {
            let p = InputSet::new(n);
            let inputs: Vec<usize> = (0..n).map(|i| (5 * i + 1) % (2 * n)).collect();
            let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
            let out = sim.simulate(&inputs, model, 11).unwrap();
            overheads.push(out.stats().overhead());
        }
        // 4x more parties must cost far less than 4x the overhead.
        assert!(
            overheads[1] < overheads[0] * 3.0,
            "overheads {overheads:?} grew too fast"
        );
    }

    #[test]
    fn stats_report_commits_and_agreement() {
        let p = InputSet::new(4);
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let sim = RewindSimulator::new(&p, SimulatorConfig::builder(4).model(model).build());
        let out = sim.simulate(&[0, 1, 2, 3], model, 5).unwrap();
        assert!(out.stats().chunks_committed >= 1);
        assert!(out.stats().agreement);
        assert!(out.stats().channel_rounds > 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = InputSet::new(4);
        let model = NoiseModel::Correlated { epsilon: 0.3 };
        let mut config = SimulatorConfig::builder(4).model(model).build();
        config.budget_factor = 0.1; // guaranteed too small
        let sim = RewindSimulator::new(&p, config);
        let err = sim.simulate(&[0, 1, 2, 3], model, 5).unwrap_err();
        assert!(matches!(err, SimError::BudgetExhausted { .. }));
    }
}
