//! The \[EKS18\]-style simulator for uniquely-owned protocols — what
//! subsection 2.1 of the paper says becomes possible when "each party
//! owns a disjoint set of bits in the transcript".
//!
//! For a [`UniquelyOwned`] protocol the owners phase is redundant: the
//! schedule already names the only party that may beep in each round, so
//! *both* directions of corruption are self-evident to that party —
//! `π_m = 0` while it beeped, or `π_m = 1` while it stayed silent (nobody
//! else could have beeped). The simulation therefore reduces to chunked
//! repetition plus the verification vote plus rewind, skipping the
//! `Θ((L + n)·log n)` rounds Algorithm 1 spends computing owners.
//!
//! This is precisely why the paper's lower bound needs the `InputSet`
//! task, where any party may beep anywhere: ownership must be *computed*,
//! and computing it (or anything equivalent) is where the `Ω(log n)`
//! factor becomes unavoidable. Experiment `tab7_owned_rounds` puts the
//! two simulators side by side on an owned workload to price the
//! difference.

use crate::driver::{drive, SimParty};
use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::params::{ResolvedParams, SimulatorConfig};
use beeps_channel::{NoiseModel, StochasticChannel, UniquelyOwned};

/// Chunk-plus-verify simulator for [`UniquelyOwned`] protocols (no owners
/// phase).
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, NoiseModel};
/// use beeps_core::{OwnedRoundsSimulator, SimulatorConfig};
/// use beeps_protocols::RollCall;
///
/// let protocol = RollCall::new(6);
/// let inputs = [true, false, true, true, false, true];
/// let model = NoiseModel::Correlated { epsilon: 0.1 };
/// let sim = OwnedRoundsSimulator::new(
///     &protocol,
///     SimulatorConfig::builder(6).model(model).build(),
/// );
/// let outcome = sim.simulate(&inputs, model, 3).expect("within budget");
/// assert_eq!(
///     outcome.transcript(),
///     run_noiseless(&protocol, &inputs).transcript()
/// );
/// ```
#[derive(Debug)]
pub struct OwnedRoundsSimulator<'a, P> {
    protocol: &'a P,
    config: SimulatorConfig,
}

impl<'a, P: UniquelyOwned> OwnedRoundsSimulator<'a, P> {
    /// Wraps `protocol`; `code_len` in the config is unused (there are no
    /// codewords to exchange).
    pub fn new(protocol: &'a P, config: SimulatorConfig) -> Self {
        Self { protocol, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Channel rounds of one full-length iteration (chunk + verification).
    pub fn rounds_per_iteration(&self) -> usize {
        self.config.chunk_len * self.config.repetitions + self.config.verify_repetitions
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::RewindSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        self.simulate_with_scratch(inputs, model, seed, &mut crate::soa::SoaScratch::default())
    }

    /// [`OwnedRoundsSimulator::simulate`] with a caller-owned scratch
    /// arena: shared-delivery models run on the collapsed
    /// struct-of-arrays engine (see [`crate::soa`]), bitwise identical
    /// to the scalar path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OwnedRoundsSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_with_scratch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
        scratch: &mut crate::soa::SoaScratch,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        if model.is_shared() {
            return crate::soa::owned_rounds_collapsed(
                self.protocol,
                &self.config,
                inputs,
                model,
                seed,
                scratch,
            );
        }
        let mut channel = StochasticChannel::new(n, model, seed);
        self.simulate_over(inputs, model, &mut channel)
    }

    /// Runs one trial per seed, lane-sliced: up to 64 trials share each
    /// channel word, every result bitwise identical to
    /// [`OwnedRoundsSimulator::simulate`] with that seed.
    ///
    /// Independent noise (and invalid ε) falls back to the scalar
    /// per-trial loop — per-party deliveries diverge there, so the
    /// shared-transcript collapse the lane engine relies on does not
    /// hold.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        if model.validate().is_err() || !model.is_shared() {
            return seeds
                .iter()
                .map(|&seed| self.simulate(inputs, model, seed))
                .collect();
        }
        seeds
            .chunks(beeps_channel::LANES)
            .flat_map(|group| {
                crate::lanes::owned_rounds_lanes(self.protocol, &self.config, inputs, model, group)
            })
            .collect()
    }

    /// Runs over a caller-supplied channel (failure injection, reduction
    /// channels).
    ///
    /// # Errors
    ///
    /// Same conditions as [`OwnedRoundsSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics on party-count mismatches.
    pub fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn beeps_channel::Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        let t = self.protocol.length();
        let resolved = self.config.resolve(model);
        let mut parties: Vec<OwnedParty<'_, P>> = (0..n)
            .map(|i| OwnedParty {
                protocol: self.protocol,
                input: inputs[i].clone(),
                me: i,
                chunk_len: self.config.chunk_len,
                repetitions: self.config.repetitions,
                verify_repetitions: self.config.verify_repetitions,
                params: resolved,
                committed: Vec::new(),
                chunk_lens: Vec::new(),
                working: Vec::new(),
                chunks_committed: 0,
                rewinds: 0,
                phase_rounds: PhaseRounds::default(),
                phase: OwnedPhase::Done,
            })
            .collect();
        for party in parties.iter_mut() {
            party.phase = party.start_chunk();
        }
        let chunks_needed = t.div_ceil(self.config.chunk_len).max(1);
        let budget = (self.config.budget_factor
            * (chunks_needed * self.rounds_per_iteration()) as f64)
            .ceil() as usize;
        let corrupted_before = channel.corrupted_rounds();
        let result = drive(&mut parties, channel, budget);

        if !result.all_done {
            return Err(SimError::BudgetExhausted {
                rounds_used: result.rounds,
                committed: parties[0].committed.len().min(t),
            });
        }
        let transcript: Vec<bool> = parties[0].committed[..t].to_vec();
        let agreement = parties.iter().all(|p| p.committed[..t] == transcript[..]);
        let outputs = parties
            .iter()
            .map(|p| self.protocol.output(p.me, &p.input, &p.committed[..t]))
            .collect();
        Ok(SimOutcome::new(
            transcript,
            outputs,
            SimStats {
                channel_rounds: result.rounds,
                phase_rounds: parties[0].phase_rounds,
                protocol_rounds: t,
                chunks_committed: parties[0].chunks_committed,
                rewinds: parties[0].rewinds,
                agreement,
                energy: result.energy,
                corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
            },
        ))
    }
}

struct ChunkState {
    len: usize,
    bits: Vec<bool>,
    rep: usize,
    ones: usize,
    current: bool,
}

struct VerifyState {
    chunk_bits: Vec<bool>,
    my_flag: bool,
    idx: usize,
    ones: usize,
}

enum OwnedPhase {
    Chunk(ChunkState),
    Verify(VerifyState),
    Done,
}

struct OwnedParty<'a, P: UniquelyOwned> {
    protocol: &'a P,
    input: P::Input,
    me: usize,
    chunk_len: usize,
    repetitions: usize,
    verify_repetitions: usize,
    params: ResolvedParams,
    committed: Vec<bool>,
    chunk_lens: Vec<usize>,
    /// `committed` plus the decoded bits of the in-flight chunk, kept in
    /// sync incrementally so the chunk loop never re-clones the prefix.
    working: Vec<bool>,
    chunks_committed: usize,
    rewinds: usize,
    phase_rounds: PhaseRounds,
    phase: OwnedPhase,
}

impl<P: UniquelyOwned> OwnedParty<'_, P> {
    fn start_chunk(&self) -> OwnedPhase {
        let remaining = self.protocol.length().saturating_sub(self.committed.len());
        if remaining == 0 {
            return OwnedPhase::Done;
        }
        let len = remaining.min(self.chunk_len);
        OwnedPhase::Chunk(ChunkState {
            len,
            bits: Vec::with_capacity(len),
            rep: 0,
            ones: 0,
            current: false,
        })
    }

    /// Owner-only verification over the committed prefix plus the pending
    /// chunk: I flag iff some round I own disagrees with what I would
    /// beep — in either direction.
    fn compute_flag(&self, chunk_bits: &[bool]) -> bool {
        debug_assert_eq!(self.working.len(), self.committed.len() + chunk_bits.len());
        let prefix = &self.working;
        for m in 0..prefix.len() {
            if self.protocol.round_owner(m) != self.me {
                continue;
            }
            if self.protocol.beep(self.me, &self.input, &prefix[..m]) != prefix[m] {
                return true;
            }
        }
        false
    }
}

impl<P: UniquelyOwned> SimParty for OwnedParty<'_, P> {
    fn beep(&mut self) -> bool {
        match &mut self.phase {
            OwnedPhase::Chunk(c) => {
                if c.rep == 0 {
                    c.current = self.protocol.beep(self.me, &self.input, &self.working);
                }
                c.current
            }
            OwnedPhase::Verify(v) => v.my_flag,
            OwnedPhase::Done => false,
        }
    }

    fn hear(&mut self, heard: bool) {
        match &self.phase {
            OwnedPhase::Chunk(_) => self.phase_rounds.chunk += 1,
            OwnedPhase::Verify(_) => self.phase_rounds.verify += 1,
            OwnedPhase::Done => {}
        }
        match std::mem::replace(&mut self.phase, OwnedPhase::Done) {
            OwnedPhase::Chunk(mut c) => {
                c.ones += usize::from(heard);
                c.rep += 1;
                if c.rep == self.repetitions {
                    let bit = c.ones >= self.params.rep_ones;
                    c.bits.push(bit);
                    self.working.push(bit);
                    c.rep = 0;
                    c.ones = 0;
                }
                if c.bits.len() == c.len {
                    let my_flag = self.compute_flag(&c.bits);
                    self.phase = OwnedPhase::Verify(VerifyState {
                        chunk_bits: c.bits,
                        my_flag,
                        idx: 0,
                        ones: 0,
                    });
                } else {
                    self.phase = OwnedPhase::Chunk(c);
                }
            }
            OwnedPhase::Verify(mut v) => {
                v.ones += usize::from(heard);
                v.idx += 1;
                if v.idx < self.verify_repetitions {
                    self.phase = OwnedPhase::Verify(v);
                    return;
                }
                let failed = v.ones >= self.params.verify_ones;
                if failed {
                    self.rewinds += 1;
                    if let Some(len) = self.chunk_lens.pop() {
                        let keep = self.committed.len() - len;
                        self.committed.truncate(keep);
                        self.chunks_committed = self.chunks_committed.saturating_sub(1);
                    }
                } else {
                    self.committed.extend_from_slice(&v.chunk_bits);
                    self.chunk_lens.push(v.chunk_bits.len());
                    self.chunks_committed += 1;
                }
                self.working.truncate(self.committed.len());
                self.phase = self.start_chunk();
            }
            OwnedPhase::Done => {}
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.phase, OwnedPhase::Done) && self.committed.len() >= self.protocol.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::run_noiseless;
    use beeps_protocols::{Broadcast, PointerChase, RollCall};

    fn check<P: UniquelyOwned>(
        protocol: &P,
        inputs: &[P::Input],
        model: NoiseModel,
        trials: u64,
        min_good: u64,
    ) {
        let truth = run_noiseless(protocol, inputs);
        let config = SimulatorConfig::builder(protocol.num_parties())
            .model(model)
            .build();
        let sim = OwnedRoundsSimulator::new(protocol, config);
        let mut good = 0;
        for seed in 0..trials {
            if let Ok(out) = sim.simulate(inputs, model, seed) {
                if out.transcript() == truth.transcript() {
                    good += 1;
                }
            }
        }
        assert!(good >= min_good, "only {good}/{trials} exact over {model}");
    }

    #[test]
    fn roll_call_over_two_sided_noise() {
        let p = RollCall::new(8);
        let inputs = [true, false, true, true, false, false, true, false];
        check(&p, &inputs, NoiseModel::Correlated { epsilon: 0.2 }, 10, 9);
    }

    #[test]
    fn roll_call_over_one_sided_up_noise_paper_rate() {
        // The crucial direction: 0->1 flips on rounds whose owner was
        // silent are caught by that owner alone — no owners phase needed.
        let p = RollCall::new(8);
        let inputs = [false; 8];
        check(
            &p,
            &inputs,
            NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
            10,
            9,
        );
    }

    #[test]
    fn broadcast_over_noise() {
        let p = Broadcast::new(4, 1, 12);
        let inputs = [0, 0xABC, 0, 0];
        check(&p, &inputs, NoiseModel::Correlated { epsilon: 0.15 }, 8, 7);
    }

    #[test]
    fn adaptive_but_owned_pointer_chase() {
        // Ownership is schedule-fixed even though the *bits* are adaptive;
        // the simulator must still be exact.
        let p = PointerChase::new(3, 8, 5);
        let tables = vec![
            vec![4, 2, 7, 1, 0, 3, 6, 5],
            vec![1, 5, 0, 2, 6, 7, 3, 4],
            vec![3, 0, 1, 6, 2, 4, 5, 7],
        ];
        check(&p, &tables, NoiseModel::Correlated { epsilon: 0.1 }, 8, 7);
    }

    #[test]
    fn cheaper_than_the_general_scheme() {
        // The whole point: on an owned workload, skipping the owners phase
        // must save a large round factor at equal parameters.
        let p = RollCall::new(16);
        let inputs = [true; 16];
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let config = SimulatorConfig::builder(16).model(model).build();
        let owned = OwnedRoundsSimulator::new(&p, config.clone())
            .simulate(&inputs, model, 3)
            .unwrap();
        let general = crate::RewindSimulator::new(&p, config)
            .simulate(&inputs, model, 3)
            .unwrap();
        assert!(
            owned.stats().channel_rounds * 2 < general.stats().channel_rounds,
            "owned {} vs general {}",
            owned.stats().channel_rounds,
            general.stats().channel_rounds
        );
        assert_eq!(owned.transcript(), general.transcript());
    }

    #[test]
    fn forced_corruption_rewinds_and_recovers() {
        // High-noise stress: the scheme must rewind and still end exact.
        let p = RollCall::new(6);
        let inputs = [true, true, false, true, false, true];
        let model = NoiseModel::Correlated { epsilon: 0.3 };
        let mut config = SimulatorConfig::builder(6).model(model).build();
        config.budget_factor = 32.0;
        let truth = run_noiseless(&p, &inputs);
        let sim = OwnedRoundsSimulator::new(&p, config);
        let mut exact = 0;
        for seed in 0..10 {
            if let Ok(out) = sim.simulate(&inputs, model, seed) {
                exact += u32::from(out.transcript() == truth.transcript());
            }
        }
        assert!(exact >= 9, "{exact}/10 exact at eps=0.3");
    }
}
