//! Lane-sliced batch engines: every scheme, every noise regime.
//!
//! A [`LaneChannel`] carries up to 64 independent trials, one bit-lane
//! each, with every lane's noise drawn from that trial's own seed in
//! exactly the order a scalar `StochasticChannel` would draw it. On top
//! of that contract these engines exploit two structural facts of the
//! shared-noise regimes:
//!
//! * **State collapse** — under shared noise every party hears the same
//!   bit every round, so all per-party decode state (decoded chunk
//!   bits, owners bookkeeping, committed prefix) is identical across
//!   parties. The engines keep *one* copy per lane and decode each
//!   owners codeword once instead of `n` times. The hierarchical,
//!   one-to-zero, and owned-rounds engines reuse the collapsed bodies
//!   of [`crate::soa`] verbatim, driving them one lane at a time
//!   through the [`LaneBits`] backend.
//! * **Span batching** — whenever the true OR is constant over a span
//!   (an `R`-round repetition block, an idle owners iteration, a
//!   `V`-round verification vote), the only observable is the number of
//!   heard 1s, which is `span − flips` (OR = 1) or `flips` (OR = 0).
//!   [`LaneChannel::flips_in_span`] produces that count with RNG work
//!   proportional to the number of flips, not rounds.
//!
//! Independent noise breaks the state collapse (per-party deliveries
//! diverge) but not the span batching:
//! [`repetition_lanes_independent`] keeps per-party transcripts and
//! reads each lane's `R`-round block as a sparse per-party flip list
//! from [`IndependentLaneChannel::span_flips`], so the work per block
//! is `O(n + flips)` instead of `O(n · R)`. Only the rewind-family
//! schemes still fall back to the scalar loop under independent noise
//! (their owners/verify phases need per-party heard words round by
//! round).
//!
//! The outputs are **bitwise identical** to the per-trial `simulate`
//! path — same transcripts, outputs, statistics, and errors — which is
//! pinned scheme-by-scheme by `tests/packed_equivalence.rs`.

use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::owners::metric_for;
use crate::params::SimulatorConfig;
use crate::soa::{SharedBits, SoaScratch};
use beeps_channel::{
    lanes::{IndependentLaneChannel, LaneChannel},
    NoiseModel, Protocol,
};
use beeps_ecc::bits::PackedBits;

/// Heard 1s in a constant-OR span of `span` rounds with `flips` flipped
/// deliveries: every flip turns a heard 1 into a 0 or vice versa.
fn ones_in_span(span: u64, flips: u64, true_or: bool) -> u64 {
    if true_or {
        span - flips
    } else {
        flips
    }
}

/// One lane of a [`LaneChannel`] exposed as a scalar stream of shared
/// heard bits, the backend the collapsed engine bodies in
/// [`crate::soa`] are generic over. Single rounds step the lane;
/// constant-OR spans batch into [`LaneChannel::flips_in_span`], so a
/// whole repetition block, verification vote, or idle owners iteration
/// costs RNG work proportional to its flips, not its rounds.
struct LaneBits<'a> {
    channel: &'a mut LaneChannel,
    lane: usize,
}

impl SharedBits for LaneBits<'_> {
    fn bit(&mut self, or: bool) -> bool {
        self.channel.step(self.lane, or)
    }

    fn ones(&mut self, span: usize, or: bool) -> usize {
        let flips = self.channel.flips_in_span(self.lane, span as u64, or);
        ones_in_span(span as u64, flips, or) as usize
    }

    fn corrupted(&self) -> usize {
        self.channel.corrupted(self.lane) as usize
    }
}

/// Runs up to 64 hierarchical-scheme trials lane-sliced, bitwise
/// identical to `HierarchicalSimulator::simulate` per seed: the
/// collapsed body of [`crate::soa::hierarchical_collapsed`] re-driven
/// one lane at a time with span-batched noise. All lanes share one
/// scratch arena (the body resets it per trial).
///
/// # Panics
///
/// Panics if `model` is not a validated shared-delivery model (the
/// scheme's `simulate_batch` routes everything else to the scalar
/// loop) or if `inputs.len() != protocol.num_parties()`.
pub(crate) fn hierarchical_lanes<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seeds: &[u64],
) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
    let mut channel =
        LaneChannel::shared(model, seeds).expect("simulate_batch routes only shared models here");
    let mut scratch = SoaScratch::default();
    (0..seeds.len())
        .map(|lane| {
            crate::soa::hierarchical_collapsed_over(
                protocol,
                config,
                inputs,
                model,
                LaneBits {
                    channel: &mut channel,
                    lane,
                },
                &mut scratch,
            )
        })
        .collect()
}

/// Runs up to 64 one-to-zero-scheme trials lane-sliced, bitwise
/// identical to `OneToZeroSimulator::simulate` per seed (same
/// transcripts, statistics, and `BudgetExhausted` errors), via the
/// collapsed body of [`crate::soa::one_to_zero_collapsed`].
///
/// # Panics
///
/// Panics if `model` is not a validated shared-delivery model (the
/// scheme's `simulate_batch` routes everything else to the scalar
/// loop) or if `inputs.len() != protocol.num_parties()`.
pub(crate) fn one_to_zero_lanes<P: Protocol>(
    protocol: &P,
    base: usize,
    budget_factor: f64,
    inputs: &[P::Input],
    model: NoiseModel,
    seeds: &[u64],
) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
    let mut channel =
        LaneChannel::shared(model, seeds).expect("simulate_batch routes only shared models here");
    let mut scratch = SoaScratch::default();
    (0..seeds.len())
        .map(|lane| {
            crate::soa::one_to_zero_collapsed_over(
                protocol,
                base,
                budget_factor,
                inputs,
                LaneBits {
                    channel: &mut channel,
                    lane,
                },
                &mut scratch,
            )
        })
        .collect()
}

/// Runs up to 64 owned-rounds-scheme trials lane-sliced, bitwise
/// identical to `OwnedRoundsSimulator::simulate` per seed, via the
/// collapsed body of [`crate::soa::owned_rounds_collapsed`].
///
/// # Panics
///
/// Panics if `model` is not a validated shared-delivery model (the
/// scheme's `simulate_batch` routes everything else to the scalar
/// loop) or if `inputs.len() != protocol.num_parties()`.
pub(crate) fn owned_rounds_lanes<P: beeps_channel::UniquelyOwned>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seeds: &[u64],
) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
    let mut channel =
        LaneChannel::shared(model, seeds).expect("simulate_batch routes only shared models here");
    let mut scratch = SoaScratch::default();
    (0..seeds.len())
        .map(|lane| {
            crate::soa::owned_rounds_collapsed_over(
                protocol,
                config,
                inputs,
                model,
                LaneBits {
                    channel: &mut channel,
                    lane,
                },
                &mut scratch,
            )
        })
        .collect()
}

/// Runs up to 64 repetition-scheme trials under **independent** noise,
/// bitwise identical to `RepetitionSimulator::simulate` per seed.
///
/// Per-party deliveries diverge here, so each lane keeps one decoded
/// transcript *per party* (the scalar path's `RepParty` state). What
/// stays batched is the noise: each `R`-round repetition block has a
/// constant true OR per lane, so party `i`'s heard-1 count is
/// `ones_in_span(R, flips_i, or)` and
/// [`IndependentLaneChannel::span_flips`] hands back exactly the
/// parties with `flips_i > 0` as a sparse list — every untouched party
/// decodes the block's default bit without touching the RNG.
///
/// # Panics
///
/// Panics if `model` is not a validated independent-noise model (the
/// scheme's `simulate_batch` routes everything else to the shared lane
/// engine or the scalar loop) or if
/// `inputs.len() != protocol.num_parties()`.
pub(crate) fn repetition_lanes_independent<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seeds: &[u64],
) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let mut channel = IndependentLaneChannel::new(n, model, seeds)
        .expect("simulate_batch routes only independent models here");
    let resolved = config.resolve(model);
    let r = config.repetitions;
    let t = protocol.length();
    let lanes = seeds.len();

    // Lane-major flat table of per-party decoded transcripts.
    let mut transcripts: Vec<Vec<bool>> = vec![Vec::with_capacity(t); lanes * n];
    let mut energy = vec![0usize; lanes];
    let span = beeps_observe::phase("sim.repetition.chunk");
    for _ in 0..t {
        for (lane, lane_energy) in energy.iter_mut().enumerate() {
            let base = lane * n;
            let mut beeps = 0usize;
            for i in 0..n {
                beeps += usize::from(protocol.beep(i, &inputs[i], &transcripts[base + i]));
            }
            let or = beeps > 0;
            // A party whose block had no flips hears `or` R times.
            let default_bit = ones_in_span(r as u64, 0, or) >= resolved.rep_ones as u64;
            for i in 0..n {
                transcripts[base + i].push(default_bit);
            }
            for &(party, flips) in channel.span_flips(lane, r as u64) {
                let ones = ones_in_span(r as u64, flips as u64, or);
                let slot = transcripts[base + party as usize]
                    .last_mut()
                    .expect("pushed this round");
                *slot = ones >= resolved.rep_ones as u64;
            }
            *lane_energy += r * beeps;
        }
    }
    drop(span);

    let mut results = Vec::with_capacity(lanes);
    for lane in (0..lanes).rev() {
        let views = transcripts.split_off(lane * n);
        let outputs = (0..n)
            .map(|i| protocol.output(i, &inputs[i], &views[i]))
            .collect();
        let agreement = views.iter().all(|v| v[..] == views[0][..]);
        let transcript = views.into_iter().next().expect("n >= 1 parties");
        results.push(Ok(SimOutcome::new(
            transcript,
            outputs,
            SimStats {
                channel_rounds: t * r,
                phase_rounds: PhaseRounds {
                    chunk: t * r,
                    ..Default::default()
                },
                protocol_rounds: t,
                chunks_committed: 0,
                rewinds: 0,
                agreement,
                energy: energy[lane],
                corrupted_rounds: channel.corrupted(lane) as usize,
            },
        )));
    }
    results.reverse();
    results
}

/// Runs up to 64 repetition-scheme trials lane-sliced, bitwise identical
/// to `RepetitionSimulator::simulate` per seed.
///
/// The caller guarantees `model` is a valid shared-noise model (the
/// schemes' `simulate_batch` routes independent noise and invalid ε to
/// the scalar path first).
pub(crate) fn repetition_lanes<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seeds: &[u64],
) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let mut channel =
        LaneChannel::shared(model, seeds).expect("simulate_batch routes only shared models here");
    let resolved = config.resolve(model);
    let r = config.repetitions;
    let t = protocol.length();

    let mut transcripts: Vec<Vec<bool>> = vec![Vec::with_capacity(t); seeds.len()];
    let mut energy = vec![0usize; seeds.len()];
    // Simulated rounds advance in lockstep: every lane decodes one
    // protocol round per R-round repetition block. The round's beep
    // count is a pure function of the decoded prefix, so a run of
    // lanes with equal prefixes shares one protocol evaluation — under
    // majority decode most lanes sit on the same transcript, collapsing
    // the n beep() calls per round to (nearly) one set per batch.
    let span = beeps_observe::phase("sim.repetition.chunk");
    for round in 0..t {
        let mut prev: Option<(usize, bool)> = None;
        for lane in 0..transcripts.len() {
            let reuse = lane > 0 && transcripts[lane][..] == transcripts[lane - 1][..round];
            let (beeps, or) = match (prev, reuse) {
                (Some(cached), true) => cached,
                _ => {
                    let transcript = &transcripts[lane];
                    let beeps = (0..n)
                        .filter(|&i| protocol.beep(i, &inputs[i], transcript))
                        .count();
                    (beeps, beeps > 0)
                }
            };
            prev = Some((beeps, or));
            let flips = channel.flips_in_span(lane, r as u64, or);
            let ones = ones_in_span(r as u64, flips, or);
            transcripts[lane].push(ones >= resolved.rep_ones as u64);
            energy[lane] += r * beeps;
        }
    }
    drop(span);

    transcripts
        .into_iter()
        .enumerate()
        .map(|(lane, transcript)| {
            let outputs = (0..n)
                .map(|i| protocol.output(i, &inputs[i], &transcript))
                .collect();
            Ok(SimOutcome::new(
                transcript,
                outputs,
                SimStats {
                    channel_rounds: t * r,
                    phase_rounds: PhaseRounds {
                        chunk: t * r,
                        ..Default::default()
                    },
                    protocol_rounds: t,
                    chunks_committed: 0,
                    rewinds: 0,
                    // All parties decode the shared channel identically.
                    agreement: true,
                    energy: energy[lane],
                    corrupted_rounds: channel.corrupted(lane) as usize,
                },
            ))
        })
        .collect()
}

/// Runs up to 64 rewind-scheme trials lane-sliced, bitwise identical to
/// `RewindSimulator::simulate` per seed (same transcripts, statistics,
/// and `BudgetExhausted` errors).
///
/// Lanes run independently (each lane's rewind history is its own), but
/// within a lane the per-party state machines of the scalar path are
/// collapsed into one: chunk decoding, owners bookkeeping, and the
/// committed prefix are shared under shared noise, and every
/// constant-OR span is sampled in one batched draw.
pub(crate) fn rewind_lanes<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seeds: &[u64],
) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let mut channel =
        LaneChannel::shared(model, seeds).expect("simulate_batch routes only shared models here");
    let t = protocol.length();
    let resolved = config.resolve(model);
    let code = config.build_code();
    let metric = metric_for(model);
    let next_symbol = code.alphabet_size() - 1;
    let code_len = code.codeword_len();
    let r = config.repetitions;
    let v = config.verify_repetitions;

    // Same budget formula as `RewindSimulator::simulate_over`.
    let chunks_needed = t.div_ceil(config.chunk_len).max(1);
    let ideal = chunks_needed
        * (config.chunk_len * r
            + crate::owners::OwnersState::channel_rounds(config.chunk_len, n, config.code_len)
            + v);
    let budget = (config.budget_factor * ideal as f64).ceil() as usize;

    (0..seeds.len())
        .map(|lane| {
            rewind_one_lane(
                protocol,
                inputs,
                &mut channel,
                lane,
                Params {
                    n,
                    t,
                    chunk_len: config.chunk_len,
                    r,
                    v,
                    rep_ones: resolved.rep_ones,
                    verify_ones: resolved.verify_ones,
                    budget,
                    code: &code,
                    metric,
                    next_symbol,
                    code_len,
                },
            )
        })
        .collect()
}

/// Trial-invariant parameters of one rewind batch.
struct Params<'a> {
    n: usize,
    t: usize,
    chunk_len: usize,
    r: usize,
    v: usize,
    rep_ones: usize,
    verify_ones: usize,
    budget: usize,
    code: &'a crate::owners::SharedCode,
    metric: beeps_ecc::BitMetric,
    next_symbol: usize,
    code_len: usize,
}

/// The collapsed (shared across parties) state of one rewind lane.
#[derive(Default)]
struct LaneRun {
    committed_bits: Vec<bool>,
    committed_owners: Vec<Option<usize>>,
    chunk_lens: Vec<usize>,
    /// Committed prefix plus the decoded bits of the in-flight chunk.
    working: Vec<bool>,
    chunks_committed: usize,
    rewinds: usize,
    phase_rounds: PhaseRounds,
    rounds: usize,
    energy: usize,
}

/// Party `me`'s verification flag over the working prefix — the exact
/// three conditions of `RewindParty::compute_flag`.
fn verify_flag<P: Protocol>(
    protocol: &P,
    input: &P::Input,
    me: usize,
    working: &[bool],
    committed_owners: &[Option<usize>],
    chunk_owners: &[Option<usize>],
) -> bool {
    let committed = committed_owners.len();
    for m in 0..working.len() {
        let b = protocol.beep(me, input, &working[..m]);
        if !working[m] {
            if b {
                return true; // my 1 is missing from the transcript
            }
        } else {
            let owner = if m < committed {
                committed_owners[m]
            } else {
                chunk_owners[m - committed]
            };
            match owner {
                Some(owner) => {
                    if owner == me && !b {
                        return true; // I own a 1 I would not beep
                    }
                }
                None => return true, // unowned 1: flagged by everyone
            }
        }
    }
    false
}

fn rewind_one_lane<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    channel: &mut LaneChannel,
    lane: usize,
    p: Params<'_>,
) -> Result<SimOutcome<P::Output>, SimError> {
    let mut run = LaneRun::default();
    // A span the budget cannot cover is where the scalar driver would
    // burn its remaining rounds mid-phase and stop: nothing commits, so
    // the error carries the committed count as of the last full
    // verification (`rounds_used` is always the whole budget).
    let exhausted = |run: &LaneRun| SimError::BudgetExhausted {
        rounds_used: p.budget,
        committed: run.committed_bits.len().min(p.t),
    };

    loop {
        let remaining = p.t.saturating_sub(run.committed_bits.len());
        if remaining == 0 {
            break;
        }
        let len = remaining.min(p.chunk_len);
        assert!(
            len < p.code.alphabet_size(),
            "chunk of {len} rounds needs an alphabet of at least {} symbols",
            len + 1
        );

        // --- Chunk phase: `len` simulated rounds, R channel rounds each.
        let chunk_span = beeps_observe::phase("sim.rewind.chunk");
        let mut bits: Vec<bool> = Vec::with_capacity(len);
        let mut my_bits: Vec<Vec<bool>> = vec![Vec::with_capacity(len); p.n];
        for _ in 0..len {
            if p.budget - run.rounds < p.r {
                return Err(exhausted(&run));
            }
            let mut beeps = 0usize;
            for (i, input) in inputs.iter().enumerate() {
                let b = protocol.beep(i, input, &run.working);
                my_bits[i].push(b);
                beeps += usize::from(b);
            }
            let or = beeps > 0;
            let flips = channel.flips_in_span(lane, p.r as u64, or);
            let ones = ones_in_span(p.r as u64, flips, or);
            let bit = ones >= p.rep_ones as u64;
            bits.push(bit);
            run.working.push(bit);
            run.energy += p.r * beeps;
            run.rounds += p.r;
            run.phase_rounds.chunk += p.r;
        }
        drop(chunk_span);

        // --- Owners phase: `len + n` codeword iterations.
        let owners_span = beeps_observe::phase("sim.rewind.owners");
        let mut claimed = vec![false; len];
        let mut chunk_owners: Vec<Option<usize>> = vec![None; len];
        let mut turn = 0usize;
        let mut word = PackedBits::new();
        for _ in 0..len + p.n {
            if p.budget - run.rounds < p.code_len {
                return Err(exhausted(&run));
            }
            if turn < p.n {
                // The turn-holder transmits the codeword of the smallest
                // unclaimed 1-round it beeped in, else `Next`; everyone
                // decodes the same heard word, so one decode suffices.
                let claim = (0..len).find(|&j| bits[j] && my_bits[turn][j] && !claimed[j]);
                let symbol = claim.unwrap_or(p.next_symbol);
                let codeword = p.code.encode_packed(symbol);
                word.clear();
                for idx in 0..p.code_len {
                    let or = codeword.get(idx);
                    run.energy += usize::from(or);
                    word.push(channel.step(lane, or));
                }
                let decoded = p.code.decode_packed(&word, p.metric);
                if decoded == p.next_symbol {
                    turn += 1;
                } else if decoded < len {
                    claimed[decoded] = true;
                    chunk_owners[decoded] = Some(turn);
                }
            } else {
                // Idle iteration: every party is past its turn, nobody
                // beeps, nothing is decoded — but the channel still
                // samples `code_len` silent rounds.
                channel.flips_in_span(lane, p.code_len as u64, false);
            }
            run.rounds += p.code_len;
            run.phase_rounds.owners += p.code_len;
        }
        drop(owners_span);

        // --- Verification: V rounds of the flag OR.
        let verify_span = beeps_observe::phase("sim.rewind.verify");
        if p.budget - run.rounds < p.v {
            return Err(exhausted(&run));
        }
        let flags = (0..p.n)
            .filter(|&i| {
                verify_flag(
                    protocol,
                    &inputs[i],
                    i,
                    &run.working,
                    &run.committed_owners,
                    &chunk_owners,
                )
            })
            .count();
        let or = flags > 0;
        let flips = channel.flips_in_span(lane, p.v as u64, or);
        let ones = ones_in_span(p.v as u64, flips, or);
        let failed = ones >= p.verify_ones as u64;
        run.energy += p.v * flags;
        run.rounds += p.v;
        run.phase_rounds.verify += p.v;
        drop(verify_span);

        if failed {
            run.rewinds += 1;
            beeps_observe::mark("sim.rewind.rewind");
            // Discard the pending chunk and pop one committed chunk.
            if let Some(popped) = run.chunk_lens.pop() {
                let new_len = run.committed_bits.len() - popped;
                run.committed_bits.truncate(new_len);
                run.committed_owners.truncate(new_len);
                run.chunks_committed = run.chunks_committed.saturating_sub(1);
            }
        } else {
            run.committed_bits.extend_from_slice(&bits);
            run.committed_owners.extend_from_slice(&chunk_owners);
            run.chunk_lens.push(bits.len());
            run.chunks_committed += 1;
        }
        run.working.truncate(run.committed_bits.len());
    }

    let transcript: Vec<bool> = run.committed_bits[..p.t].to_vec();
    let outputs = (0..p.n)
        .map(|i| protocol.output(i, &inputs[i], &transcript))
        .collect();
    let stats = SimStats {
        channel_rounds: run.rounds,
        phase_rounds: run.phase_rounds,
        protocol_rounds: p.t,
        chunks_committed: run.chunks_committed,
        rewinds: run.rewinds,
        // Shared noise keeps every party's bookkeeping in lockstep.
        agreement: true,
        energy: run.energy,
        corrupted_rounds: channel.corrupted(lane) as usize,
    };
    Ok(SimOutcome::new(transcript, outputs, stats))
}
