//! Collapsed struct-of-arrays engines for million-party simulation.
//!
//! The scalar `simulate` path keeps one heap-allocated state machine per
//! party — an array-of-structs layout whose per-round cost is `O(n)`
//! pointer-chasing `hear` calls and whose committed transcript costs
//! `O(T · n)` memory (every party stores its own copy). Under every
//! *shared*-delivery regime (all models except `Independent`) that
//! redundancy is structural: each party hears the same bit each round, so
//! decoded chunk bits, owners bookkeeping, and the committed prefix are
//! identical across parties. The engines here exploit the collapse the
//! same way the lane engines in [`crate::lanes`] do, but for a *single*
//! trial at very large `n`:
//!
//! * **Struct-of-arrays party state** — the only per-party facts are
//!   "would party `i` beep in simulated round `m`" and "does party `i`
//!   currently raise the verification flag". Both are stored as packed
//!   `n`-bit rows of `u64` words (the party axis is the bit axis), so
//!   per-round updates stream through `⌈n/64⌉` contiguous words instead
//!   of `n` scattered structs.
//! * **Windowed verification state** — a party's verification flag over a
//!   committed prefix is a *per-chunk* property: a committed chunk's
//!   violation row (which parties would flag it) is immutable for as long
//!   as the chunk stays committed, because the prefix below it never
//!   changes. The engine keeps a stack with one cumulative-OR row per
//!   committed chunk, retains only the most recent
//!   [`SimulatorConfig::verify_window`](crate::SimulatorConfig) rows
//!   exactly (older rows are evicted down to a digest), and recomputes
//!   from the transcript in the rare event a rewind storm pops past the
//!   window. Memory is `O(T + window · n/64 words)` instead of
//!   `O(T · n)`.
//! * **Exact channel replay** — the engine feeds the stochastic channel
//!   the exact per-round OR sequence the scalar parties would produce,
//!   so the RNG stream, and therefore every transcript, statistic, and
//!   `BudgetExhausted` error, is **bitwise identical** to the scalar
//!   path (pinned in `tests/packed_equivalence.rs`).
//!
//! All scratch buffers live in a [`SoaScratch`] arena so a worker thread
//! can run many trials through `TrialRunner::run_with_scratch` without
//! per-trial allocation.

use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::owners::metric_for;
use crate::params::SimulatorConfig;
use beeps_channel::{Channel, NoiseModel, Protocol, StochasticChannel};
use beeps_ecc::bits::PackedBits;

/// Reads bit `i` of a packed party row.
#[inline]
fn row_get(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

/// Sets bit `i` of a packed party row.
#[inline]
fn row_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

/// Number of set bits in a packed party row.
#[inline]
fn row_count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// ORs `src` into `dst` word by word.
#[inline]
fn row_or(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Sets all `n` party bits (and keeps the tail bits of the last word
/// zero, so popcounts stay exact).
fn row_fill(words: &mut [u64], n: usize) {
    for w in words.iter_mut() {
        *w = u64::MAX;
    }
    if !n.is_multiple_of(64) {
        let last = words.len() - 1;
        words[last] &= (1u64 << (n % 64)) - 1;
    }
}

/// FNV-style fold of a packed row, the integrity marker kept for rows
/// evicted past the verification window (checked when a rewind storm
/// forces the row to be recomputed from the transcript).
fn row_digest(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One committed chunk on the verification stack: the cumulative OR of
/// all violation rows up to and including this chunk (exact inside the
/// retention window, evicted to `None` beyond it) plus the digest of
/// this chunk's own violation row.
struct CumEntry {
    cum: Option<Vec<u64>>,
    viol_digest: u64,
}

impl CumEntry {
    /// The materialized cumulative violation row.
    ///
    /// # Panics
    ///
    /// Panics if the row was evicted from the retention window — the
    /// engines rematerialize the window (see [`rematerialize_window`])
    /// before reading past entries, so a panic here is an engine bug,
    /// not a recoverable condition.
    fn row(&self) -> &[u64] {
        self.cum.as_ref().expect("stack entry inside the window")
    }
}

/// A shared-delivery channel viewed as a stream of heard OR bits — the
/// seam between the collapsed engine bodies and their channel backends.
///
/// The collapsed engines are generic over this trait so the same
/// round-for-round body drives both the scalar [`StochasticChannel`]
/// (one trial) and one lane of a [`beeps_channel::LaneChannel`] (up to
/// 64 trials per word, see [`crate::lanes`]). Implementations must be
/// RNG-identical to the scalar channel: `ones(span, or)` must consume
/// exactly the draws of `span` consecutive `bit(or)` calls, and
/// `corrupted` must count every flipped delivery either way.
pub(crate) trait SharedBits {
    /// One channel round with true OR `or`; returns the heard bit.
    fn bit(&mut self, or: bool) -> bool;

    /// `span` consecutive rounds with constant true OR `or`; returns
    /// how many deliveries were heard as 1.
    fn ones(&mut self, span: usize, or: bool) -> usize;

    /// Corrupted rounds delivered so far.
    fn corrupted(&self) -> usize;
}

/// The scalar backend: one freshly seeded [`StochasticChannel`] serving
/// one trial.
pub(crate) struct ScalarBits {
    channel: StochasticChannel,
}

impl ScalarBits {
    /// Wraps a channel seeded for this trial.
    pub(crate) fn new(channel: StochasticChannel) -> Self {
        Self { channel }
    }
}

impl SharedBits for ScalarBits {
    /// # Panics
    ///
    /// Panics if the channel hands back a per-party delivery: the
    /// collapsed engines only run under shared-noise models, whose
    /// deliveries are a single bit by construction.
    fn bit(&mut self, or: bool) -> bool {
        self.channel.transmit(or).shared().expect("shared delivery")
    }

    fn ones(&mut self, span: usize, or: bool) -> usize {
        let mut ones = 0usize;
        for _ in 0..span {
            ones += usize::from(self.bit(or));
        }
        ones
    }

    fn corrupted(&self) -> usize {
        self.channel.corrupted_rounds()
    }
}

/// Reusable buffers of the collapsed engines; hand one to
/// [`RewindSimulator::simulate_with_scratch`](crate::RewindSimulator::simulate_with_scratch)
/// (typically from a `run_with_scratch` worker arena) to run many trials
/// without per-trial allocation. A `Default`-constructed scratch is
/// empty and grows to the working-set size of the first trial.
#[derive(Default)]
pub struct SoaScratch {
    /// Beep rows of the pending chunk, `len × words` flat.
    cols: Vec<u64>,
    /// Violation row of the pending chunk.
    viol: Vec<u64>,
    /// Flag row assembled for one verification vote.
    flags: Vec<u64>,
    /// Decoded bits of the pending chunk.
    bits: Vec<bool>,
    /// Owners bookkeeping of the pending chunk.
    claimed: Vec<bool>,
    chunk_owners: Vec<Option<usize>>,
    /// Per-round beep bit of the schedule owner (owned-rounds engine).
    owner_beeps: Vec<bool>,
    /// Witnessed-erasure rows of the one-to-zero engine: `(position,
    /// parties that beeped the erased 1)`, ascending by position.
    marks: Vec<(usize, Vec<u64>)>,
    /// Check levels scheduled after the current data slot.
    levels: Vec<usize>,
    /// Committed transcript (single shared copy — not per party).
    committed_bits: Vec<bool>,
    committed_owners: Vec<Option<usize>>,
    chunk_lens: Vec<usize>,
    /// Committed prefix plus the decoded bits of the in-flight chunk.
    working: Vec<bool>,
    /// Per-committed-chunk cumulative violation rows (windowed).
    stack: Vec<CumEntry>,
    /// Recycled row buffers for the stack.
    pool: Vec<Vec<u64>>,
}

impl std::fmt::Debug for SoaScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoaScratch")
            .field("committed_bits", &self.committed_bits.len())
            .field("stack", &self.stack.len())
            .finish_non_exhaustive()
    }
}

impl SoaScratch {
    /// Resets per-trial state, returning stack rows to the pool.
    fn reset(&mut self) {
        self.bits.clear();
        self.committed_bits.clear();
        self.committed_owners.clear();
        self.chunk_lens.clear();
        self.working.clear();
        while let Some(entry) = self.stack.pop() {
            if let Some(buf) = entry.cum {
                self.pool.push(buf);
            }
        }
        while let Some((_, row)) = self.marks.pop() {
            self.pool.push(row);
        }
        self.levels.clear();
    }

    /// Words currently held by the verification stack plus its pool —
    /// the windowed part of the memory footprint, exposed so the scale
    /// experiment can report it.
    pub fn retained_words(&self) -> usize {
        let live: usize = self
            .stack
            .iter()
            .map(|e| e.cum.as_ref().map_or(0, Vec::len))
            .sum();
        let pooled: usize = self.pool.iter().map(Vec::len).sum();
        live + pooled
    }
}

/// The collapsed rewind-scheme engine. Caller guarantees `model` is a
/// validated shared-delivery model; `Independent` noise must take the
/// scalar path (per-party deliveries break the collapse).
pub(crate) fn rewind_collapsed<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seed: u64,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let channel = StochasticChannel::new(protocol.num_parties(), model, seed);
    rewind_collapsed_over(
        protocol,
        config,
        inputs,
        model,
        ScalarBits::new(channel),
        scratch,
    )
}

/// [`rewind_collapsed`] generic over the channel backend — the body the
/// lane engines in [`crate::lanes`] re-drive one lane at a time.
pub(crate) fn rewind_collapsed_over<P: Protocol, S: SharedBits>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    mut source: S,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let t = protocol.length();
    let resolved = config.resolve(model);
    let code = config.build_code();
    let metric = metric_for(model);
    let next_symbol = code.alphabet_size() - 1;
    let code_len = code.codeword_len();
    let r = config.repetitions;
    let v = config.verify_repetitions;
    let words = n.div_ceil(64);
    let window = config.verify_window.max(1);

    // Same budget formula as `RewindSimulator::simulate_over`.
    let chunks_needed = t.div_ceil(config.chunk_len).max(1);
    let ideal = chunks_needed
        * (config.chunk_len * r
            + crate::owners::OwnersState::channel_rounds(config.chunk_len, n, config.code_len)
            + v);
    let budget = (config.budget_factor * ideal as f64).ceil() as usize;

    scratch.reset();
    let corrupted_before = source.corrupted();
    let mut rounds = 0usize;
    let mut energy = 0usize;
    let mut phase_rounds = PhaseRounds::default();
    let mut chunks_committed = 0usize;
    let mut rewinds = 0usize;
    let mut word = PackedBits::new();

    // A span the budget cannot cover is where the scalar driver would
    // burn its remaining rounds mid-phase and stop: nothing commits, so
    // `rounds_used` is always the whole budget and `committed` is the
    // count as of the last completed verification.
    let exhausted = |scratch: &SoaScratch| SimError::BudgetExhausted {
        rounds_used: budget,
        committed: scratch.committed_bits.len().min(t),
    };

    loop {
        let remaining = t.saturating_sub(scratch.committed_bits.len());
        if remaining == 0 {
            break;
        }
        let len = remaining.min(config.chunk_len);
        assert!(
            len < code.alphabet_size(),
            "chunk of {len} rounds needs an alphabet of at least {} symbols",
            len + 1
        );

        // --- Chunk phase: `len` simulated rounds, R channel rounds each.
        // The beep rows double as the owners phase's claim table and the
        // verification phase's would-beep evidence.
        let chunk_span = beeps_observe::phase("sim.rewind.chunk");
        scratch.bits.clear();
        scratch.cols.clear();
        scratch.cols.resize(len * words, 0);
        for j in 0..len {
            if budget - rounds < r {
                return Err(exhausted(scratch));
            }
            let col = &mut scratch.cols[j * words..(j + 1) * words];
            let mut beeps = 0usize;
            for (i, input) in inputs.iter().enumerate() {
                if protocol.beep(i, input, &scratch.working) {
                    row_set(col, i);
                    beeps += 1;
                }
            }
            let or = beeps > 0;
            let ones = source.ones(r, or);
            let bit = ones >= resolved.rep_ones;
            scratch.bits.push(bit);
            scratch.working.push(bit);
            energy += r * beeps;
            rounds += r;
            phase_rounds.chunk += r;
        }
        drop(chunk_span);

        // --- Owners phase: `len + n` codeword iterations, decoded once
        // (every party hears the same word) instead of once per party.
        let owners_span = beeps_observe::phase("sim.rewind.owners");
        scratch.claimed.clear();
        scratch.claimed.resize(len, false);
        scratch.chunk_owners.clear();
        scratch.chunk_owners.resize(len, None);
        let mut turn = 0usize;
        for _ in 0..len + n {
            if budget - rounds < code_len {
                return Err(exhausted(scratch));
            }
            if turn < n {
                // The turn-holder transmits the codeword of the smallest
                // unclaimed 1-round it beeped in, else `Next`.
                let claim = (0..len).find(|&j| {
                    scratch.bits[j]
                        && !scratch.claimed[j]
                        && row_get(&scratch.cols[j * words..(j + 1) * words], turn)
                });
                let symbol = claim.unwrap_or(next_symbol);
                let codeword = code.encode_packed(symbol);
                word.clear();
                for idx in 0..code_len {
                    let or = codeword.get(idx);
                    energy += usize::from(or);
                    word.push(source.bit(or));
                }
                let decoded = code.decode_packed(&word, metric);
                if decoded == next_symbol {
                    turn += 1;
                } else if decoded < len {
                    scratch.claimed[decoded] = true;
                    scratch.chunk_owners[decoded] = Some(turn);
                }
            } else {
                // Idle iteration: every party is past its turn, nobody
                // beeps — but the channel still delivers silent rounds.
                let _ = source.ones(code_len, false);
            }
            rounds += code_len;
            phase_rounds.owners += code_len;
        }
        drop(owners_span);

        // --- Verification: V rounds of the flag OR. The flag row is the
        // cumulative violation row of the committed prefix (top of the
        // stack, O(1)) ORed with the pending chunk's fresh violations —
        // no per-party transcript re-walk.
        let verify_span = beeps_observe::phase("sim.rewind.verify");
        if budget - rounds < v {
            return Err(exhausted(scratch));
        }
        scratch.viol.clear();
        scratch.viol.resize(words, 0);
        for j in 0..len {
            let col = &scratch.cols[j * words..(j + 1) * words];
            if !scratch.bits[j] {
                // Condition (a): a 0-round some party would beep in.
                row_or(&mut scratch.viol, col);
            } else {
                match scratch.chunk_owners[j] {
                    // Condition (c): an unowned 1 is flagged by everyone.
                    None => {
                        row_fill(&mut scratch.viol, n);
                        break;
                    }
                    // Condition (b): the owner itself would not beep.
                    Some(owner) => {
                        if !row_get(col, owner) {
                            row_set(&mut scratch.viol, owner);
                        }
                    }
                }
            }
        }
        scratch.flags.clear();
        scratch.flags.extend_from_slice(&scratch.viol);
        if let Some(top) = scratch.stack.last() {
            let cum = top.row();
            row_or(&mut scratch.flags, cum);
        }
        let flag_count = row_count(&scratch.flags);
        let or = flag_count > 0;
        let ones = source.ones(v, or);
        let failed = ones >= resolved.verify_ones;
        energy += v * flag_count;
        rounds += v;
        phase_rounds.verify += v;
        drop(verify_span);

        if failed {
            rewinds += 1;
            beeps_observe::mark("sim.rewind.rewind");
            // Discard the pending chunk and pop one committed chunk.
            if let Some(popped) = scratch.chunk_lens.pop() {
                let new_len = scratch.committed_bits.len() - popped;
                scratch.committed_bits.truncate(new_len);
                scratch.committed_owners.truncate(new_len);
                chunks_committed = chunks_committed.saturating_sub(1);
                if let Some(entry) = scratch.stack.pop() {
                    if let Some(buf) = entry.cum {
                        scratch.pool.push(buf);
                    }
                }
                if scratch.stack.last().is_some_and(|e| e.cum.is_none()) {
                    // The rewind popped past the retention window:
                    // re-derive the violation rows from the transcript.
                    let SoaScratch {
                        committed_bits,
                        committed_owners,
                        chunk_lens,
                        stack,
                        pool,
                        ..
                    } = &mut *scratch;
                    rematerialize_window(chunk_lens, stack, pool, words, window, |m, viol| {
                        let prefix = &committed_bits[..m];
                        if !committed_bits[m] {
                            for (i, input) in inputs.iter().enumerate() {
                                if protocol.beep(i, input, prefix) {
                                    row_set(viol, i);
                                }
                            }
                        } else {
                            match committed_owners[m] {
                                None => row_fill(viol, n),
                                Some(owner) => {
                                    if !protocol.beep(owner, &inputs[owner], prefix) {
                                        row_set(viol, owner);
                                    }
                                }
                            }
                        }
                    });
                }
            }
        } else {
            scratch.committed_bits.extend_from_slice(&scratch.bits);
            scratch
                .committed_owners
                .extend_from_slice(&scratch.chunk_owners);
            scratch.chunk_lens.push(scratch.bits.len());
            chunks_committed += 1;
            let mut cum = scratch.pool.pop().unwrap_or_default();
            cum.clear();
            cum.extend_from_slice(&scratch.viol);
            if let Some(top) = scratch.stack.last() {
                let prev = top.row();
                row_or(&mut cum, prev);
            }
            scratch.stack.push(CumEntry {
                cum: Some(cum),
                viol_digest: row_digest(&scratch.viol),
            });
            if scratch.stack.len() > window {
                let evict = scratch.stack.len() - window - 1;
                if let Some(buf) = scratch.stack[evict].cum.take() {
                    scratch.pool.push(buf);
                }
            }
        }
        scratch.working.truncate(scratch.committed_bits.len());
    }

    let mut transcript = Vec::with_capacity(t);
    transcript.extend_from_slice(&scratch.committed_bits[..t]);
    let mut outputs = Vec::with_capacity(n);
    for (i, input) in inputs.iter().enumerate() {
        outputs.push(protocol.output(i, input, &transcript));
    }
    let stats = SimStats {
        channel_rounds: rounds,
        phase_rounds,
        protocol_rounds: t,
        chunks_committed,
        rewinds,
        // Shared noise keeps every party's bookkeeping in lockstep.
        agreement: true,
        energy,
        corrupted_rounds: source.corrupted() - corrupted_before,
    };
    Ok(SimOutcome::new(transcript, outputs, stats))
}

/// The collapsed repetition engine: every simulated round is `R`
/// channel rounds decoded by one threshold majority — shared delivery
/// keeps every party's decoded transcript identical, so one copy
/// suffices and the per-party state machines of
/// [`RepetitionSimulator::simulate_over`](crate::RepetitionSimulator::simulate_over)
/// collapse entirely. Caller guarantees `model` is a validated
/// shared-delivery model; `Independent` noise must take the scalar path.
pub(crate) fn repetition_collapsed<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seed: u64,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let channel = StochasticChannel::new(protocol.num_parties(), model, seed);
    repetition_collapsed_over(
        protocol,
        config,
        inputs,
        model,
        ScalarBits::new(channel),
        scratch,
    )
}

/// [`repetition_collapsed`] generic over the channel backend.
pub(crate) fn repetition_collapsed_over<P: Protocol, S: SharedBits>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    mut source: S,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let t = protocol.length();
    let resolved = config.resolve(model);
    let r = config.repetitions;

    scratch.reset();
    let corrupted_before = source.corrupted();
    let mut energy = 0usize;
    let chunk_span = beeps_observe::phase("sim.repetition.chunk");
    for _ in 0..t {
        let mut beeps = 0usize;
        for (i, input) in inputs.iter().enumerate() {
            if protocol.beep(i, input, &scratch.committed_bits) {
                beeps += 1;
            }
        }
        let or = beeps > 0;
        let ones = source.ones(r, or);
        scratch.committed_bits.push(ones >= resolved.rep_ones);
        energy += r * beeps;
    }
    drop(chunk_span);

    let mut transcript = Vec::with_capacity(t);
    transcript.extend_from_slice(&scratch.committed_bits);
    let mut outputs = Vec::with_capacity(n);
    for (i, input) in inputs.iter().enumerate() {
        outputs.push(protocol.output(i, input, &transcript));
    }
    let stats = SimStats {
        channel_rounds: t * r,
        phase_rounds: PhaseRounds {
            chunk: t * r,
            ..Default::default()
        },
        protocol_rounds: t,
        chunks_committed: 0,
        rewinds: 0,
        agreement: true,
        energy,
        corrupted_rounds: source.corrupted() - corrupted_before,
    };
    Ok(SimOutcome::new(transcript, outputs, stats))
}

/// The collapsed owned-rounds engine: chunked repetition plus the
/// verification vote, no owners phase — the schedule already names each
/// round's only legal beeper, so a chunk's violation row has at most
/// one settable bit per round (the owner whose committed bit disagrees
/// with its own beep). Caller guarantees `model` is a validated
/// shared-delivery model.
pub(crate) fn owned_rounds_collapsed<P: beeps_channel::UniquelyOwned>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seed: u64,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let channel = StochasticChannel::new(protocol.num_parties(), model, seed);
    owned_rounds_collapsed_over(
        protocol,
        config,
        inputs,
        model,
        ScalarBits::new(channel),
        scratch,
    )
}

/// [`owned_rounds_collapsed`] generic over the channel backend.
pub(crate) fn owned_rounds_collapsed_over<P: beeps_channel::UniquelyOwned, S: SharedBits>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    mut source: S,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let t = protocol.length();
    let resolved = config.resolve(model);
    let r = config.repetitions;
    let v = config.verify_repetitions;
    let words = n.div_ceil(64);
    let window = config.verify_window.max(1);

    // Same budget formula as `OwnedRoundsSimulator::simulate_over`.
    let chunks_needed = t.div_ceil(config.chunk_len).max(1);
    let per_iteration = config.chunk_len * r + v;
    let budget = (config.budget_factor * (chunks_needed * per_iteration) as f64).ceil() as usize;

    scratch.reset();
    let corrupted_before = source.corrupted();
    let mut rounds = 0usize;
    let mut energy = 0usize;
    let mut phase_rounds = PhaseRounds::default();
    let mut chunks_committed = 0usize;
    let mut rewinds = 0usize;

    let exhausted = |scratch: &SoaScratch| SimError::BudgetExhausted {
        rounds_used: budget,
        committed: scratch.committed_bits.len().min(t),
    };

    loop {
        let committed_len = scratch.committed_bits.len();
        let remaining = t.saturating_sub(committed_len);
        if remaining == 0 {
            break;
        }
        let len = remaining.min(config.chunk_len);

        // --- Chunk phase: `len` simulated rounds, R channel rounds each.
        // Only the round owner's beep bit is evidence for verification,
        // so that is the only per-party fact recorded.
        let chunk_span = beeps_observe::phase("sim.owned_rounds.chunk");
        scratch.bits.clear();
        scratch.owner_beeps.clear();
        for j in 0..len {
            if budget - rounds < r {
                return Err(exhausted(scratch));
            }
            let owner = protocol.round_owner(committed_len + j);
            let mut beeps = 0usize;
            let mut owner_beep = false;
            for (i, input) in inputs.iter().enumerate() {
                if protocol.beep(i, input, &scratch.working) {
                    beeps += 1;
                    if i == owner {
                        owner_beep = true;
                    }
                }
            }
            let or = beeps > 0;
            let ones = source.ones(r, or);
            let bit = ones >= resolved.rep_ones;
            scratch.bits.push(bit);
            scratch.owner_beeps.push(owner_beep);
            scratch.working.push(bit);
            energy += r * beeps;
            rounds += r;
            phase_rounds.chunk += r;
        }
        drop(chunk_span);

        // --- Verification: V rounds of the owner-only flag OR.
        let verify_span = beeps_observe::phase("sim.owned_rounds.verify");
        if budget - rounds < v {
            return Err(exhausted(scratch));
        }
        scratch.viol.clear();
        scratch.viol.resize(words, 0);
        for j in 0..len {
            if scratch.owner_beeps[j] != scratch.bits[j] {
                row_set(&mut scratch.viol, protocol.round_owner(committed_len + j));
            }
        }
        scratch.flags.clear();
        scratch.flags.extend_from_slice(&scratch.viol);
        if let Some(top) = scratch.stack.last() {
            let cum = top.row();
            row_or(&mut scratch.flags, cum);
        }
        let flag_count = row_count(&scratch.flags);
        let or = flag_count > 0;
        let ones = source.ones(v, or);
        let failed = ones >= resolved.verify_ones;
        energy += v * flag_count;
        rounds += v;
        phase_rounds.verify += v;
        drop(verify_span);

        if failed {
            rewinds += 1;
            beeps_observe::mark("sim.owned_rounds.rewind");
            if let Some(popped) = scratch.chunk_lens.pop() {
                let new_len = scratch.committed_bits.len() - popped;
                scratch.committed_bits.truncate(new_len);
                chunks_committed = chunks_committed.saturating_sub(1);
                if let Some(entry) = scratch.stack.pop() {
                    if let Some(buf) = entry.cum {
                        scratch.pool.push(buf);
                    }
                }
                if scratch.stack.last().is_some_and(|e| e.cum.is_none()) {
                    let SoaScratch {
                        committed_bits,
                        chunk_lens,
                        stack,
                        pool,
                        ..
                    } = &mut *scratch;
                    rematerialize_window(chunk_lens, stack, pool, words, window, |m, viol| {
                        let owner = protocol.round_owner(m);
                        let b = protocol.beep(owner, &inputs[owner], &committed_bits[..m]);
                        if b != committed_bits[m] {
                            row_set(viol, owner);
                        }
                    });
                }
            }
        } else {
            scratch.committed_bits.extend_from_slice(&scratch.bits);
            scratch.chunk_lens.push(scratch.bits.len());
            chunks_committed += 1;
            let mut cum = scratch.pool.pop().unwrap_or_default();
            cum.clear();
            cum.extend_from_slice(&scratch.viol);
            if let Some(top) = scratch.stack.last() {
                let prev = top.row();
                row_or(&mut cum, prev);
            }
            scratch.stack.push(CumEntry {
                cum: Some(cum),
                viol_digest: row_digest(&scratch.viol),
            });
            if scratch.stack.len() > window {
                let evict = scratch.stack.len() - window - 1;
                if let Some(buf) = scratch.stack[evict].cum.take() {
                    scratch.pool.push(buf);
                }
            }
        }
        scratch.working.truncate(scratch.committed_bits.len());
    }

    let mut transcript = Vec::with_capacity(t);
    transcript.extend_from_slice(&scratch.committed_bits[..t]);
    let mut outputs = Vec::with_capacity(n);
    for (i, input) in inputs.iter().enumerate() {
        outputs.push(protocol.output(i, input, &transcript));
    }
    let stats = SimStats {
        channel_rounds: rounds,
        phase_rounds,
        protocol_rounds: t,
        chunks_committed,
        rewinds,
        agreement: true,
        energy,
        corrupted_rounds: source.corrupted() - corrupted_before,
    };
    Ok(SimOutcome::new(transcript, outputs, stats))
}

/// The collapsed one-to-zero engine: direct data rounds with the
/// hierarchy of geometric checkpoints. The per-party state of the
/// scalar path (each party's private error marks) collapses to one row
/// per witnessed erasure — the parties that beeped the erased 1 — and
/// the check-round flag OR is the running OR of the active rows.
/// Caller guarantees `model` is validated and is `OneSidedOneToZero`
/// or `Noiseless`.
pub(crate) fn one_to_zero_collapsed<P: Protocol>(
    protocol: &P,
    base: usize,
    budget_factor: f64,
    inputs: &[P::Input],
    model: NoiseModel,
    seed: u64,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let channel = StochasticChannel::new(protocol.num_parties(), model, seed);
    one_to_zero_collapsed_over(
        protocol,
        base,
        budget_factor,
        inputs,
        ScalarBits::new(channel),
        scratch,
    )
}

/// [`one_to_zero_collapsed`] generic over the channel backend. (The
/// noise model only seeds the channel, so the generic body does not
/// take it.)
pub(crate) fn one_to_zero_collapsed_over<P: Protocol, S: SharedBits>(
    protocol: &P,
    base: usize,
    budget_factor: f64,
    inputs: &[P::Input],
    mut source: S,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let t = protocol.length();
    let words = n.div_ceil(64);
    // Same level schedule and budget as `OneToZeroSimulator::simulate_over`.
    let max_level = (usize::BITS - t.next_power_of_two().leading_zeros()) as usize + 1;
    let final_rounds = base * (max_level + 2);
    let budget = (budget_factor * t.max(1) as f64).ceil() as usize + base * (max_level + 2) * 4;

    scratch.reset();
    let corrupted_before = source.corrupted();
    let mut rounds = 0usize;
    let mut energy = 0usize;
    let mut phase_rounds = PhaseRounds::default();
    let mut rewinds = 0usize;
    let mut slot = 0usize;
    // Running OR of the active mark rows = the check-round flag row.
    scratch.flags.clear();
    scratch.flags.resize(words, 0);

    let exhausted = |scratch: &SoaScratch| SimError::BudgetExhausted {
        rounds_used: budget,
        committed: scratch.committed_bits.len().min(t),
    };

    let done = 'sim: loop {
        // --- One data round simulating protocol round `|σ|`.
        if budget - rounds < 1 {
            return Err(exhausted(scratch));
        }
        scratch.viol.clear();
        scratch.viol.resize(words, 0);
        let mut beeps = 0usize;
        for (i, input) in inputs.iter().enumerate() {
            if protocol.beep(i, input, &scratch.committed_bits) {
                row_set(&mut scratch.viol, i);
                beeps += 1;
            }
        }
        let or = beeps > 0;
        let heard = source.bit(or);
        scratch.committed_bits.push(heard);
        if or && !heard {
            // An erasure, witnessed by exactly the parties that beeped.
            let mut row = scratch.pool.pop().unwrap_or_default();
            row.clear();
            row.extend_from_slice(&scratch.viol);
            row_or(&mut scratch.flags, &row);
            scratch.marks.push((scratch.committed_bits.len() - 1, row));
        }
        slot += 1;
        rounds += 1;
        energy += beeps;
        phase_rounds.chunk += 1;

        // --- The checks scheduled after this slot, then possibly the
        // final confirmation (mirrors `start_check`/`after_checks`).
        scratch.levels.clear();
        for j in 1..=max_level {
            if !slot.is_multiple_of(1usize << j) {
                break;
            }
            scratch.levels.push(j);
        }
        let mut li = 0usize;
        let mut is_final = false;
        loop {
            if li >= scratch.levels.len() {
                // `after_checks`: transcript complete → final check,
                // otherwise back to a data round.
                if scratch.committed_bits.len() >= t {
                    scratch.levels.clear();
                    scratch.levels.push(max_level);
                    li = 0;
                    is_final = true;
                    continue;
                }
                break;
            }
            let level = scratch.levels[li];
            li += 1;
            let rounds_in_level = if is_final { final_rounds } else { base * level };
            if budget - rounds < rounds_in_level {
                return Err(exhausted(scratch));
            }
            let flag_count = row_count(&scratch.flags);
            let or = flag_count > 0;
            let heard_any = source.ones(rounds_in_level, or) > 0;
            rounds += rounds_in_level;
            energy += rounds_in_level * flag_count;
            phase_rounds.verify += rounds_in_level;
            if heard_any {
                // A heard flag is never false under 1→0 noise.
                rewinds += 1;
                let new_len = scratch.committed_bits.len().saturating_sub(1usize << level);
                scratch.committed_bits.truncate(new_len);
                while scratch.marks.last().is_some_and(|(p, _)| *p >= new_len) {
                    let (_, row) = scratch.marks.pop().expect("checked non-empty");
                    scratch.pool.push(row);
                }
                scratch.flags.clear();
                scratch.flags.resize(words, 0);
                for (_, row) in scratch.marks.iter() {
                    row_or(&mut scratch.flags, row);
                }
                if is_final {
                    // Confirmation failed: back through `after_checks`.
                    li = scratch.levels.len();
                    is_final = false;
                    continue;
                }
            } else if is_final {
                break 'sim true;
            }
        }
    };
    debug_assert!(done);

    let mut transcript = Vec::with_capacity(t);
    transcript.extend_from_slice(&scratch.committed_bits[..t]);
    let mut outputs = Vec::with_capacity(n);
    for (i, input) in inputs.iter().enumerate() {
        outputs.push(protocol.output(i, input, &transcript));
    }
    let stats = SimStats {
        channel_rounds: rounds,
        phase_rounds,
        protocol_rounds: t,
        chunks_committed: 0,
        rewinds,
        agreement: true,
        energy,
        corrupted_rounds: source.corrupted() - corrupted_before,
    };
    Ok(SimOutcome::new(transcript, outputs, stats))
}

/// Binary-search steps for a window of `w + 1` candidate boundaries —
/// the collapsed `HierParty::steps_for`, kept operation-for-operation
/// identical so both paths walk the same search schedule.
fn steps_for(w: usize) -> usize {
    (usize::BITS - w.next_power_of_two().leading_zeros()) as usize + 1
}

/// Assembles the progress-check flag row for chunk boundary `boundary`
/// into `scratch.flags` and returns its popcount. A party flags the
/// boundary iff its `flag_for_boundary` walk over the first `boundary`
/// chunks finds a violation, which is exactly bit `i` of the cumulative
/// violation OR through chunk `boundary - 1`: `O(1)` from the stack
/// inside the retention window, recomputed from the committed transcript
/// (digest-checked chunk by chunk) when a deep check probes past it.
fn boundary_flags<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    words: usize,
    boundary: usize,
    scratch: &mut SoaScratch,
) -> usize {
    let n = protocol.num_parties();
    let SoaScratch {
        flags,
        viol,
        committed_bits,
        committed_owners,
        chunk_lens,
        stack,
        ..
    } = scratch;
    flags.clear();
    if boundary == 0 {
        flags.resize(words, 0);
        return 0;
    }
    if let Some(cum) = stack[boundary - 1].cum.as_ref() {
        flags.extend_from_slice(cum);
        return row_count(flags);
    }
    // Evicted entries form a prefix of the stack, so everything below
    // `boundary` needs one transcript pass (the same work one scalar
    // party's `flag_for_boundary` does).
    flags.resize(words, 0);
    let mut pos = 0usize;
    for (k, &clen) in chunk_lens.iter().take(boundary).enumerate() {
        viol.clear();
        viol.resize(words, 0);
        for _ in 0..clen {
            let prefix = &committed_bits[..pos];
            if !committed_bits[pos] {
                for (i, input) in inputs.iter().enumerate() {
                    if protocol.beep(i, input, prefix) {
                        row_set(viol, i);
                    }
                }
            } else {
                match committed_owners[pos] {
                    None => row_fill(viol, n),
                    Some(owner) => {
                        if !protocol.beep(owner, &inputs[owner], prefix) {
                            row_set(viol, owner);
                        }
                    }
                }
            }
            pos += 1;
        }
        debug_assert_eq!(
            row_digest(viol),
            stack[k].viol_digest,
            "recomputed violation row diverged from its commit-time digest"
        );
        row_or(flags, viol);
    }
    row_count(flags)
}

/// Truncates the committed prefix to exactly `boundary` chunks — the
/// collapsed `HierParty::truncate_to`, plus the stack bookkeeping: one
/// entry per popped chunk goes back to the pool, and if the pops expose
/// an evicted row the retention window is re-derived from the
/// transcript. Returns whether anything was truncated (the scalar
/// counts those as rewinds).
fn truncate_chunks<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    words: usize,
    window: usize,
    boundary: usize,
    scratch: &mut SoaScratch,
) -> bool {
    if boundary >= scratch.chunk_lens.len() {
        return false;
    }
    let n = protocol.num_parties();
    let mut keep = 0usize;
    for &len in scratch.chunk_lens.iter().take(boundary) {
        keep += len;
    }
    scratch.committed_bits.truncate(keep);
    scratch.committed_owners.truncate(keep);
    scratch.chunk_lens.truncate(boundary);
    scratch.working.truncate(keep);
    while scratch.stack.len() > boundary {
        if let Some(entry) = scratch.stack.pop() {
            if let Some(buf) = entry.cum {
                scratch.pool.push(buf);
            }
        }
    }
    if scratch.stack.last().is_some_and(|e| e.cum.is_none()) {
        let SoaScratch {
            committed_bits,
            committed_owners,
            chunk_lens,
            stack,
            pool,
            ..
        } = &mut *scratch;
        rematerialize_window(chunk_lens, stack, pool, words, window, |m, viol| {
            let prefix = &committed_bits[..m];
            if !committed_bits[m] {
                for (i, input) in inputs.iter().enumerate() {
                    if protocol.beep(i, input, prefix) {
                        row_set(viol, i);
                    }
                }
            } else {
                match committed_owners[m] {
                    None => row_fill(viol, n),
                    Some(owner) => {
                        if !protocol.beep(owner, &inputs[owner], prefix) {
                            row_set(viol, owner);
                        }
                    }
                }
            }
        });
    }
    true
}

/// The collapsed hierarchical engine (Appendix D.2): chunks commit
/// provisionally after the owners phase and binary-search progress
/// checks repair damage with exact back-jumps. Each check vote needs
/// every party's prefix-cleanliness flag for a probed boundary, which
/// [`boundary_flags`] reads off the cumulative violation stack instead
/// of `n` transcript walks. The scalar path arms the *first* vote of the
/// final full-coverage confirmation with `my_flag: false` for every
/// party (without consulting `flag_for_boundary`) — only fallback votes
/// after a flagged confirmation probe real flags — and the collapsed
/// engine replicates that silent first vote exactly. Caller guarantees
/// `model` is a validated shared-delivery model.
pub(crate) fn hierarchical_collapsed<P: Protocol>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    seed: u64,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let channel = StochasticChannel::new(protocol.num_parties(), model, seed);
    hierarchical_collapsed_over(
        protocol,
        config,
        inputs,
        model,
        ScalarBits::new(channel),
        scratch,
    )
}

/// [`hierarchical_collapsed`] generic over the channel backend.
pub(crate) fn hierarchical_collapsed_over<P: Protocol, S: SharedBits>(
    protocol: &P,
    config: &SimulatorConfig,
    inputs: &[P::Input],
    model: NoiseModel,
    mut source: S,
    scratch: &mut SoaScratch,
) -> Result<SimOutcome<P::Output>, SimError> {
    let n = protocol.num_parties();
    assert_eq!(inputs.len(), n, "need one input per party");
    let t = protocol.length();
    let resolved = config.resolve(model);
    let code = config.build_code();
    let metric = metric_for(model);
    let next_symbol = code.alphabet_size() - 1;
    let code_len = code.codeword_len();
    let r = config.repetitions;
    let v = config.verify_repetitions;
    let words = n.div_ceil(64);
    let window = config.verify_window.max(1);

    // Same budget formula and level schedule as
    // `HierarchicalSimulator::simulate_over`.
    let chunks_needed = t.div_ceil(config.chunk_len).max(1);
    let max_level = (usize::BITS - chunks_needed.next_power_of_two().leading_zeros()) as usize + 1;
    let per_iter = config.chunk_len * r
        + crate::owners::OwnersState::channel_rounds(config.chunk_len, n, config.code_len)
        + v * 4;
    let budget = (config.budget_factor * (chunks_needed * per_iter) as f64).ceil() as usize
        + v * (max_level + 2) * (max_level + 2) * 4;

    scratch.reset();
    let corrupted_before = source.corrupted();
    let mut rounds = 0usize;
    let mut energy = 0usize;
    let mut phase_rounds = PhaseRounds::default();
    let mut truncations = 0usize;
    let mut iteration = 0usize;
    let mut word = PackedBits::new();

    let exhausted = |scratch: &SoaScratch| SimError::BudgetExhausted {
        rounds_used: budget,
        committed: scratch.committed_bits.len().min(t),
    };
    // The level-scaled vote threshold, float-for-float the scalar's.
    let flagged_at = |ones: usize, vote_len: usize| {
        let per = resolved.verify_ones as f64 / v as f64;
        ones as f64 >= (per * vote_len as f64).max(1.0)
    };

    'outer: loop {
        let remaining = t.saturating_sub(scratch.committed_bits.len());
        if remaining == 0 {
            // --- Final full-coverage confirmation at `max_level`. The
            // first vote is unarmed (everyone beeps `false`, zero
            // energy); hearing a flag anyway (noise can invent ones)
            // falls back into an armed binary search over the whole
            // prefix, after which chunking resumes.
            let committed = scratch.chunk_lens.len();
            let vote_len = v * (max_level + 1);
            let final_span = beeps_observe::phase("sim.hierarchical.verify");
            if budget - rounds < vote_len {
                return Err(exhausted(scratch));
            }
            let ones = source.ones(vote_len, false);
            rounds += vote_len;
            phase_rounds.verify += vote_len;
            drop(final_span);
            if !flagged_at(ones, vote_len) {
                break 'outer;
            }
            let mut lo = 0usize;
            let mut hi = committed - 1;
            let mut steps_left = steps_for(hi - lo);
            if steps_left == 0 || hi < lo {
                if truncate_chunks(protocol, inputs, words, window, lo, scratch) {
                    truncations += 1;
                    beeps_observe::mark("sim.hierarchical.truncate");
                }
                continue 'outer;
            }
            loop {
                let boundary = (lo + hi).div_ceil(2);
                let flag_count = boundary_flags(protocol, inputs, words, boundary, scratch);
                let or = flag_count > 0;
                let vote_span = beeps_observe::phase("sim.hierarchical.verify");
                if budget - rounds < vote_len {
                    return Err(exhausted(scratch));
                }
                let ones = source.ones(vote_len, or);
                rounds += vote_len;
                energy += vote_len * flag_count;
                phase_rounds.verify += vote_len;
                drop(vote_span);
                if flagged_at(ones, vote_len) {
                    hi = boundary - 1;
                } else {
                    lo = boundary;
                }
                steps_left = steps_left.saturating_sub(1);
                if steps_left == 0 || lo >= hi {
                    break;
                }
            }
            if truncate_chunks(protocol, inputs, words, window, lo, scratch) {
                truncations += 1;
                beeps_observe::mark("sim.hierarchical.truncate");
            }
            continue 'outer;
        }
        let len = remaining.min(config.chunk_len);
        assert!(
            len < code.alphabet_size(),
            "chunk of {len} rounds needs an alphabet of at least {} symbols",
            len + 1
        );

        // --- Chunk phase: `len` simulated rounds, R channel rounds
        // each, beep rows recorded for the owners and check phases.
        let chunk_span = beeps_observe::phase("sim.hierarchical.chunk");
        scratch.bits.clear();
        scratch.cols.clear();
        scratch.cols.resize(len * words, 0);
        for j in 0..len {
            if budget - rounds < r {
                return Err(exhausted(scratch));
            }
            let col = &mut scratch.cols[j * words..(j + 1) * words];
            let mut beeps = 0usize;
            for (i, input) in inputs.iter().enumerate() {
                if protocol.beep(i, input, &scratch.working) {
                    row_set(col, i);
                    beeps += 1;
                }
            }
            let or = beeps > 0;
            let ones = source.ones(r, or);
            let bit = ones >= resolved.rep_ones;
            scratch.bits.push(bit);
            scratch.working.push(bit);
            energy += r * beeps;
            rounds += r;
            phase_rounds.chunk += r;
        }
        drop(chunk_span);

        // --- Owners phase: identical mechanics to the rewind engine.
        let owners_span = beeps_observe::phase("sim.hierarchical.owners");
        scratch.claimed.clear();
        scratch.claimed.resize(len, false);
        scratch.chunk_owners.clear();
        scratch.chunk_owners.resize(len, None);
        let mut turn = 0usize;
        for _ in 0..len + n {
            if budget - rounds < code_len {
                return Err(exhausted(scratch));
            }
            if turn < n {
                let claim = (0..len).find(|&j| {
                    scratch.bits[j]
                        && !scratch.claimed[j]
                        && row_get(&scratch.cols[j * words..(j + 1) * words], turn)
                });
                let symbol = claim.unwrap_or(next_symbol);
                let codeword = code.encode_packed(symbol);
                word.clear();
                for idx in 0..code_len {
                    let or = codeword.get(idx);
                    energy += usize::from(or);
                    word.push(source.bit(or));
                }
                let decoded = code.decode_packed(&word, metric);
                if decoded == next_symbol {
                    turn += 1;
                } else if decoded < len {
                    scratch.claimed[decoded] = true;
                    scratch.chunk_owners[decoded] = Some(turn);
                }
            } else {
                let _ = source.ones(code_len, false);
            }
            rounds += code_len;
            phase_rounds.owners += code_len;
        }
        drop(owners_span);

        // --- Provisional commit: no verification gate — the progress
        // checks repair damage after the fact. The chunk's violation
        // row is computed from the recorded beep rows and pushed onto
        // the cumulative stack so later boundary votes are O(1).
        scratch.viol.clear();
        scratch.viol.resize(words, 0);
        for j in 0..len {
            let col = &scratch.cols[j * words..(j + 1) * words];
            if !scratch.bits[j] {
                row_or(&mut scratch.viol, col);
            } else {
                match scratch.chunk_owners[j] {
                    None => {
                        row_fill(&mut scratch.viol, n);
                        break;
                    }
                    Some(owner) => {
                        if !row_get(col, owner) {
                            row_set(&mut scratch.viol, owner);
                        }
                    }
                }
            }
        }
        scratch.committed_bits.extend_from_slice(&scratch.bits);
        scratch
            .committed_owners
            .extend_from_slice(&scratch.chunk_owners);
        scratch.chunk_lens.push(scratch.bits.len());
        let mut cum = scratch.pool.pop().unwrap_or_default();
        cum.clear();
        cum.extend_from_slice(&scratch.viol);
        if let Some(top) = scratch.stack.last() {
            let prev = top.row();
            row_or(&mut cum, prev);
        }
        scratch.stack.push(CumEntry {
            cum: Some(cum),
            viol_digest: row_digest(&scratch.viol),
        });
        if scratch.stack.len() > window {
            let evict = scratch.stack.len() - window - 1;
            if let Some(buf) = scratch.stack[evict].cum.take() {
                scratch.pool.push(buf);
            }
        }
        iteration += 1;

        // --- Progress checks: level 0 every iteration plus the
        // binary-counter schedule of higher levels.
        scratch.levels.clear();
        scratch.levels.push(0);
        for j in 1..=max_level {
            if !iteration.is_multiple_of(1usize << j) {
                break;
            }
            scratch.levels.push(j);
        }
        let mut li = 0usize;
        while li < scratch.levels.len() {
            let level = scratch.levels[li];
            li += 1;
            let committed = scratch.chunk_lens.len();
            let win = committed.min(1usize << level);
            let mut lo = committed - win;
            let mut hi = committed;
            let mut steps_left = steps_for(win);
            let vote_len = v * (level + 1);
            loop {
                let boundary = (lo + hi).div_ceil(2);
                let flag_count = boundary_flags(protocol, inputs, words, boundary, scratch);
                let or = flag_count > 0;
                let vote_span = beeps_observe::phase("sim.hierarchical.verify");
                if budget - rounds < vote_len {
                    return Err(exhausted(scratch));
                }
                let ones = source.ones(vote_len, or);
                rounds += vote_len;
                energy += vote_len * flag_count;
                phase_rounds.verify += vote_len;
                drop(vote_span);
                if flagged_at(ones, vote_len) {
                    hi = boundary - 1;
                } else {
                    lo = boundary;
                }
                steps_left = steps_left.saturating_sub(1);
                if steps_left == 0 || lo >= hi {
                    break;
                }
            }
            if truncate_chunks(protocol, inputs, words, window, lo, scratch) {
                truncations += 1;
                beeps_observe::mark("sim.hierarchical.truncate");
            }
        }
    }

    let mut transcript = Vec::with_capacity(t);
    transcript.extend_from_slice(&scratch.committed_bits[..t]);
    let mut outputs = Vec::with_capacity(n);
    for (i, input) in inputs.iter().enumerate() {
        outputs.push(protocol.output(i, input, &transcript));
    }
    let stats = SimStats {
        channel_rounds: rounds,
        phase_rounds,
        protocol_rounds: t,
        chunks_committed: scratch.chunk_lens.len(),
        rewinds: truncations,
        agreement: true,
        energy,
        corrupted_rounds: source.corrupted() - corrupted_before,
    };
    Ok(SimOutcome::new(transcript, outputs, stats))
}

/// Recomputes the violation rows of the committed prefix after a rewind
/// popped past the retention window: one pass over the transcript
/// re-evaluating the protocol (the same work one scalar verification
/// does), re-materializing exact cumulative rows for the top `window`
/// chunks and leaving deeper chunks evicted. `viol_for_round` sets the
/// violation bits of one committed round into a zeroed row — each
/// scheme supplies its own flag conditions. Each recomputed row is
/// checked against the digest recorded at commit time.
fn rematerialize_window(
    chunk_lens: &[usize],
    stack: &mut [CumEntry],
    pool: &mut Vec<Vec<u64>>,
    words: usize,
    window: usize,
    mut viol_for_round: impl FnMut(usize, &mut Vec<u64>),
) {
    let keep_from = stack.len().saturating_sub(window);
    let mut running = pool.pop().unwrap_or_default();
    running.clear();
    running.resize(words, 0);
    let mut viol = pool.pop().unwrap_or_default();
    let mut pos = 0usize;
    for (k, &clen) in chunk_lens.iter().enumerate() {
        viol.clear();
        viol.resize(words, 0);
        for _ in 0..clen {
            viol_for_round(pos, &mut viol);
            pos += 1;
        }
        debug_assert_eq!(
            row_digest(&viol),
            stack[k].viol_digest,
            "recomputed violation row diverged from its commit-time digest"
        );
        row_or(&mut running, &viol);
        if k >= keep_from {
            let mut cum = pool.pop().unwrap_or_default();
            cum.clear();
            cum.extend_from_slice(&running);
            if let Some(buf) = stack[k].cum.replace(cum) {
                pool.push(buf);
            }
        }
    }
    pool.push(viol);
    pool.push(running);
}
