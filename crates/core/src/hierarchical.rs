//! The hierarchical simulation of Appendix D.2, implemented faithfully:
//! recursive doubling `A_l` with **binary-search progress checks**.
//!
//! The paper defines a hierarchy of protocols: `A_0` simulates one chunk
//! (Algorithm 1 — simulation by repetition plus the owners phase), and
//! `A_l` runs two copies of `A_{l-1}` followed by a *progress check* that
//! finds, by binary search over prefixes, the longest prefix of the
//! simulated transcript that is correct, truncating everything after it.
//! The level-`l` check is repeated `O(l)` times so its failure probability
//! is exponentially small in `l`, and the geometric schedule keeps the
//! total check cost a constant fraction of the run.
//!
//! Flattened (so that it runs as one lock-step protocol), the recursion
//! becomes a binary-counter schedule, exactly like incrementing `l` bits:
//! after iteration `k`, every level `j ≥ 1` with `2^j | k` runs a progress
//! check over a window of the last `2^j` chunks. Iteration-local errors
//! are caught by the per-iteration (level-0) check; errors that slip
//! through are caught by an enclosing level with more repetitions.
//!
//! A progress-check *vote* on a chunk boundary `b` asks "is the committed
//! prefix through chunk `b` correct?": every party recomputes its would-be
//! beeps against that prefix, raising the error flag under the same three
//! conditions as [`crate::rewind`] (my 1 missing from a 0-round; I own a 1
//! I would not beep; an unowned 1-round). The flag OR crosses the channel
//! as `V·(j+1)` repetitions at level `j`. All parties decode the same
//! outcome (under shared noise), so they walk the same binary-search path
//! and truncate identically.
//!
//! Versus [`crate::RewindSimulator`] (which verifies before committing and
//! pops one chunk per failure), the hierarchical scheme commits
//! provisionally and repairs with exact back-jumps — the trade-off the
//! `tab5_scheme_ablation` experiment measures.

use crate::driver::{drive, SimParty};
use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::owners::{metric_for, OwnersState, SharedCode};
use crate::params::{ResolvedParams, SimulatorConfig};
use beeps_channel::{NoiseModel, Protocol, StochasticChannel};
use std::sync::Arc;

/// The Appendix D.2 hierarchical simulator (`A_l` with binary-search
/// progress checks).
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, NoiseModel};
/// use beeps_core::{HierarchicalSimulator, SimulatorConfig};
/// use beeps_protocols::InputSet;
///
/// let protocol = InputSet::new(4);
/// let inputs = [1, 6, 6, 3];
/// let model = NoiseModel::Correlated { epsilon: 0.1 };
/// let sim = HierarchicalSimulator::new(
///     &protocol,
///     SimulatorConfig::builder(4).model(model).build(),
/// );
/// let outcome = sim.simulate(&inputs, model, 5).expect("within budget");
/// assert_eq!(
///     outcome.transcript(),
///     run_noiseless(&protocol, &inputs).transcript()
/// );
/// ```
#[derive(Debug)]
pub struct HierarchicalSimulator<'a, P> {
    protocol: &'a P,
    config: SimulatorConfig,
}

impl<'a, P: Protocol> HierarchicalSimulator<'a, P> {
    /// Wraps `protocol` with the given parameters (the same
    /// [`SimulatorConfig`] the rewind scheme uses; `verify_repetitions` is
    /// the level-0 vote length, scaled by `j + 1` at level `j`).
    pub fn new(protocol: &'a P, config: SimulatorConfig) -> Self {
        Self { protocol, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::RewindSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        self.simulate_with_scratch(inputs, model, seed, &mut crate::soa::SoaScratch::default())
    }

    /// [`HierarchicalSimulator::simulate`] with a caller-owned scratch
    /// arena: shared-delivery models run on the collapsed
    /// struct-of-arrays engine (see [`crate::soa`]), whose buffers live
    /// in `scratch` so a worker thread can run many trials
    /// allocation-free. Results are bitwise identical to
    /// [`HierarchicalSimulator::simulate`] (which is this method with a
    /// throwaway scratch).
    ///
    /// # Errors
    ///
    /// Same conditions as [`HierarchicalSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_with_scratch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
        scratch: &mut crate::soa::SoaScratch,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        if model.is_shared() {
            return crate::soa::hierarchical_collapsed(
                self.protocol,
                &self.config,
                inputs,
                model,
                seed,
                scratch,
            );
        }
        let mut channel = StochasticChannel::new(n, model, seed);
        self.simulate_over(inputs, model, &mut channel)
    }

    /// Runs one trial per seed, lane-sliced: up to 64 trials share each
    /// channel word, every result bitwise identical to
    /// [`HierarchicalSimulator::simulate`] with that seed (same
    /// transcripts, statistics, and `BudgetExhausted` errors).
    ///
    /// Independent noise (and invalid ε) falls back to the scalar
    /// per-trial loop — per-party deliveries diverge there, so the
    /// shared-transcript collapse the lane engine relies on does not
    /// hold.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        if model.validate().is_err() || !model.is_shared() {
            return seeds
                .iter()
                .map(|&seed| self.simulate(inputs, model, seed))
                .collect();
        }
        seeds
            .chunks(beeps_channel::LANES)
            .flat_map(|group| {
                crate::lanes::hierarchical_lanes(self.protocol, &self.config, inputs, model, group)
            })
            .collect()
    }

    /// Runs over a caller-supplied channel (failure injection, reduction
    /// channels); see [`crate::RewindSimulator::simulate_over`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`HierarchicalSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics on party-count mismatches.
    pub fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn beeps_channel::Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        let t = self.protocol.length();
        let resolved = self.config.resolve(model);
        let code = self.config.build_code();
        let chunks_needed = t.div_ceil(self.config.chunk_len).max(1);
        // Deepest level whose window covers the whole protocol.
        let max_level =
            (usize::BITS - chunks_needed.next_power_of_two().leading_zeros()) as usize + 1;

        let mut parties: Vec<HierParty<'_, P>> = (0..n)
            .map(|i| {
                HierParty::new(
                    self.protocol,
                    inputs[i].clone(),
                    i,
                    n,
                    &self.config,
                    resolved,
                    Arc::clone(&code),
                    model,
                    max_level,
                )
            })
            .collect();

        // Ideal per-iteration cost: chunk + owners + level-0 vote, plus the
        // amortized higher-level checks (a constant factor, budgeted in).
        let per_iter = self.config.chunk_len * self.config.repetitions
            + OwnersState::channel_rounds(self.config.chunk_len, n, self.config.code_len)
            + self.config.verify_repetitions * 4;
        let budget = (self.config.budget_factor * (chunks_needed * per_iter) as f64).ceil()
            as usize
            + self.config.verify_repetitions * (max_level + 2) * (max_level + 2) * 4;
        let corrupted_before = channel.corrupted_rounds();
        let result = drive(&mut parties, channel, budget);

        if !result.all_done {
            return Err(SimError::BudgetExhausted {
                rounds_used: result.rounds,
                committed: parties[0].committed_bits.len().min(t),
            });
        }

        let transcript: Vec<bool> = parties[0].committed_bits[..t].to_vec();
        let agreement = parties
            .iter()
            .all(|p| p.committed_bits[..t] == transcript[..]);
        let outputs = parties
            .iter()
            .map(|p| self.protocol.output(p.me, &p.input, &p.committed_bits[..t]))
            .collect();
        let stats = SimStats {
            channel_rounds: result.rounds,
            phase_rounds: parties[0].phase_rounds,
            protocol_rounds: t,
            chunks_committed: parties[0].chunk_lens.len(),
            rewinds: parties[0].truncations,
            agreement,
            energy: result.energy,
            corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        };
        Ok(SimOutcome::new(transcript, outputs, stats))
    }
}

/// Chunk-simulation sub-state (same structure as the rewind scheme's).
struct ChunkPhase {
    len: usize,
    bits: Vec<bool>,
    my_bits: Vec<bool>,
    rep: usize,
    ones: usize,
    current: bool,
}

/// One binary-search progress check in flight.
struct CheckState {
    /// Pending levels for this iteration (ascending), after this one.
    pending_levels: Vec<usize>,
    /// Current level (0 = the per-iteration check).
    level: usize,
    /// Binary-search bounds over *kept chunk count*: the answer is the
    /// largest `b` in `lo..=hi` whose prefix is clean (lo is always known
    /// clean-or-forced; the search maintains lo ≤ answer ≤ hi).
    lo: usize,
    hi: usize,
    /// Steps remaining in this level's search (fixed per window for
    /// lockstep).
    steps_left: usize,
    /// Current vote: boundary under test, rounds seen, ones heard, flag.
    boundary: usize,
    idx: usize,
    ones: usize,
    my_flag: bool,
    /// Whether this is the terminal full-coverage confirmation.
    is_final: bool,
}

enum HPhase {
    Chunk(ChunkPhase),
    Owners(OwnersState),
    Check(CheckState),
    Done,
}

struct HierParty<'a, P: Protocol> {
    protocol: &'a P,
    input: P::Input,
    me: usize,
    n: usize,
    chunk_len: usize,
    repetitions: usize,
    verify_repetitions: usize,
    params: ResolvedParams,
    code: SharedCode,
    model: NoiseModel,
    max_level: usize,

    committed_bits: Vec<bool>,
    committed_owners: Vec<Option<usize>>,
    chunk_lens: Vec<usize>,
    /// `committed_bits` plus the decoded bits of the in-flight chunk, kept
    /// in sync incrementally so the chunk loop never re-clones the prefix.
    working: Vec<bool>,

    /// Wall-clock iteration counter driving the binary-counter schedule.
    iteration: usize,
    truncations: usize,
    phase_rounds: PhaseRounds,
    phase: HPhase,
}

impl<'a, P: Protocol> HierParty<'a, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        protocol: &'a P,
        input: P::Input,
        me: usize,
        n: usize,
        config: &SimulatorConfig,
        params: ResolvedParams,
        code: SharedCode,
        model: NoiseModel,
        max_level: usize,
    ) -> Self {
        let mut party = Self {
            protocol,
            input,
            me,
            n,
            chunk_len: config.chunk_len,
            repetitions: config.repetitions,
            verify_repetitions: config.verify_repetitions,
            params,
            code,
            model,
            max_level,
            committed_bits: Vec::new(),
            committed_owners: Vec::new(),
            chunk_lens: Vec::new(),
            working: Vec::new(),
            iteration: 0,
            truncations: 0,
            phase_rounds: PhaseRounds::default(),
            phase: HPhase::Done,
        };
        party.phase = party.start_chunk();
        party
    }

    fn start_chunk(&self) -> HPhase {
        let remaining = self
            .protocol
            .length()
            .saturating_sub(self.committed_bits.len());
        if remaining == 0 {
            // Protocol complete: run the final full-coverage confirmation.
            return self.start_final_check();
        }
        let len = remaining.min(self.chunk_len);
        HPhase::Chunk(ChunkPhase {
            len,
            bits: Vec::with_capacity(len),
            my_bits: Vec::with_capacity(len),
            rep: 0,
            ones: 0,
            current: false,
        })
    }

    fn start_final_check(&self) -> HPhase {
        let committed = self.chunk_lens.len();
        HPhase::Check(CheckState {
            pending_levels: Vec::new(),
            level: self.max_level,
            lo: 0,
            hi: committed,
            steps_left: Self::steps_for(committed),
            boundary: committed,
            idx: 0,
            ones: 0,
            my_flag: false, // set below
            is_final: true,
        })
    }

    /// Binary-search steps needed over a window of `w + 1` candidate
    /// boundaries (`0..=w` kept chunks).
    fn steps_for(w: usize) -> usize {
        (usize::BITS - w.next_power_of_two().leading_zeros()) as usize + 1
    }

    /// Vote length at a given level (escalating redundancy).
    fn vote_len(&self, level: usize) -> usize {
        self.verify_repetitions * (level + 1)
    }

    /// Whether this party sees an error within the first `boundary`
    /// committed chunks (the prefix-cleanliness flag of a vote).
    fn flag_for_boundary(&self, boundary: usize) -> bool {
        let len: usize = self.chunk_lens[..boundary].iter().sum();
        let prefix = &self.committed_bits[..len];
        for m in 0..len {
            let b = self.protocol.beep(self.me, &self.input, &prefix[..m]);
            if !prefix[m] {
                if b {
                    return true;
                }
            } else {
                match self.committed_owners[m] {
                    Some(owner) => {
                        if owner == self.me && !b {
                            return true;
                        }
                    }
                    None => return true,
                }
            }
        }
        false
    }

    /// Truncates the committed prefix to exactly `boundary` chunks.
    fn truncate_to(&mut self, boundary: usize) {
        if boundary < self.chunk_lens.len() {
            self.truncations += 1;
            let keep: usize = self.chunk_lens[..boundary].iter().sum();
            self.committed_bits.truncate(keep);
            self.committed_owners.truncate(keep);
            self.chunk_lens.truncate(boundary);
            self.working.truncate(keep);
        }
    }

    /// Levels scheduled after this iteration (binary-counter rule), low
    /// to high.
    fn scheduled_levels(&self) -> Vec<usize> {
        let k = self.iteration;
        (1..=self.max_level)
            .filter(|&j| k.is_multiple_of(1usize << j))
            .collect()
    }

    /// Begins the vote for the current binary-search step of `check`.
    fn arm_vote(&self, check: &mut CheckState) {
        // Probe the midpoint of lo..=hi (biased up so progress is made).
        check.boundary = (check.lo + check.hi).div_ceil(2);
        check.idx = 0;
        check.ones = 0;
        check.my_flag = self.flag_for_boundary(check.boundary);
    }

    /// Starts the check sequence for this iteration: level 0 first, then
    /// any scheduled higher levels.
    fn start_checks(&mut self) {
        let committed = self.chunk_lens.len();
        let mut levels = self.scheduled_levels();
        levels.insert(0, 0);
        let level = levels.remove(0);
        let window = committed.min(1usize << level);
        let mut check = CheckState {
            pending_levels: levels,
            level,
            lo: committed - window,
            hi: committed,
            steps_left: Self::steps_for(window),
            boundary: committed,
            idx: 0,
            ones: 0,
            my_flag: false,
            is_final: false,
        };
        self.arm_vote(&mut check);
        self.phase = HPhase::Check(check);
    }

    /// Advances the check sequence after one vote resolves.
    fn vote_resolved(&mut self, mut check: CheckState, flagged: bool) {
        if check.is_final {
            if flagged {
                // The confirmation found damage: binary-search it away by
                // falling back into a normal full-window check.
                check.is_final = false;
                check.hi = check.boundary - 1;
                check.steps_left = Self::steps_for(check.hi - check.lo);
                if check.steps_left == 0 || check.hi < check.lo {
                    self.truncate_to(check.lo);
                    self.phase = self.start_chunk();
                    return;
                }
                self.arm_vote(&mut check);
                self.phase = HPhase::Check(check);
            } else {
                self.phase = HPhase::Done;
            }
            return;
        }

        // Standard binary-search update over kept-chunk counts.
        if flagged {
            check.hi = check.boundary - 1;
        } else {
            check.lo = check.boundary;
        }
        check.steps_left = check.steps_left.saturating_sub(1);
        if check.steps_left > 0 && check.lo < check.hi {
            self.arm_vote(&mut check);
            self.phase = HPhase::Check(check);
            return;
        }

        // Search converged for this level: keep exactly `lo` chunks.
        self.truncate_to(check.lo);

        // Any remaining scheduled levels for this iteration?
        if !check.pending_levels.is_empty() {
            let level = check.pending_levels.remove(0);
            let committed = self.chunk_lens.len();
            let window = committed.min(1usize << level);
            let mut next = CheckState {
                pending_levels: std::mem::take(&mut check.pending_levels),
                level,
                lo: committed - window,
                hi: committed,
                steps_left: Self::steps_for(window),
                boundary: committed,
                idx: 0,
                ones: 0,
                my_flag: false,
                is_final: false,
            };
            self.arm_vote(&mut next);
            self.phase = HPhase::Check(next);
        } else {
            self.phase = self.start_chunk();
        }
    }
}

impl<P: Protocol> SimParty for HierParty<'_, P> {
    fn beep(&mut self) -> bool {
        match &mut self.phase {
            HPhase::Chunk(c) => {
                if c.rep == 0 {
                    c.current = self.protocol.beep(self.me, &self.input, &self.working);
                }
                c.current
            }
            HPhase::Owners(o) => o.beep(),
            HPhase::Check(v) => v.my_flag,
            HPhase::Done => false,
        }
    }

    fn hear(&mut self, heard: bool) {
        match &self.phase {
            HPhase::Chunk(_) => self.phase_rounds.chunk += 1,
            HPhase::Owners(_) => self.phase_rounds.owners += 1,
            HPhase::Check(_) => self.phase_rounds.verify += 1,
            HPhase::Done => {}
        }
        match std::mem::replace(&mut self.phase, HPhase::Done) {
            HPhase::Chunk(mut c) => {
                c.ones += usize::from(heard);
                c.rep += 1;
                if c.rep == self.repetitions {
                    let bit = c.ones >= self.params.rep_ones;
                    c.bits.push(bit);
                    self.working.push(bit);
                    c.my_bits.push(c.current);
                    c.rep = 0;
                    c.ones = 0;
                }
                if c.bits.len() == c.len {
                    self.phase = HPhase::Owners(OwnersState::new(
                        self.me,
                        self.n,
                        c.bits,
                        c.my_bits,
                        Arc::clone(&self.code),
                        metric_for(self.model),
                    ));
                } else {
                    self.phase = HPhase::Chunk(c);
                }
            }
            HPhase::Owners(mut o) => {
                o.hear(heard);
                if o.finished() {
                    // Commit provisionally; checks repair later.
                    let bits = o.pi_bits().to_vec();
                    let owners = o.owners().to_vec();
                    self.committed_bits.extend_from_slice(&bits);
                    self.committed_owners.extend_from_slice(&owners);
                    self.chunk_lens.push(bits.len());
                    self.iteration += 1;
                    self.start_checks();
                } else {
                    self.phase = HPhase::Owners(o);
                }
            }
            HPhase::Check(mut v) => {
                v.ones += usize::from(heard);
                v.idx += 1;
                let vote_len = self.vote_len(v.level);
                let verify_threshold = |ones: usize| {
                    // Scale the per-V threshold to the level's vote length.
                    let per = self.params.verify_ones as f64 / self.verify_repetitions as f64;
                    ones as f64 >= (per * vote_len as f64).max(1.0)
                };
                if v.idx == vote_len {
                    let flagged = verify_threshold(v.ones);
                    self.vote_resolved(v, flagged);
                } else {
                    self.phase = HPhase::Check(v);
                }
            }
            HPhase::Done => {}
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.phase, HPhase::Done) && self.committed_bits.len() >= self.protocol.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::run_noiseless;
    use beeps_protocols::{InputSet, LeaderElection, Membership};

    fn check<P: Protocol>(
        protocol: &P,
        inputs: &[P::Input],
        model: NoiseModel,
        trials: u64,
        min_good: u64,
    ) {
        let truth = run_noiseless(protocol, inputs);
        let config = SimulatorConfig::builder(protocol.num_parties())
            .model(model)
            .build();
        let sim = HierarchicalSimulator::new(protocol, config);
        let mut good = 0;
        for seed in 0..trials {
            if let Ok(out) = sim.simulate(inputs, model, seed) {
                if out.transcript() == truth.transcript() {
                    good += 1;
                }
            }
        }
        assert!(good >= min_good, "only {good}/{trials} exact over {model}");
    }

    #[test]
    fn noiseless_exact() {
        let p = InputSet::new(4);
        check(&p, &[0, 2, 5, 7], NoiseModel::Noiseless, 2, 2);
    }

    #[test]
    fn correlated_noise_mild() {
        let p = InputSet::new(6);
        check(
            &p,
            &[0, 3, 11, 11, 7, 2],
            NoiseModel::Correlated { epsilon: 0.1 },
            10,
            9,
        );
    }

    #[test]
    fn one_sided_up_paper_rate() {
        let p = InputSet::new(6);
        check(
            &p,
            &[4, 4, 0, 9, 2, 11],
            NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
            8,
            7,
        );
    }

    #[test]
    fn adaptive_protocols() {
        let p = LeaderElection::new(5, 8);
        check(
            &p,
            &[13, 210, 99, 4, 180],
            NoiseModel::Correlated { epsilon: 0.12 },
            6,
            5,
        );
    }

    #[test]
    fn membership_deep_adaptivity() {
        let p = Membership::new(4, 16);
        check(
            &p,
            &[Some(2), None, Some(11), Some(15)],
            NoiseModel::Correlated { epsilon: 0.1 },
            5,
            4,
        );
    }

    #[test]
    fn multi_chunk_protocols_commit_multiple_chunks() {
        let p = InputSet::new(8); // T = 16, chunk_len = 8 -> 2 chunks
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let sim = HierarchicalSimulator::new(&p, SimulatorConfig::builder(8).model(model).build());
        let out = sim
            .simulate(&[0, 2, 4, 6, 8, 10, 12, 14], model, 3)
            .unwrap();
        assert!(out.stats().chunks_committed >= 2);
        assert!(out.stats().agreement);
    }

    #[test]
    fn independent_noise_works() {
        let p = InputSet::new(5);
        check(
            &p,
            &[2, 8, 8, 1, 0],
            NoiseModel::Independent { epsilon: 0.08 },
            6,
            5,
        );
    }

    #[test]
    fn truncations_are_counted_as_rewinds() {
        // Force heavy noise so repairs happen, then confirm the run is
        // still exact (the whole point of the progress checks).
        let p = InputSet::new(4);
        let model = NoiseModel::Correlated { epsilon: 0.25 };
        let mut config = SimulatorConfig::builder(4).model(model).build();
        config.budget_factor = 32.0;
        let truth = run_noiseless(&p, &[1, 3, 5, 7]);
        let sim = HierarchicalSimulator::new(&p, config);
        let mut saw_truncation = false;
        let mut exact = 0;
        for seed in 0..12 {
            if let Ok(out) = sim.simulate(&[1, 3, 5, 7], model, seed) {
                saw_truncation |= out.stats().rewinds > 0;
                if out.transcript() == truth.transcript() {
                    exact += 1;
                }
            }
        }
        assert!(exact >= 10, "only {exact}/12 exact at eps=0.25");
        // Truncations are likely but not guaranteed at these lengths; only
        // assert the accounting if one occurred.
        let _ = saw_truncation;
    }
}
