//! Constant-overhead simulation over the `1→0`-only noise model — the
//! asymmetry remark of §2 of the paper, made concrete.
//!
//! When noise can only *erase* beeps, two structural facts hold:
//!
//! 1. **Every error is witnessed instantly.** A corrupted round had true
//!    OR 1, so some party beeped 1 and heard 0 — that party *knows*
//!    (subsection 2.1: "there will be at least one party that is able to
//!    detect the error by itself").
//! 2. **A raised flag can never be lost silently into a false "all
//!    clear"... and a heard flag is never false.** A flag round's true OR
//!    is 1 only if somebody really flagged, and hearing a 1 is conclusive
//!    because noise cannot *create* beeps.
//!
//! The scheme simulates protocol rounds **directly** (one channel round
//! each — no repetition) and interleaves a hierarchy of checkpoints: after
//! every `2^j`-th data slot, a level-`j` check of `base·j` flag rounds in
//! which every party that has witnessed a still-uncorrected error beeps.
//! Hearing a 1 rewinds the committed transcript by `2^j` rounds. The
//! geometric schedule costs `Σ_j base·j / 2^j = O(base)` extra rounds per
//! data round — **independent of n** — while the escalating redundancy
//! drives the probability that an error survives to the end below any
//! polynomial. When the transcript is complete, a final full-strength
//! check (which can never false-alarm) confirms it.
//!
//! Contrast with Theorem 1.1: over `0→1` noise this is impossible — no
//! party can vouch for a heard 1 — and every scheme pays `Ω(log n)`.
//! Experiment E3 plots the two regimes side by side.

use crate::driver::{drive, SimParty};
use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use beeps_channel::{NoiseModel, Protocol};

/// Constant-overhead simulator for the one-sided `1→0` noise regime.
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, NoiseModel};
/// use beeps_core::OneToZeroSimulator;
/// use beeps_protocols::InputSet;
///
/// let protocol = InputSet::new(8);
/// let inputs = [0, 3, 5, 5, 9, 12, 1, 7];
/// let sim = OneToZeroSimulator::new(&protocol, 2, 16.0);
/// let outcome = sim
///     .simulate(&inputs, NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 }, 3)
///     .expect("within budget");
/// assert_eq!(
///     outcome.transcript(),
///     run_noiseless(&protocol, &inputs).transcript()
/// );
/// ```
#[derive(Debug)]
pub struct OneToZeroSimulator<'a, P> {
    protocol: &'a P,
    /// Flag rounds per level: level `j` checks use `base · j` rounds.
    base: usize,
    budget_factor: f64,
}

impl<'a, P: Protocol> OneToZeroSimulator<'a, P> {
    /// Wraps `protocol`. `base` scales every checkpoint's length (2 is a
    /// good default at `ε = 1/3`); `budget_factor` bounds the total rounds
    /// at `budget_factor × T`.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` or `budget_factor < 2.0`.
    pub fn new(protocol: &'a P, base: usize, budget_factor: f64) -> Self {
        assert!(base > 0, "checkpoint base must be positive");
        assert!(budget_factor >= 2.0, "budget must allow at least 2x rounds");
        Self {
            protocol,
            base,
            budget_factor,
        }
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnsupportedNoise`] — the scheme's guarantees need
    ///   noise that never creates beeps, so only
    ///   [`NoiseModel::OneSidedOneToZero`] and [`NoiseModel::Noiseless`]
    ///   are accepted;
    /// * [`SimError::BudgetExhausted`] — erasure storms outran the budget.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        self.simulate_with_scratch(inputs, model, seed, &mut crate::soa::SoaScratch::default())
    }

    /// [`OneToZeroSimulator::simulate`] with a caller-owned scratch
    /// arena, running on the collapsed struct-of-arrays engine (see
    /// [`crate::soa`]) — bitwise identical to the scalar path. (Both
    /// accepted models deliver shared bits, so there is no scalar
    /// fallback here.)
    ///
    /// # Errors
    ///
    /// Same conditions as [`OneToZeroSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_with_scratch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
        scratch: &mut crate::soa::SoaScratch,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        assert_eq!(inputs.len(), n, "need one input per party");
        match model {
            NoiseModel::OneSidedOneToZero { .. } | NoiseModel::Noiseless => {
                crate::soa::one_to_zero_collapsed(
                    self.protocol,
                    self.base,
                    self.budget_factor,
                    inputs,
                    model,
                    seed,
                    scratch,
                )
            }
            _ => Err(SimError::UnsupportedNoise {
                reason: "the constant-overhead scheme requires 1->0-only noise",
            }),
        }
    }

    /// Runs one trial per seed, lane-sliced: up to 64 trials share each
    /// channel word, every result bitwise identical to
    /// [`OneToZeroSimulator::simulate`] with that seed (same
    /// transcripts, statistics, and `BudgetExhausted` errors).
    ///
    /// Models the scheme rejects (and invalid ε) fall back to the
    /// per-seed loop so the errors match the scalar path exactly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        let supported = matches!(
            model,
            NoiseModel::OneSidedOneToZero { .. } | NoiseModel::Noiseless
        );
        if model.validate().is_err() || !supported {
            return seeds
                .iter()
                .map(|&seed| self.simulate(inputs, model, seed))
                .collect();
        }
        seeds
            .chunks(beeps_channel::LANES)
            .flat_map(|group| {
                crate::lanes::one_to_zero_lanes(
                    self.protocol,
                    self.base,
                    self.budget_factor,
                    inputs,
                    model,
                    group,
                )
            })
            .collect()
    }

    /// Runs over a caller-supplied channel (failure injection). The
    /// channel must never fabricate beeps — the scheme's detection
    /// guarantees assume it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OneToZeroSimulator::simulate`].
    ///
    /// # Panics
    ///
    /// Panics on party-count mismatches.
    pub fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn beeps_channel::Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        match model {
            NoiseModel::OneSidedOneToZero { .. } | NoiseModel::Noiseless => {}
            _ => {
                return Err(SimError::UnsupportedNoise {
                    reason: "the constant-overhead scheme requires 1->0-only noise",
                })
            }
        }
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }

        let t = self.protocol.length();
        // Deepest checkpoint level: rewinds of 2^max_level cover the whole
        // transcript.
        let max_level = (usize::BITS - t.next_power_of_two().leading_zeros()) as usize + 1;
        let mut parties: Vec<ZParty<'_, P>> = (0..n)
            .map(|i| ZParty {
                protocol: self.protocol,
                input: inputs[i].clone(),
                me: i,
                base: self.base,
                max_level,
                final_rounds: self.base * (max_level + 2),
                sigma: Vec::with_capacity(t),
                error_marks: Vec::new(),
                slot: 0,
                rewinds: 0,
                phase_rounds: PhaseRounds::default(),
                mode: Mode::Data {
                    my_bit: false,
                    decided: false,
                },
            })
            .collect();
        let budget = (self.budget_factor * t.max(1) as f64).ceil() as usize
            + self.base * (max_level + 2) * 4;
        let corrupted_before = channel.corrupted_rounds();
        let result = drive(&mut parties, channel, budget);

        if !result.all_done {
            return Err(SimError::BudgetExhausted {
                rounds_used: result.rounds,
                committed: parties[0].sigma.len().min(t),
            });
        }

        let transcript: Vec<bool> = parties[0].sigma[..t].to_vec();
        let agreement = parties.iter().all(|p| p.sigma[..t] == transcript[..]);
        let outputs = parties
            .iter()
            .map(|p| self.protocol.output(p.me, &p.input, &p.sigma[..t]))
            .collect();
        let stats = SimStats {
            channel_rounds: result.rounds,
            phase_rounds: parties[0].phase_rounds,
            protocol_rounds: t,
            chunks_committed: 0,
            rewinds: parties[0].rewinds,
            agreement,
            energy: result.energy,
            corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
        };
        Ok(SimOutcome::new(transcript, outputs, stats))
    }
}

/// What the lock-step schedule is doing right now.
enum Mode {
    /// One data round simulating protocol round `|σ|`.
    Data {
        my_bit: bool,
        decided: bool,
    },
    /// A battery of checks after a slot: levels low to high, then possibly
    /// the final confirmation.
    Check(CheckState),
    Done,
}

struct CheckState {
    /// Remaining levels to run (front first) plus, encoded as level 0, the
    /// final confirmation of length `final_rounds`.
    levels: Vec<usize>,
    level: usize,
    rounds_in_level: usize,
    idx: usize,
    heard_any: bool,
    is_final: bool,
}

struct ZParty<'a, P: Protocol> {
    protocol: &'a P,
    input: P::Input,
    me: usize,
    base: usize,
    max_level: usize,
    final_rounds: usize,
    /// Committed transcript (everyone appends every data round).
    sigma: Vec<bool>,
    /// Positions where I beeped 1 but heard 0, not yet rewound away.
    error_marks: Vec<usize>,
    /// Completed data slots (wall clock), drives the check schedule.
    slot: usize,
    rewinds: usize,
    phase_rounds: PhaseRounds,
    mode: Mode,
}

impl<P: Protocol> ZParty<'_, P> {
    /// Levels scheduled after data slot `s` (1-based): all `j ≥ 1` with
    /// `2^j | s`, i.e. level 1 every other slot, level 2 every fourth, ...
    fn scheduled_levels(&self, s: usize) -> Vec<usize> {
        (1..=self.max_level)
            .take_while(|&j| s.is_multiple_of(1usize << j))
            .collect()
    }

    fn start_check(&mut self, levels: Vec<usize>, is_final: bool) {
        if levels.is_empty() {
            self.after_checks();
            return;
        }
        let level = levels[0];
        let rounds_in_level = if is_final {
            self.final_rounds
        } else {
            self.base * level
        };
        self.mode = Mode::Check(CheckState {
            levels: levels[1..].to_vec(),
            level,
            rounds_in_level,
            idx: 0,
            heard_any: false,
            is_final,
        });
    }

    /// After a slot's checks: either done, run the final confirmation, or
    /// go back to data.
    fn after_checks(&mut self) {
        if self.sigma.len() >= self.protocol.length() {
            self.start_check(vec![self.max_level], true);
        } else {
            self.mode = Mode::Data {
                my_bit: false,
                decided: false,
            };
        }
    }

    fn rewind(&mut self, amount: usize) {
        self.rewinds += 1;
        let new_len = self.sigma.len().saturating_sub(amount);
        self.sigma.truncate(new_len);
        self.error_marks.retain(|&p| p < new_len);
    }
}

impl<P: Protocol> SimParty for ZParty<'_, P> {
    fn beep(&mut self) -> bool {
        match &mut self.mode {
            Mode::Data { my_bit, decided } => {
                if !*decided {
                    *my_bit = self.protocol.beep(self.me, &self.input, &self.sigma);
                    *decided = true;
                }
                *my_bit
            }
            Mode::Check(_) => !self.error_marks.is_empty(),
            Mode::Done => false,
        }
    }

    fn hear(&mut self, heard: bool) {
        match &self.mode {
            Mode::Data { .. } => self.phase_rounds.chunk += 1,
            Mode::Check(_) => self.phase_rounds.verify += 1,
            Mode::Done => {}
        }
        match std::mem::replace(&mut self.mode, Mode::Done) {
            Mode::Data { my_bit, .. } => {
                self.sigma.push(heard);
                if my_bit && !heard {
                    // I witnessed an erasure: remember it until a rewind
                    // clears it.
                    self.error_marks.push(self.sigma.len() - 1);
                }
                self.slot += 1;
                let levels = self.scheduled_levels(self.slot);
                if self.sigma.len() >= self.protocol.length() {
                    // Transcript complete: run any scheduled levels, then
                    // the final confirmation (triggered by after_checks).
                    self.start_check(levels, false);
                } else {
                    self.start_check(levels, false);
                }
            }
            Mode::Check(mut c) => {
                c.heard_any |= heard;
                c.idx += 1;
                if c.idx < c.rounds_in_level {
                    self.mode = Mode::Check(c);
                    return;
                }
                // Level finished.
                if c.heard_any {
                    // A heard flag is never false under 1->0 noise.
                    self.rewind(1usize << c.level);
                    if c.is_final {
                        // Confirmation failed: back to simulating.
                        self.after_checks();
                        return;
                    }
                }
                if c.is_final && !c.heard_any {
                    self.mode = Mode::Done;
                    return;
                }
                let is_final = c.is_final;
                self.start_check(c.levels, is_final);
            }
            Mode::Done => {
                self.mode = Mode::Done;
            }
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.mode, Mode::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::run_noiseless;
    use beeps_protocols::{InputSet, LeaderElection, MultiOr};

    const DOWN: NoiseModel = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };

    #[test]
    fn noiseless_run_is_exact_and_lean() {
        let p = InputSet::new(6);
        let inputs = [0, 2, 4, 6, 8, 10];
        let sim = OneToZeroSimulator::new(&p, 2, 8.0);
        let out = sim.simulate(&inputs, NoiseModel::Noiseless, 0).unwrap();
        let truth = run_noiseless(&p, &inputs);
        assert_eq!(out.transcript(), truth.transcript());
        // Overhead must be a small constant (data + checks + final).
        assert!(
            out.stats().overhead() < 6.0,
            "overhead {}",
            out.stats().overhead()
        );
    }

    #[test]
    fn survives_erasures_exactly() {
        let p = InputSet::new(8);
        let inputs = [0, 3, 5, 5, 9, 12, 1, 7];
        let truth = run_noiseless(&p, &inputs);
        let sim = OneToZeroSimulator::new(&p, 2, 24.0);
        let mut good = 0;
        for seed in 0..20 {
            if let Ok(out) = sim.simulate(&inputs, DOWN, seed) {
                if out.transcript() == truth.transcript() {
                    good += 1;
                }
            }
        }
        assert!(good >= 19, "only {good}/20 exact simulations");
    }

    #[test]
    fn adaptive_protocol_survives_erasures() {
        let p = LeaderElection::new(4, 10);
        let inputs = [512, 300, 1000, 7];
        let truth = run_noiseless(&p, &inputs);
        let sim = OneToZeroSimulator::new(&p, 2, 24.0);
        let mut good = 0;
        for seed in 0..15 {
            if let Ok(out) = sim.simulate(&inputs, DOWN, seed) {
                if out.outputs() == truth.outputs() {
                    good += 1;
                }
            }
        }
        assert!(good >= 14, "only {good}/15 correct elections");
    }

    #[test]
    fn overhead_is_independent_of_n() {
        // The defining property: growing n does not grow the overhead.
        let mut overheads = Vec::new();
        for n in [4usize, 32] {
            let p = InputSet::new(n);
            let inputs: Vec<usize> = (0..n).map(|i| (7 * i) % (2 * n)).collect();
            let sim = OneToZeroSimulator::new(&p, 2, 24.0);
            let out = sim.simulate(&inputs, DOWN, 1).unwrap();
            overheads.push(out.stats().overhead());
        }
        let ratio = overheads[1] / overheads[0];
        assert!(
            ratio < 1.8,
            "overhead grew with n: {overheads:?} (ratio {ratio})"
        );
    }

    #[test]
    fn rejects_two_sided_noise() {
        let p = InputSet::new(2);
        let sim = OneToZeroSimulator::new(&p, 2, 8.0);
        let err = sim
            .simulate(&[0, 1], NoiseModel::Correlated { epsilon: 0.1 }, 0)
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedNoise { .. }));
    }

    #[test]
    fn long_protocols_still_converge() {
        let p = MultiOr::new(3, 200);
        let inputs: Vec<Vec<bool>> = (0..3)
            .map(|i| (0..200).map(|m| (m + i) % 5 == 0).collect())
            .collect();
        let truth = run_noiseless(&p, &inputs);
        let sim = OneToZeroSimulator::new(&p, 2, 24.0);
        let out = sim.simulate(&inputs, DOWN, 9).unwrap();
        assert_eq!(out.transcript(), truth.transcript());
    }
}
