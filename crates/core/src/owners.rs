//! Algorithm 1's *finding owners* phase (Appendix D.1, Theorem D.1).
//!
//! After a chunk has been simulated into a shared transcript `π`, the
//! parties must compute, for every round `j` with `π_j = 1`, an **owner**:
//! a party that actually beeped 1 in round `j`. Owners make 1s verifiable —
//! in the later verification phase the owner of a round vouches for its 1,
//! which is the idea that makes the rewind-if-error discipline work over
//! the beeping channel (subsection 2.1 of the paper).
//!
//! The phase proceeds in turn order: the party whose turn it is transmits
//! either the codeword `C(j)` of a round it can own (one it beeped 1 in,
//! not yet claimed) or `C(Next)` to pass the turn; everyone decodes each
//! codeword and updates the same bookkeeping (`T^i`, `turn^i`, `o^i_j`).
//! Over shared-noise channels all parties decode identically, so the
//! bookkeeping *always* agrees; decoding errors can only make an owner
//! invalid, which the verification phase then catches.
//!
//! Deviations from the paper's Algorithm 1, documented for fidelity:
//!
//! * iterations: the paper fixes `2n` (chunks of length `n`); we use
//!   `L + n` for chunks of length `L` — the same bound by the same
//!   argument (≤ `L` claims plus ≤ `n` `Next`s);
//! * a party only claims rounds with `π_j = 1` (claims of `π_j = 0` rounds
//!   would be flagged in verification anyway);
//! * once every party has passed (`turn = n`), the remaining iterations
//!   idle instead of decoding silence into garbage.

use crate::driver::{drive, SimParty};
use beeps_channel::{NoiseModel, StochasticChannel};
use beeps_ecc::bits::PackedBits;
use beeps_ecc::{BitMetric, RandomCode, SymbolCode};

/// The shared symbol code used by the owners phase.
pub type SharedCode = std::sync::Arc<dyn SymbolCode + Send + Sync>;
use std::sync::Arc;

/// Per-party state machine for one owners phase. Embedded by the rewind
/// simulator and by the standalone [`run_owners_phase`] driver.
#[derive(Debug, Clone)]
pub(crate) struct OwnersState {
    me: usize,
    n: usize,
    /// The shared chunk transcript `π` (length `L_c`).
    pi: Vec<bool>,
    /// The bits this party beeped in the chunk (length `L_c`).
    my_bits: Vec<bool>,
    code: SharedCode,
    metric: BitMetric,
    /// The `Next` symbol is the last one in the code's alphabet.
    next_symbol: usize,
    iterations: usize,
    iter: usize,
    bit_idx: usize,
    /// Heard bits of the in-flight codeword, accumulated packed so the
    /// per-iteration decode needs no unpack/repack round-trip.
    word: PackedBits,
    sending: Option<PackedBits>,
    /// `T^i`: rounds already claimed by some owner.
    claimed: Vec<bool>,
    /// `turn^i`.
    turn: usize,
    /// `o^i_j`.
    owners: Vec<Option<usize>>,
}

impl OwnersState {
    /// `pi` and `my_bits` must have equal length `L_c ≤ code alphabet − 1`.
    pub(crate) fn new(
        me: usize,
        n: usize,
        pi: Vec<bool>,
        my_bits: Vec<bool>,
        code: SharedCode,
        metric: BitMetric,
    ) -> Self {
        assert_eq!(pi.len(), my_bits.len(), "transcript/bits length mismatch");
        assert!(
            pi.len() < code.alphabet_size(),
            "chunk of {} rounds needs an alphabet of at least {} symbols",
            pi.len(),
            pi.len() + 1
        );
        let len = pi.len();
        let next_symbol = code.alphabet_size() - 1;
        let mut state = Self {
            me,
            n,
            pi,
            my_bits,
            code,
            metric,
            next_symbol,
            // L + n iterations: every claim consumes a round, every pass a
            // party.
            iterations: len + n,
            iter: 0,
            bit_idx: 0,
            word: PackedBits::new(),
            sending: None,
            claimed: vec![false; len],
            turn: 0,
            owners: vec![None; len],
        };
        state.prepare_word();
        state
    }

    /// Whether all iterations have completed.
    pub(crate) fn finished(&self) -> bool {
        self.iter >= self.iterations
    }

    /// The computed owner of each chunk round (None for 0-rounds and for
    /// unowned 1s, which verification flags).
    pub(crate) fn owners(&self) -> &[Option<usize>] {
        &self.owners
    }

    /// The chunk transcript `π` this phase was run for.
    pub(crate) fn pi_bits(&self) -> &[bool] {
        &self.pi
    }

    /// Rounds one owners phase occupies on the channel.
    pub(crate) fn channel_rounds(chunk_len: usize, n: usize, code_len: usize) -> usize {
        (chunk_len + n) * code_len
    }

    /// Chooses what to transmit this iteration (if this party holds the
    /// turn): the smallest unclaimed 1-round it beeped in, else `Next`.
    fn prepare_word(&mut self) {
        self.sending = if self.turn == self.me && self.turn < self.n {
            let claim =
                (0..self.pi.len()).find(|&j| self.pi[j] && self.my_bits[j] && !self.claimed[j]);
            let symbol = claim.unwrap_or(self.next_symbol);
            Some(self.code.encode_packed(symbol))
        } else {
            None
        };
    }

    pub(crate) fn beep(&mut self) -> bool {
        if self.finished() {
            return false;
        }
        match &self.sending {
            Some(word) => word.get(self.bit_idx),
            None => false,
        }
    }

    pub(crate) fn hear(&mut self, heard: bool) {
        if self.finished() {
            return;
        }
        self.word.push(heard);
        self.bit_idx += 1;
        if self.bit_idx < self.code.codeword_len() {
            return;
        }
        // Iteration complete: decode and update the shared bookkeeping.
        if self.turn < self.n {
            let symbol = self.code.decode_packed(&self.word, self.metric);
            if symbol == self.next_symbol {
                self.turn += 1;
            } else if symbol < self.pi.len() {
                self.claimed[symbol] = true;
                self.owners[symbol] = Some(self.turn);
            }
            // A decoded symbol in [L_c, next) names no round of this chunk
            // (possible in tail chunks or under decode errors): ignore it,
            // keeping all parties' bookkeeping in lockstep.
        }
        self.word.clear();
        self.bit_idx = 0;
        self.iter += 1;
        if !self.finished() {
            self.prepare_word();
        }
    }
}

/// Result of a standalone owners phase (experiment E4 / Theorem D.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnersOutcome {
    /// `owners[i][j]`: party `i`'s belief about the owner of round `j`.
    pub owners: Vec<Vec<Option<usize>>>,
    /// Channel rounds consumed.
    pub channel_rounds: usize,
}

impl OwnersOutcome {
    /// Theorem D.1's guarantee, checked: for every round `j` with
    /// `π_j = 1`, all parties agree on an owner `o_j` and `b_j^{o_j} = 1`.
    pub fn valid_for(&self, bits: &[Vec<bool>]) -> bool {
        let n = self.owners.len();
        if n == 0 {
            return false;
        }
        let len = self.owners[0].len();
        for j in 0..len {
            let pi_j = (0..n).any(|i| bits[i][j]);
            if !pi_j {
                continue;
            }
            let first = self.owners[0][j];
            if self.owners.iter().any(|o| o[j] != first) {
                return false;
            }
            match first {
                Some(owner) => {
                    if !bits[owner][j] {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

/// Runs *only* the finding-owners phase of Algorithm 1, as in the premise
/// of Theorem D.1: party `i` holds bits `b^i_j` and everyone shares the
/// (correct) transcript `π_j = ⋁_i b^i_j`.
///
/// `code_len` is the codeword length in bits; sensible values come from
/// [`beeps_info::tail::random_code_length`]. Returns every party's owner
/// table so tests can check both agreement and validity.
///
/// # Panics
///
/// Panics if `bits` is empty or ragged, or the noise parameter is invalid.
///
/// # Examples
///
/// ```
/// use beeps_channel::NoiseModel;
/// use beeps_core::run_owners_phase;
///
/// // Party 0 beeped in round 1; party 2 beeped in rounds 0 and 1.
/// let bits = vec![
///     vec![false, true, false],
///     vec![false, false, false],
///     vec![true, true, false],
/// ];
/// let out = run_owners_phase(&bits, NoiseModel::Noiseless, 64, 7, 1);
/// assert!(out.valid_for(&bits));
/// // Round 0 can only be owned by party 2.
/// assert_eq!(out.owners[0][0], Some(2));
/// ```
pub fn run_owners_phase(
    bits: &[Vec<bool>],
    model: NoiseModel,
    code_len: usize,
    code_seed: u64,
    channel_seed: u64,
) -> OwnersOutcome {
    let n = bits.len();
    assert!(n > 0, "need at least one party");
    let len = bits[0].len();
    assert!(
        bits.iter().all(|b| b.len() == len),
        "all parties need bits for every round"
    );
    model.validate().expect("invalid noise parameter");

    let pi: Vec<bool> = (0..len).map(|j| bits.iter().any(|b| b[j])).collect();
    let code: SharedCode = Arc::new(RandomCode::with_length(len + 1, code_len, code_seed));
    let metric = metric_for(model);

    let mut parties: Vec<OwnersOnlyParty> = (0..n)
        .map(|i| OwnersOnlyParty {
            state: OwnersState::new(i, n, pi.clone(), bits[i].clone(), Arc::clone(&code), metric),
        })
        .collect();
    let mut channel = StochasticChannel::new(n, model, channel_seed);
    let budget = OwnersState::channel_rounds(len, n, code.codeword_len());
    let result = drive(&mut parties, &mut channel, budget);
    debug_assert!(result.all_done);

    OwnersOutcome {
        owners: parties
            .into_iter()
            .map(|p| p.state.owners().to_vec())
            .collect(),
        channel_rounds: result.rounds,
    }
}

/// The decoding metric matched to a noise model (shared with the rewind
/// simulator).
pub(crate) fn metric_for(model: NoiseModel) -> BitMetric {
    match model {
        NoiseModel::OneSidedZeroToOne { .. } => BitMetric::ZUp,
        NoiseModel::OneSidedOneToZero { .. } => BitMetric::ZDown,
        _ => BitMetric::Hamming,
    }
}

struct OwnersOnlyParty {
    state: OwnersState,
}

impl SimParty for OwnersOnlyParty {
    fn beep(&mut self) -> bool {
        self.state.beep()
    }

    fn hear(&mut self, heard: bool) {
        self.state.hear(heard);
    }

    fn is_done(&self) -> bool {
        self.state.finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn noiseless_owners_are_valid_and_first_claimant_wins() {
        let bits = vec![
            vec![true, false, true, false],
            vec![true, true, false, false],
        ];
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 48, 1, 2);
        assert!(out.valid_for(&bits));
        // Round 0: both beeped; party 0 claims first (turn order).
        assert_eq!(out.owners[0][0], Some(0));
        // Round 1: only party 1.
        assert_eq!(out.owners[0][1], Some(1));
        // Round 2: only party 0.
        assert_eq!(out.owners[0][2], Some(0));
        // Round 3: silent, no owner.
        assert_eq!(out.owners[0][3], None);
    }

    #[test]
    fn all_silent_chunk_has_no_owners() {
        let bits = vec![vec![false; 5]; 3];
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 48, 1, 2);
        assert!(out.valid_for(&bits));
        assert!(out.owners.iter().flatten().all(|o| o.is_none()));
    }

    #[test]
    fn single_party_owns_everything_it_beeped() {
        let bits = vec![vec![true, true, false, true]];
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 32, 3, 4);
        assert!(out.valid_for(&bits));
        assert_eq!(out.owners[0][0], Some(0));
        assert_eq!(out.owners[0][3], Some(0));
    }

    #[test]
    fn owners_valid_under_one_sided_noise_with_sized_code() {
        let mut rng = StdRng::seed_from_u64(0xD1);
        let n = 6;
        let len = 8;
        let eps = 1.0 / 3.0;
        let code_len = beeps_info::tail::random_code_length(
            len + 1,
            beeps_info::tail::cutoff_rate_z(eps),
            0.001,
        );
        let mut valid = 0;
        let trials = 30;
        for t in 0..trials {
            let bits: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..len).map(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let out = run_owners_phase(
                &bits,
                NoiseModel::OneSidedZeroToOne { epsilon: eps },
                code_len,
                t,
                1000 + t,
            );
            if out.valid_for(&bits) {
                valid += 1;
            }
        }
        assert!(valid >= trials - 1, "only {valid}/{trials} valid phases");
    }

    #[test]
    fn owners_valid_under_correlated_noise_with_sized_code() {
        let mut rng = StdRng::seed_from_u64(0xD2);
        let n = 4;
        let len = 6;
        let eps = 0.1;
        let code_len = beeps_info::tail::random_code_length(
            len + 1,
            beeps_info::tail::cutoff_rate_bsc(eps),
            0.001,
        );
        let mut valid = 0;
        let trials = 30;
        for t in 0..trials {
            let bits: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..len).map(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let out = run_owners_phase(
                &bits,
                NoiseModel::Correlated { epsilon: eps },
                code_len,
                t,
                2000 + t,
            );
            if out.valid_for(&bits) {
                valid += 1;
            }
        }
        assert!(valid >= trials - 1, "only {valid}/{trials} valid phases");
    }

    #[test]
    fn parties_always_agree_under_shared_noise_even_when_wrong() {
        // Even with an absurdly short code (frequent decode errors), the
        // shared channel forces identical bookkeeping.
        let mut rng = StdRng::seed_from_u64(0xD3);
        for t in 0..20 {
            let bits: Vec<Vec<bool>> = (0..5)
                .map(|_| (0..6).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let out = run_owners_phase(
                &bits,
                NoiseModel::Correlated { epsilon: 0.4 },
                8, // deliberately hopeless
                t,
                t,
            );
            let first = &out.owners[0];
            assert!(
                out.owners.iter().all(|o| o == first),
                "owner tables diverged under shared noise"
            );
        }
    }

    #[test]
    fn round_budget_matches_formula() {
        let bits = vec![vec![true, false]; 3];
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 16, 0, 0);
        assert_eq!(out.channel_rounds, OwnersState::channel_rounds(2, 3, 16));
    }

    #[test]
    #[should_panic(expected = "bits for every round")]
    fn ragged_bits_rejected() {
        run_owners_phase(
            &[vec![true], vec![true, false]],
            NoiseModel::Noiseless,
            16,
            0,
            0,
        );
    }
}
