//! Results and statistics of a noise-resilient simulation.

use std::fmt;

/// Channel rounds attributed to each phase of a chunked simulation.
///
/// For the repetition scheme everything is `chunk`; for the `1→0`
/// checkpoint scheme, data rounds count as `chunk` and checkpoint rounds
/// as `verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseRounds {
    /// Chunk-simulation rounds (the `L·R` repetition part).
    pub chunk: usize,
    /// Owners-phase rounds (Algorithm 1's codeword exchange).
    pub owners: usize,
    /// Verification / progress-check rounds.
    pub verify: usize,
}

impl PhaseRounds {
    /// Fraction of the accounted rounds spent in the owners phase.
    pub fn owners_fraction(&self) -> f64 {
        let total = self.chunk + self.owners + self.verify;
        if total == 0 {
            0.0
        } else {
            self.owners as f64 / total as f64
        }
    }
}

/// Statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Rounds of the noisy channel actually used.
    pub channel_rounds: usize,
    /// Breakdown of `channel_rounds` by simulation phase.
    pub phase_rounds: PhaseRounds,
    /// Length `T` of the simulated noiseless protocol.
    pub protocol_rounds: usize,
    /// Chunks committed (rewind-based simulators; 0 otherwise).
    pub chunks_committed: usize,
    /// Verification failures that caused a rewind.
    pub rewinds: usize,
    /// Whether all parties finished with identical simulated transcripts.
    /// Guaranteed under shared-noise regimes; empirically near-certain
    /// under independent noise.
    pub agreement: bool,
    /// Total beeps sent by all parties (channel energy).
    pub energy: usize,
    /// Channel rounds in which noise corrupted the delivered bit for at
    /// least one party. Zero for any run under
    /// [`NoiseModel::Noiseless`](beeps_channel::NoiseModel).
    pub corrupted_rounds: usize,
}

impl SimStats {
    /// The multiplicative round overhead `rounds(Π') / rounds(Π)` — the
    /// quantity Theorems 1.1 and 1.2 bound by `Θ(log n)`.
    pub fn overhead(&self) -> f64 {
        self.channel_rounds as f64 / self.protocol_rounds as f64
    }
}

/// A completed simulation: the reconstructed noiseless transcript, every
/// party's output, and statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome<O> {
    transcript: Vec<bool>,
    outputs: Vec<O>,
    stats: SimStats,
}

impl<O> SimOutcome<O> {
    pub(crate) fn new(transcript: Vec<bool>, outputs: Vec<O>, stats: SimStats) -> Self {
        Self {
            transcript,
            outputs,
            stats,
        }
    }

    /// The simulated transcript of the noiseless protocol, as reconstructed
    /// by party 0. A correct simulation reproduces
    /// `beeps_channel::run_noiseless` exactly.
    pub fn transcript(&self) -> &[bool] {
        &self.transcript
    }

    /// Every party's output, computed from its own reconstructed
    /// transcript.
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Run statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }
}

/// Failure of a simulation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The round budget (see
    /// [`SimulatorConfig::budget_factor`](crate::SimulatorConfig)) ran out
    /// before the whole protocol was committed — the noisy-channel
    /// equivalent of "too many rewinds".
    BudgetExhausted {
        /// Channel rounds consumed before giving up.
        rounds_used: usize,
        /// Protocol rounds that were committed by party 0.
        committed: usize,
    },
    /// The noise model passed to `simulate` is not supported by this
    /// simulator (e.g. [`crate::OneToZeroSimulator`] requires `1→0`-only
    /// noise).
    UnsupportedNoise {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExhausted {
                rounds_used,
                committed,
            } => write!(
                f,
                "round budget exhausted after {rounds_used} rounds with {committed} rounds committed"
            ),
            SimError::UnsupportedNoise { reason } => {
                write!(f, "unsupported noise model: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_ratio() {
        let stats = SimStats {
            channel_rounds: 120,
            phase_rounds: PhaseRounds::default(),
            protocol_rounds: 10,
            chunks_committed: 2,
            rewinds: 0,
            agreement: true,
            energy: 5,
            corrupted_rounds: 0,
        };
        assert!((stats.overhead() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        let e = SimError::BudgetExhausted {
            rounds_used: 100,
            committed: 3,
        };
        assert!(e.to_string().contains("100"));
        let u = SimError::UnsupportedNoise { reason: "nope" };
        assert!(u.to_string().contains("nope"));
    }
}
