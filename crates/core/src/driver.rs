//! Internal round loop for simulator parties with termination detection.

use beeps_channel::{Channel, Delivery};

/// A simulator party: a [`beeps_channel::Party`]-shaped state machine that
/// additionally knows when it has finished.
pub(crate) trait SimParty {
    fn beep(&mut self) -> bool;
    fn hear(&mut self, heard: bool);
    fn is_done(&self) -> bool;
}

/// Result of driving parties to completion (or budget exhaustion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DriveResult {
    pub rounds: usize,
    pub energy: usize,
    pub all_done: bool,
}

/// Runs the parties over the channel until every party reports done or the
/// round budget runs out. Done parties keep being polled (they idle with
/// silent beeps) so the lockstep round structure is preserved when parties
/// finish at different times under independent noise.
pub(crate) fn drive<P: SimParty>(
    parties: &mut [P],
    channel: &mut dyn Channel,
    budget: usize,
) -> DriveResult {
    assert!(!parties.is_empty(), "need at least one party");
    assert_eq!(
        parties.len(),
        channel.num_parties(),
        "channel sized for wrong number of parties"
    );
    let mut rounds = 0usize;
    let mut energy = 0usize;
    while rounds < budget && parties.iter().any(|p| !p.is_done()) {
        let mut or = false;
        for party in parties.iter_mut() {
            let b = party.beep();
            energy += usize::from(b);
            or |= b;
        }
        // Uniform deliveries (all shared regimes, and independent-noise
        // rounds without divergent flips) broadcast without per-party
        // indexing.
        match channel.transmit(or) {
            Delivery::Shared(bit) => {
                for party in parties.iter_mut() {
                    party.hear(bit);
                }
            }
            Delivery::PerParty(bits) => {
                if let Some(bit) = bits.uniform() {
                    for party in parties.iter_mut() {
                        party.hear(bit);
                    }
                } else {
                    for (i, party) in parties.iter_mut().enumerate() {
                        party.hear(bits.get(i));
                    }
                }
            }
            Delivery::Sparse(sparse) => {
                if let Some(bit) = sparse.uniform() {
                    for party in parties.iter_mut() {
                        party.hear(bit);
                    }
                } else {
                    // Cursor-merge against the sorted flip list.
                    let base = sparse.base();
                    let mut flips = sparse.flips().iter().peekable();
                    for (i, party) in parties.iter_mut().enumerate() {
                        let flipped = flips.next_if(|&&p| p as usize == i).is_some();
                        party.hear(base ^ flipped);
                    }
                }
            }
        }
        rounds += 1;
    }
    DriveResult {
        rounds,
        energy,
        all_done: parties.iter().all(|p| p.is_done()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{NoiseModel, StochasticChannel};

    struct CountDown {
        left: usize,
    }

    impl SimParty for CountDown {
        fn beep(&mut self) -> bool {
            self.left > 0
        }

        fn hear(&mut self, _heard: bool) {
            self.left = self.left.saturating_sub(1);
        }

        fn is_done(&self) -> bool {
            self.left == 0
        }
    }

    #[test]
    fn stops_when_all_done() {
        let mut parties = vec![CountDown { left: 3 }, CountDown { left: 5 }];
        let mut ch = StochasticChannel::new(2, NoiseModel::Noiseless, 0);
        let result = drive(&mut parties, &mut ch, 100);
        assert_eq!(result.rounds, 5);
        assert!(result.all_done);
        // Energy: party 0 beeps 3 rounds, party 1 beeps 5.
        assert_eq!(result.energy, 8);
    }

    #[test]
    fn respects_budget() {
        let mut parties = vec![CountDown { left: 50 }];
        let mut ch = StochasticChannel::new(1, NoiseModel::Noiseless, 0);
        let result = drive(&mut parties, &mut ch, 10);
        assert_eq!(result.rounds, 10);
        assert!(!result.all_done);
    }
}
