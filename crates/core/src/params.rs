//! Simulation parameters and their resolution against a noise model.
//!
//! The paper's schemes are parameterized by "sufficiently large constants";
//! here those constants are *computed* from the target error via the tail
//! bounds of `beeps-info`:
//!
//! * repetition counts from exact binomial tails
//!   ([`beeps_info::tail::repetitions_for_error`]),
//! * codeword lengths from the random-coding union bound at the channel's
//!   cutoff rate ([`beeps_info::tail::random_code_length`]).

use beeps_channel::NoiseModel;
use beeps_ecc::BitMetric;
use beeps_info::tail;

/// Tunable parameters of the chunked simulators.
///
/// Build one with [`SimulatorConfig::builder`]: pick the party count,
/// optionally the channel the parameters should be sized for, and any
/// overrides, then [`build`](SimulatorConfigBuilder::build).
///
/// # Examples
///
/// ```
/// use beeps_channel::NoiseModel;
/// use beeps_core::SimulatorConfig;
///
/// let mild = SimulatorConfig::builder(16)
///     .model(NoiseModel::Correlated { epsilon: 0.05 })
///     .build();
/// let harsh = SimulatorConfig::builder(16)
///     .model(NoiseModel::Correlated { epsilon: 1.0 / 3.0 })
///     .build();
/// // Harsher channels need more repetitions and longer codewords.
/// assert!(harsh.repetitions > mild.repetitions);
/// assert!(harsh.code_len > mild.code_len);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Chunk length `L` in protocol rounds (the paper uses `L = n`).
    pub chunk_len: usize,
    /// Repetitions `R` per simulated round in the chunk-simulation phase
    /// (and the whole-protocol repetition scheme).
    pub repetitions: usize,
    /// Codeword length in bits for the owners-phase symbol code.
    pub code_len: usize,
    /// Rounds `V` of the verification-flag OR.
    pub verify_repetitions: usize,
    /// The channel-round budget is `budget_factor ×` the ideal (rewind-free)
    /// cost; exceeding it aborts with `SimError::BudgetExhausted`.
    pub budget_factor: f64,
    /// Seed from which all parties derive the (shared, public) symbol code.
    pub code_seed: u64,
    /// When set, the owners phase uses a constant-weight code of this
    /// Hamming weight instead of the default random code — roughly
    /// `code_len / (2·weight)` times less beeping energy, best suited to
    /// the one-sided `0→1` (Z) channel. `None` = random code.
    pub code_weight: Option<usize>,
    /// Per-decision failure probability the parameters were sized for.
    pub target_error: f64,
    /// Committed chunks whose verification bitsets the collapsed
    /// struct-of-arrays engine keeps exact (one `n`-bit word row per
    /// chunk); older chunks are evicted to a digest and recomputed from
    /// the transcript only if a rewind storm pops past the window. A
    /// pure memory knob: every value produces bitwise-identical results
    /// (values below 1 behave as 1; `usize::MAX` retains everything).
    pub verify_window: usize,
    /// Experiment-scoped cache consulted by
    /// [`build_code`](SimulatorConfig::build_code); `None` rebuilds the
    /// table on every call. Private so equality and the cache stay
    /// orthogonal: two configs describing the same parameters compare
    /// equal whether or not either carries a cache.
    code_cache: Option<std::sync::Arc<crate::code_cache::CodeCache>>,
}

impl PartialEq for SimulatorConfig {
    /// Parameter equality; the attached [`crate::CodeCache`] (if any) is
    /// deliberately excluded, since it memoizes derived tables rather
    /// than describing the simulation.
    fn eq(&self, other: &Self) -> bool {
        self.chunk_len == other.chunk_len
            && self.repetitions == other.repetitions
            && self.code_len == other.code_len
            && self.verify_repetitions == other.verify_repetitions
            && self.budget_factor == other.budget_factor
            && self.code_seed == other.code_seed
            && self.code_weight == other.code_weight
            && self.target_error == other.target_error
            && self.verify_window == other.verify_window
    }
}

/// Staged construction of a [`SimulatorConfig`]; see
/// [`SimulatorConfig::builder`].
///
/// Sizing happens once, in [`build`](SimulatorConfigBuilder::build):
/// repetition counts and codeword lengths are derived from the noise
/// model and the per-decision error target. An explicit
/// [`target_error`](SimulatorConfigBuilder::target_error) **overrides**
/// the automatic target (the builder-time equivalent of calling
/// [`SimulatorConfig::with_target_error`] on a finished config); the
/// remaining setters override individual fields after sizing.
///
/// # Examples
///
/// ```
/// use beeps_channel::NoiseModel;
/// use beeps_core::SimulatorConfig;
///
/// // Paper defaults (correlated ε = 1/3 channel, chunk length n):
/// let default = SimulatorConfig::builder(16).build();
///
/// // Sized for a Z-channel, with a tighter error target and a
/// // low-energy constant-weight owners code:
/// let custom = SimulatorConfig::builder(16)
///     .model(NoiseModel::OneSidedZeroToOne { epsilon: 0.2 })
///     .target_error(1e-6)
///     .code_weight(4)
///     .build();
/// assert!(custom.repetitions != default.repetitions);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorConfigBuilder {
    n: usize,
    model: NoiseModel,
    chunk_len: Option<usize>,
    target_error: Option<f64>,
    budget_factor: Option<f64>,
    code_seed: Option<u64>,
    code_weight: Option<usize>,
    verify_window: Option<usize>,
    code_cache: Option<std::sync::Arc<crate::code_cache::CodeCache>>,
}

impl SimulatorConfigBuilder {
    /// Sizes the parameters for this noise model (default: the paper's
    /// exposition channel, correlated noise at `ε = 1/3`).
    pub fn model(mut self, model: NoiseModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the chunk length `L` (default: `max(n, 4)`, the
    /// paper's `L = n`). Also feeds the automatic error target, since
    /// longer chunks make more decisions per chunk.
    pub fn chunk_len(mut self, chunk_len: usize) -> Self {
        self.chunk_len = Some(chunk_len);
        self
    }

    /// Sets an explicit per-decision error target, **overriding** the
    /// automatic `~0.15 / decisions` target that
    /// [`build`](SimulatorConfigBuilder::build) would derive (e.g.
    /// `n^{-10}` to match Theorem D.1's statement exactly, at a
    /// correspondingly higher constant).
    pub fn target_error(mut self, target: f64) -> Self {
        self.target_error = Some(target);
        self
    }

    /// Overrides the round-budget multiple (default 8).
    pub fn budget_factor(mut self, factor: f64) -> Self {
        self.budget_factor = Some(factor);
        self
    }

    /// Overrides the shared symbol-code seed.
    pub fn code_seed(mut self, seed: u64) -> Self {
        self.code_seed = Some(seed);
        self
    }

    /// Uses a constant-weight owners code of this Hamming weight
    /// (default: seeded random code). See
    /// [`SimulatorConfig::code_weight`].
    pub fn code_weight(mut self, weight: usize) -> Self {
        self.code_weight = Some(weight);
        self
    }

    /// Overrides the committed-chunk verification window of the
    /// collapsed engine (default 8). See
    /// [`SimulatorConfig::verify_window`]; results are bitwise
    /// identical for every value — only peak memory changes.
    pub fn verify_window(mut self, window: usize) -> Self {
        self.verify_window = Some(window);
        self
    }

    /// Attaches a shared [`crate::CodeCache`] that
    /// [`build_code`](SimulatorConfig::build_code) will consult, so
    /// repeated simulations over equal parameters build their symbol-code
    /// table once. Equality of the finished config is unaffected.
    pub fn code_cache(mut self, cache: std::sync::Arc<crate::code_cache::CodeCache>) -> Self {
        self.code_cache = Some(cache);
        self
    }

    /// Sizes and assembles the [`SimulatorConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the model's ε is invalid or an explicit target error
    /// is outside `(0, 1)`.
    pub fn build(self) -> SimulatorConfig {
        self.model.validate().expect("invalid noise parameter");
        let n = self.n;
        let chunk_len = self.chunk_len.unwrap_or(n.max(4));
        let target = match self.target_error {
            Some(t) => {
                assert!(t > 0.0 && t < 1.0, "target must be in (0, 1)");
                t
            }
            None => {
                // Per-decision target: each chunk makes ~ L + (L + n) + 1
                // decisions (L repetition decodes, L+n codeword decodes, 1
                // verification OR); aim for a clean chunk with probability
                // ~0.85 so rewinds are rare. Under independent noise every
                // party decodes from its own view and any single divergence
                // desynchronizes the lockstep control flow, so the budget
                // is split across all n parties' decisions.
                let per_party = (3 * chunk_len + n + 1) as f64;
                let decisions = match self.model {
                    NoiseModel::Independent { .. } => per_party * n as f64,
                    _ => per_party,
                };
                (0.15 / decisions).clamp(1e-9, 0.25)
            }
        };
        let mut config = SimulatorConfig::sized(n, chunk_len, self.model, target);
        if let Some(factor) = self.budget_factor {
            config.budget_factor = factor;
        }
        if let Some(seed) = self.code_seed {
            config.code_seed = seed;
        }
        if let Some(weight) = self.code_weight {
            config.code_weight = Some(weight);
        }
        if let Some(window) = self.verify_window {
            config.verify_window = window;
        }
        if let Some(cache) = self.code_cache {
            config.code_cache = Some(cache);
        }
        config
    }
}

impl SimulatorConfig {
    /// Starts a builder for `n` parties; see [`SimulatorConfigBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn builder(n: usize) -> SimulatorConfigBuilder {
        assert!(n > 0, "need at least one party");
        SimulatorConfigBuilder {
            n,
            model: NoiseModel::Correlated { epsilon: 1.0 / 3.0 },
            chunk_len: None,
            target_error: None,
            budget_factor: None,
            code_seed: None,
            code_weight: None,
            verify_window: None,
            code_cache: None,
        }
    }

    /// Re-sizes repetition counts and codeword lengths of an existing
    /// config for a custom per-decision error target — the post-hoc
    /// form of [`SimulatorConfigBuilder::target_error`]. The explicit
    /// `target` **overrides** whatever target the config was originally
    /// sized for: `repetitions`, `code_len`, and `verify_repetitions`
    /// are recomputed from it, while `chunk_len`, `budget_factor`,
    /// `code_seed`, and `code_weight` are kept as-is.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1)`.
    pub fn with_target_error(mut self, n: usize, model: NoiseModel, target: f64) -> Self {
        assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
        let sized = Self::sized(n, self.chunk_len, model, target);
        self.repetitions = sized.repetitions;
        self.code_len = sized.code_len;
        self.verify_repetitions = sized.verify_repetitions;
        self.target_error = target;
        self
    }

    fn sized(_n: usize, chunk_len: usize, model: NoiseModel, target: f64) -> Self {
        let eps = model.epsilon();
        let q = chunk_len + 1; // symbols [L] plus Next
        let (repetitions, code_len, verify_repetitions): (usize, usize, usize) = match model {
            NoiseModel::Noiseless => (1, tail::random_code_length(q, 1.0, target), 1),
            NoiseModel::Correlated { .. } | NoiseModel::Independent { .. } => {
                let r = tail::repetitions_for_error(eps, 0.5, target) as usize;
                let len = tail::random_code_length(q, tail::cutoff_rate_bsc(eps), target);
                (r, len, r)
            }
            NoiseModel::OneSidedZeroToOne { .. } => {
                let thr = (1.0 + eps) / 2.0;
                let r = tail::repetitions_for_error_one_sided(eps, thr, target) as usize;
                let len = tail::random_code_length(q, tail::cutoff_rate_z(eps), target);
                (r, len, r)
            }
            NoiseModel::OneSidedOneToZero { .. } => {
                // Decode 1 iff any copy is 1; a true 1 is missed w.p. ε^R.
                let r = if eps == 0.0 {
                    1
                } else {
                    (target.ln() / eps.ln()).ceil().max(1.0) as usize
                };
                let len = tail::random_code_length(q, tail::cutoff_rate_z(eps), target);
                (r, len, r)
            }
        };
        Self {
            chunk_len,
            repetitions,
            code_len,
            verify_repetitions,
            budget_factor: 8.0,
            code_seed: 0x0B_EE_50_0D,
            code_weight: None,
            target_error: target,
            verify_window: 8,
            code_cache: None,
        }
    }

    /// Attaches a shared [`crate::CodeCache`] to an already-built config;
    /// the post-hoc form of
    /// [`SimulatorConfigBuilder::code_cache`]. Subsequent
    /// [`build_code`](SimulatorConfig::build_code) calls consult (and
    /// populate) the cache; equality with other configs is unaffected.
    pub fn with_code_cache(mut self, cache: std::sync::Arc<crate::code_cache::CodeCache>) -> Self {
        self.code_cache = Some(cache);
        self
    }

    /// The attached [`crate::CodeCache`], if any.
    pub fn code_cache(&self) -> Option<&std::sync::Arc<crate::code_cache::CodeCache>> {
        self.code_cache.as_ref()
    }

    /// Builds the owners-phase symbol code this configuration describes:
    /// a seeded random code, or a constant-weight code when
    /// [`SimulatorConfig::code_weight`] is set.
    ///
    /// With a cache attached (see
    /// [`with_code_cache`](SimulatorConfig::with_code_cache)) the table is
    /// built at most once per distinct parameter tuple and shared;
    /// without one, every call constructs afresh. Either way the returned
    /// table is identical — it is a pure function of the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `code_weight` is incompatible with `code_len`.
    pub fn build_code(&self) -> crate::owners::SharedCode {
        match &self.code_cache {
            Some(cache) => cache.get_or_build(self),
            None => self.build_code_uncached(),
        }
    }

    /// Builds the symbol code without consulting any attached cache —
    /// the raw constructor path, also used by [`crate::CodeCache`] itself
    /// on a miss.
    ///
    /// # Panics
    ///
    /// Panics if `code_weight` is incompatible with `code_len`.
    pub fn build_code_uncached(&self) -> crate::owners::SharedCode {
        use std::sync::Arc;
        match self.code_weight {
            Some(w) => Arc::new(beeps_ecc::ConstantWeightCode::new(
                self.chunk_len + 1,
                self.code_len,
                w,
                self.code_seed,
            )),
            None => Arc::new(beeps_ecc::RandomCode::with_length(
                self.chunk_len + 1,
                self.code_len,
                self.code_seed,
            )),
        }
    }

    /// Resolves decode thresholds and the decoding metric for the channel
    /// the simulation will actually run over.
    pub fn resolve(&self, model: NoiseModel) -> ResolvedParams {
        let eps = model.epsilon();
        let (rep_ones, verify_ones, metric) = match model {
            NoiseModel::Noiseless => (1, 1, BitMetric::Hamming),
            NoiseModel::Correlated { .. } | NoiseModel::Independent { .. } => (
                self.repetitions / 2 + 1,
                self.verify_repetitions / 2 + 1,
                BitMetric::Hamming,
            ),
            NoiseModel::OneSidedZeroToOne { .. } => {
                let thr = (1.0 + eps) / 2.0;
                (
                    biased_threshold(self.repetitions, thr),
                    biased_threshold(self.verify_repetitions, thr),
                    BitMetric::ZUp,
                )
            }
            NoiseModel::OneSidedOneToZero { .. } => (1, 1, BitMetric::ZDown),
        };
        ResolvedParams {
            rep_ones,
            verify_ones,
            metric,
        }
    }
}

/// `⌈thr · r⌉` clamped into `1..=r`.
fn biased_threshold(r: usize, thr: f64) -> usize {
    ((thr * r as f64).ceil() as usize).clamp(1, r)
}

/// Thresholds and decoding metric resolved against a concrete channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedParams {
    /// Heard-ones needed (out of `repetitions`) to decode a simulated
    /// round as 1.
    pub rep_ones: usize,
    /// Heard-ones needed (out of `verify_repetitions`) to treat the
    /// verification flag OR as raised.
    pub verify_ones: usize,
    /// Metric for decoding owners-phase codewords.
    pub metric: BitMetric,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_apply_after_sizing() {
        let cfg = SimulatorConfig::builder(8)
            .chunk_len(32)
            .budget_factor(3.5)
            .code_seed(0xC0DE)
            .code_weight(5)
            .build();
        assert_eq!(cfg.chunk_len, 32);
        assert!((cfg.budget_factor - 3.5).abs() < 1e-12);
        assert_eq!(cfg.code_seed, 0xC0DE);
        assert_eq!(cfg.code_weight, Some(5));
    }

    #[test]
    fn builder_explicit_target_overrides_automatic() {
        let auto = SimulatorConfig::builder(16).build();
        let tight = SimulatorConfig::builder(16).target_error(1e-8).build();
        assert!(tight.repetitions > auto.repetitions);
        assert!((tight.target_error - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn defaults_scale_with_n() {
        let small = SimulatorConfig::builder(4).build();
        let large = SimulatorConfig::builder(256).build();
        assert!(large.code_len > small.code_len);
        assert!(large.chunk_len > small.chunk_len);
        // Codeword length grows like log n: going 4 -> 256 parties
        // (64x) should much less than 64x the code length.
        assert!(large.code_len < 8 * small.code_len);
    }

    #[test]
    fn one_sided_up_cheaper_than_two_sided() {
        let two = SimulatorConfig::builder(32)
            .model(NoiseModel::Correlated { epsilon: 1.0 / 3.0 })
            .build();
        let one = SimulatorConfig::builder(32)
            .model(NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 })
            .build();
        assert!(one.code_len < two.code_len, "Z-channel codes are shorter");
    }

    #[test]
    fn resolve_thresholds_by_model() {
        let cfg = SimulatorConfig::builder(8).build();
        let two = cfg.resolve(NoiseModel::Correlated { epsilon: 1.0 / 3.0 });
        assert_eq!(two.rep_ones, cfg.repetitions / 2 + 1);
        assert_eq!(two.metric, BitMetric::Hamming);

        let up = cfg.resolve(NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 });
        assert!(up.rep_ones > two.rep_ones, "ZUp threshold is biased high");
        assert_eq!(up.metric, BitMetric::ZUp);

        let down = cfg.resolve(NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 });
        assert_eq!(down.rep_ones, 1, "any heard 1 proves a true 1");
        assert_eq!(down.metric, BitMetric::ZDown);

        let clean = cfg.resolve(NoiseModel::Noiseless);
        assert_eq!(clean.rep_ones, 1);
    }

    #[test]
    fn tighter_target_grows_parameters() {
        let base = SimulatorConfig::builder(16).build();
        let tight =
            base.clone()
                .with_target_error(16, NoiseModel::Correlated { epsilon: 1.0 / 3.0 }, 1e-8);
        assert!(tight.repetitions > base.repetitions);
        assert!(tight.code_len > base.code_len);
        assert_eq!(tight.chunk_len, base.chunk_len);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        SimulatorConfig::builder(0);
    }
}
