//! Simulation parameters and their resolution against a noise model.
//!
//! The paper's schemes are parameterized by "sufficiently large constants";
//! here those constants are *computed* from the target error via the tail
//! bounds of `beeps-info`:
//!
//! * repetition counts from exact binomial tails
//!   ([`beeps_info::tail::repetitions_for_error`]),
//! * codeword lengths from the random-coding union bound at the channel's
//!   cutoff rate ([`beeps_info::tail::random_code_length`]).

use beeps_channel::NoiseModel;
use beeps_ecc::BitMetric;
use beeps_info::tail;

/// Tunable parameters of the chunked simulators.
///
/// Use [`SimulatorConfig::for_parties`] (paper defaults: `ε = 1/3`,
/// chunk length `n`) or [`SimulatorConfig::for_channel`] (parameters sized
/// for a specific noise model), then override fields as needed.
///
/// # Examples
///
/// ```
/// use beeps_channel::NoiseModel;
/// use beeps_core::SimulatorConfig;
///
/// let mild = SimulatorConfig::for_channel(16, NoiseModel::Correlated { epsilon: 0.05 });
/// let harsh = SimulatorConfig::for_channel(16, NoiseModel::Correlated { epsilon: 1.0 / 3.0 });
/// // Harsher channels need more repetitions and longer codewords.
/// assert!(harsh.repetitions > mild.repetitions);
/// assert!(harsh.code_len > mild.code_len);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatorConfig {
    /// Chunk length `L` in protocol rounds (the paper uses `L = n`).
    pub chunk_len: usize,
    /// Repetitions `R` per simulated round in the chunk-simulation phase
    /// (and the whole-protocol repetition scheme).
    pub repetitions: usize,
    /// Codeword length in bits for the owners-phase symbol code.
    pub code_len: usize,
    /// Rounds `V` of the verification-flag OR.
    pub verify_repetitions: usize,
    /// The channel-round budget is `budget_factor ×` the ideal (rewind-free)
    /// cost; exceeding it aborts with `SimError::BudgetExhausted`.
    pub budget_factor: f64,
    /// Seed from which all parties derive the (shared, public) symbol code.
    pub code_seed: u64,
    /// When set, the owners phase uses a constant-weight code of this
    /// Hamming weight instead of the default random code — roughly
    /// `code_len / (2·weight)` times less beeping energy, best suited to
    /// the one-sided `0→1` (Z) channel. `None` = random code.
    pub code_weight: Option<usize>,
    /// Per-decision failure probability the parameters were sized for.
    pub target_error: f64,
}

impl SimulatorConfig {
    /// Paper defaults for `n` parties: parameters sized for the correlated
    /// two-sided channel at the paper's exposition noise rate `ε = 1/3`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_parties(n: usize) -> Self {
        Self::for_channel(n, NoiseModel::Correlated { epsilon: 1.0 / 3.0 })
    }

    /// Parameters sized for `n` parties over a specific noise model, with
    /// a per-decision error target of `1 / (20 · L · log₂ n)`-ish — enough
    /// for the rewind mechanism to make steady progress. Tighten
    /// [`SimulatorConfig::target_error`]-driven sizing by calling
    /// [`SimulatorConfig::with_target_error`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the model's ε is invalid.
    pub fn for_channel(n: usize, model: NoiseModel) -> Self {
        assert!(n > 0, "need at least one party");
        model.validate().expect("invalid noise parameter");
        let chunk_len = n.max(4);
        // Per-decision target: each chunk makes ~ L + (L + n) + 1 decisions
        // (L repetition decodes, L+n codeword decodes, 1 verification OR);
        // aim for a clean chunk with probability ~0.85 so rewinds are rare.
        // Under independent noise every party decodes from its own view and
        // any single divergence desynchronizes the lockstep control flow,
        // so the budget is split across all n parties' decisions.
        let per_party = (3 * chunk_len + n + 1) as f64;
        let decisions = match model {
            NoiseModel::Independent { .. } => per_party * n as f64,
            _ => per_party,
        };
        let target = (0.15 / decisions).clamp(1e-9, 0.25);
        Self::sized(n, chunk_len, model, target)
    }

    /// Re-sizes repetition counts and codeword lengths for a custom
    /// per-decision error target (e.g. `n^{-10}` to match Theorem D.1's
    /// statement exactly, at a correspondingly higher constant).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1)`.
    pub fn with_target_error(mut self, n: usize, model: NoiseModel, target: f64) -> Self {
        assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
        let sized = Self::sized(n, self.chunk_len, model, target);
        self.repetitions = sized.repetitions;
        self.code_len = sized.code_len;
        self.verify_repetitions = sized.verify_repetitions;
        self.target_error = target;
        self
    }

    fn sized(_n: usize, chunk_len: usize, model: NoiseModel, target: f64) -> Self {
        let eps = model.epsilon();
        let q = chunk_len + 1; // symbols [L] plus Next
        let (repetitions, code_len, verify_repetitions): (usize, usize, usize) = match model {
            NoiseModel::Noiseless => (1, tail::random_code_length(q, 1.0, target), 1),
            NoiseModel::Correlated { .. } | NoiseModel::Independent { .. } => {
                let r = tail::repetitions_for_error(eps, 0.5, target) as usize;
                let len = tail::random_code_length(q, tail::cutoff_rate_bsc(eps), target);
                (r, len, r)
            }
            NoiseModel::OneSidedZeroToOne { .. } => {
                let thr = (1.0 + eps) / 2.0;
                let r = tail::repetitions_for_error_one_sided(eps, thr, target) as usize;
                let len = tail::random_code_length(q, tail::cutoff_rate_z(eps), target);
                (r, len, r)
            }
            NoiseModel::OneSidedOneToZero { .. } => {
                // Decode 1 iff any copy is 1; a true 1 is missed w.p. ε^R.
                let r = if eps == 0.0 {
                    1
                } else {
                    (target.ln() / eps.ln()).ceil().max(1.0) as usize
                };
                let len = tail::random_code_length(q, tail::cutoff_rate_z(eps), target);
                (r, len, r)
            }
        };
        Self {
            chunk_len,
            repetitions,
            code_len,
            verify_repetitions,
            budget_factor: 8.0,
            code_seed: 0x0B_EE_50_0D,
            code_weight: None,
            target_error: target,
        }
    }

    /// Builds the owners-phase symbol code this configuration describes:
    /// a seeded random code, or a constant-weight code when
    /// [`SimulatorConfig::code_weight`] is set.
    ///
    /// # Panics
    ///
    /// Panics if `code_weight` is incompatible with `code_len`.
    pub fn build_code(&self) -> crate::owners::SharedCode {
        use std::sync::Arc;
        match self.code_weight {
            Some(w) => Arc::new(beeps_ecc::ConstantWeightCode::new(
                self.chunk_len + 1,
                self.code_len,
                w,
                self.code_seed,
            )),
            None => Arc::new(beeps_ecc::RandomCode::with_length(
                self.chunk_len + 1,
                self.code_len,
                self.code_seed,
            )),
        }
    }

    /// Resolves decode thresholds and the decoding metric for the channel
    /// the simulation will actually run over.
    pub fn resolve(&self, model: NoiseModel) -> ResolvedParams {
        let eps = model.epsilon();
        let (rep_ones, verify_ones, metric) = match model {
            NoiseModel::Noiseless => (1, 1, BitMetric::Hamming),
            NoiseModel::Correlated { .. } | NoiseModel::Independent { .. } => (
                self.repetitions / 2 + 1,
                self.verify_repetitions / 2 + 1,
                BitMetric::Hamming,
            ),
            NoiseModel::OneSidedZeroToOne { .. } => {
                let thr = (1.0 + eps) / 2.0;
                (
                    biased_threshold(self.repetitions, thr),
                    biased_threshold(self.verify_repetitions, thr),
                    BitMetric::ZUp,
                )
            }
            NoiseModel::OneSidedOneToZero { .. } => (1, 1, BitMetric::ZDown),
        };
        ResolvedParams {
            rep_ones,
            verify_ones,
            metric,
        }
    }
}

/// `⌈thr · r⌉` clamped into `1..=r`.
fn biased_threshold(r: usize, thr: f64) -> usize {
    ((thr * r as f64).ceil() as usize).clamp(1, r)
}

/// Thresholds and decoding metric resolved against a concrete channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedParams {
    /// Heard-ones needed (out of `repetitions`) to decode a simulated
    /// round as 1.
    pub rep_ones: usize,
    /// Heard-ones needed (out of `verify_repetitions`) to treat the
    /// verification flag OR as raised.
    pub verify_ones: usize,
    /// Metric for decoding owners-phase codewords.
    pub metric: BitMetric,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_n() {
        let small = SimulatorConfig::for_parties(4);
        let large = SimulatorConfig::for_parties(256);
        assert!(large.code_len > small.code_len);
        assert!(large.chunk_len > small.chunk_len);
        // Codeword length grows like log n: going 4 -> 256 parties
        // (64x) should much less than 64x the code length.
        assert!(large.code_len < 8 * small.code_len);
    }

    #[test]
    fn one_sided_up_cheaper_than_two_sided() {
        let two = SimulatorConfig::for_channel(32, NoiseModel::Correlated { epsilon: 1.0 / 3.0 });
        let one =
            SimulatorConfig::for_channel(32, NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 });
        assert!(one.code_len < two.code_len, "Z-channel codes are shorter");
    }

    #[test]
    fn resolve_thresholds_by_model() {
        let cfg = SimulatorConfig::for_parties(8);
        let two = cfg.resolve(NoiseModel::Correlated { epsilon: 1.0 / 3.0 });
        assert_eq!(two.rep_ones, cfg.repetitions / 2 + 1);
        assert_eq!(two.metric, BitMetric::Hamming);

        let up = cfg.resolve(NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 });
        assert!(up.rep_ones > two.rep_ones, "ZUp threshold is biased high");
        assert_eq!(up.metric, BitMetric::ZUp);

        let down = cfg.resolve(NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 });
        assert_eq!(down.rep_ones, 1, "any heard 1 proves a true 1");
        assert_eq!(down.metric, BitMetric::ZDown);

        let clean = cfg.resolve(NoiseModel::Noiseless);
        assert_eq!(clean.rep_ones, 1);
    }

    #[test]
    fn tighter_target_grows_parameters() {
        let base = SimulatorConfig::for_parties(16);
        let tight =
            base.clone()
                .with_target_error(16, NoiseModel::Correlated { epsilon: 1.0 / 3.0 }, 1e-8);
        assert!(tight.repetitions > base.repetitions);
        assert!(tight.code_len > base.code_len);
        assert_eq!(tight.chunk_len, base.chunk_len);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        SimulatorConfig::for_parties(0);
    }
}
