//! The [`Simulator`] abstraction: one interface over every coding
//! scheme in this crate.
//!
//! Each scheme (repetition, rewind, hierarchical, `1→0` checkpointing,
//! owned rounds) exposes the same inherent method
//! `simulate(&self, inputs, model, seed)`; this trait lifts that shape
//! into a common, object-safe interface so that experiment harnesses
//! and the CLI can hold a `&dyn Simulator<I, O>` (or a boxed one) and
//! treat every scheme uniformly.
//!
//! The trait is generic over the protocol's `Input`/`Output` types
//! rather than over the protocol itself, which keeps it object-safe:
//! all schemes wrapping protocols with the same input/output types are
//! interchangeable at runtime.
//!
//! # Examples
//!
//! ```
//! use beeps_channel::NoiseModel;
//! use beeps_core::{RepetitionSimulator, RewindSimulator, Simulator, SimulatorConfig};
//! use beeps_protocols::InputSet;
//!
//! let protocol = InputSet::new(5);
//! let config = SimulatorConfig::builder(5).build();
//! let rep = RepetitionSimulator::new(&protocol, config.clone());
//! let rewind = RewindSimulator::new(&protocol, config);
//! let schemes: Vec<&dyn Simulator<_, _>> = vec![&rep, &rewind];
//!
//! let inputs = vec![1usize, 4, 4, 7, 9];
//! for scheme in schemes {
//!     let outcome = scheme
//!         .simulate(&inputs, NoiseModel::Correlated { epsilon: 0.05 }, 1)
//!         .expect("within budget");
//!     assert!(outcome.stats().agreement, "{} disagreed", scheme.name());
//! }
//! ```

use beeps_channel::{
    run_protocol, run_protocol_over, Channel, NoiseModel, NoisyExecution, Protocol, UniquelyOwned,
};
use beeps_metrics::{CounterHandle, MetricsRegistry, Stopwatch};

use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::{
    HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator, RepetitionSimulator,
    RewindSimulator,
};

/// A noise-resilient simulation scheme for beeping protocols, viewed
/// through its input/output types only (object-safe).
pub trait Simulator<I, O> {
    /// Simulates the wrapped protocol on `inputs` over a noisy channel
    /// with the given `model` and `seed`.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExhausted`] — the scheme's round budget ran
    ///   out before the protocol was fully committed.
    /// * [`SimError::UnsupportedNoise`] — the scheme cannot run under
    ///   `model` (wrong regime or invalid parameter).
    fn simulate(
        &self,
        inputs: &[I],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<O>, SimError>;

    /// A short stable identifier for tables and logs (e.g. `"rewind"`).
    fn name(&self) -> &'static str;

    /// Simulates the wrapped protocol over a **caller-supplied**
    /// channel instead of a freshly seeded stochastic one, so harnesses
    /// can inject scripted failures, traces, or adversaries through any
    /// `&dyn Simulator` without downcasting to the concrete scheme.
    ///
    /// `model` still names the noise regime the channel implements: the
    /// schemes use it to pick decode thresholds and owner metrics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::simulate`]. The default body
    /// rejects every model with [`SimError::UnsupportedNoise`]; all
    /// schemes in this crate override it with their real
    /// channel-generic path.
    fn simulate_over(
        &self,
        inputs: &[I],
        model: NoiseModel,
        channel: &mut dyn Channel,
    ) -> Result<SimOutcome<O>, SimError> {
        let _ = (inputs, model, channel);
        Err(SimError::UnsupportedNoise {
            reason: "scheme does not support caller-supplied channels",
        })
    }

    /// Runs one independent trial per seed and returns the outcomes in
    /// seed order.
    ///
    /// The default body loops [`Simulator::simulate`]. Every scheme
    /// with a lane-sliced engine (repetition, rewind, hierarchical,
    /// owned-rounds, one-to-zero) overrides it to run up to
    /// [`beeps_channel::LANES`] trials per channel word; every override
    /// must keep each trial **bitwise identical** to `simulate` with
    /// the same seed — transcripts, statistics, and errors alike — a
    /// contract pinned by the transposition tests in
    /// `tests/packed_equivalence.rs` (see DESIGN.md §13 for the full
    /// scheme × regime engine matrix).
    fn simulate_batch(
        &self,
        inputs: &[I],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<O>, SimError>> {
        seeds
            .iter()
            .map(|&seed| self.simulate(inputs, model, seed))
            .collect()
    }

    /// Like [`Simulator::simulate`], but records the attempt into
    /// `metrics` under the `sim.<name>.*` namespace (see
    /// [`record_simulation`] for the exact counters) plus a wall-clock
    /// span `sim.<name>.simulate` in the non-deterministic section.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::simulate`]; failures are counted
    /// (`sim.<name>.failures.*`) and then propagated.
    fn simulate_with_metrics(
        &self,
        inputs: &[I],
        model: NoiseModel,
        seed: u64,
        metrics: &mut MetricsRegistry,
    ) -> Result<SimOutcome<O>, SimError> {
        let sw = Stopwatch::start();
        let result = self.simulate(inputs, model, seed);
        let elapsed = sw.elapsed();
        record_simulation(self.name(), &result, metrics);
        metrics.record_wall(&format!("sim.{}.simulate", self.name()), elapsed);
        result
    }
}

/// Folds one simulation attempt into `metrics` under `sim.<scheme>.`:
///
/// * counters `runs`, the per-phase breakdown `rounds.chunk` /
///   `rounds.owners` / `rounds.verify` / `rounds.total`,
///   `protocol_rounds`, `chunks_committed`, `rewinds`, `energy`,
///   `corrupted_rounds`, `disagreements`, and on failure
///   `failures.budget_exhausted` / `failures.unsupported_noise`;
/// * histograms `rounds`, `rewinds`, `energy` (per-run distributions);
/// * a `sim.<scheme>.rewind_storm` event whenever a run rewound, carrying
///   the rewind count and anchored to the run's channel-round total.
///
/// Everything recorded is a pure function of the simulation result, so
/// aggregation across seed-deterministic trials is reproducible.
pub fn record_simulation<O>(
    scheme: &str,
    result: &Result<SimOutcome<O>, SimError>,
    metrics: &mut MetricsRegistry,
) {
    SimulationRecorder::new(scheme, metrics).record(result, metrics);
}

/// The `sim.<scheme>.*` key set of [`record_simulation`], interned once.
///
/// Building counter keys with `format!` on every trial dominated the
/// recording cost in tight trial loops; a recorder resolves each key to
/// a [`CounterHandle`] up front and reuses it for every result.
/// Handles stay valid across [`MetricsRegistry::reset`], so one
/// recorder can serve a scratch registry for an entire trial batch.
#[derive(Debug, Clone)]
pub struct SimulationRecorder {
    runs: CounterHandle,
    rounds_chunk: CounterHandle,
    rounds_owners: CounterHandle,
    rounds_verify: CounterHandle,
    rounds_total: CounterHandle,
    protocol_rounds: CounterHandle,
    chunks_committed: CounterHandle,
    rewinds: CounterHandle,
    energy: CounterHandle,
    corrupted_rounds: CounterHandle,
    disagreements: CounterHandle,
    budget_exhausted: CounterHandle,
    unsupported_noise: CounterHandle,
    rounds_hist: String,
    rewinds_hist: String,
    energy_hist: String,
    rewind_storm: String,
}

impl SimulationRecorder {
    /// Interns every `sim.<scheme>.*` counter of [`record_simulation`]
    /// in `metrics` and keeps the handles.
    pub fn new(scheme: &str, metrics: &mut MetricsRegistry) -> Self {
        let mut handle = |suffix: &str| metrics.counter_handle(&format!("sim.{scheme}.{suffix}"));
        Self {
            runs: handle("runs"),
            rounds_chunk: handle("rounds.chunk"),
            rounds_owners: handle("rounds.owners"),
            rounds_verify: handle("rounds.verify"),
            rounds_total: handle("rounds.total"),
            protocol_rounds: handle("protocol_rounds"),
            chunks_committed: handle("chunks_committed"),
            rewinds: handle("rewinds"),
            energy: handle("energy"),
            corrupted_rounds: handle("corrupted_rounds"),
            disagreements: handle("disagreements"),
            budget_exhausted: handle("failures.budget_exhausted"),
            unsupported_noise: handle("failures.unsupported_noise"),
            rounds_hist: format!("sim.{scheme}.rounds"),
            rewinds_hist: format!("sim.{scheme}.rewinds"),
            energy_hist: format!("sim.{scheme}.energy"),
            rewind_storm: format!("sim.{scheme}.rewind_storm"),
        }
    }

    /// Folds one simulation attempt into `metrics` — identical keys and
    /// values to [`record_simulation`], without rebuilding any key.
    pub fn record<O>(
        &self,
        result: &Result<SimOutcome<O>, SimError>,
        metrics: &mut MetricsRegistry,
    ) {
        metrics.inc_handle(self.runs, 1);
        match result {
            Ok(outcome) => {
                let stats = outcome.stats();
                metrics.inc_handle(self.rounds_chunk, stats.phase_rounds.chunk as u64);
                metrics.inc_handle(self.rounds_owners, stats.phase_rounds.owners as u64);
                metrics.inc_handle(self.rounds_verify, stats.phase_rounds.verify as u64);
                metrics.inc_handle(self.rounds_total, stats.channel_rounds as u64);
                metrics.inc_handle(self.protocol_rounds, stats.protocol_rounds as u64);
                metrics.inc_handle(self.chunks_committed, stats.chunks_committed as u64);
                metrics.inc_handle(self.rewinds, stats.rewinds as u64);
                metrics.inc_handle(self.energy, stats.energy as u64);
                metrics.inc_handle(self.corrupted_rounds, stats.corrupted_rounds as u64);
                if !stats.agreement {
                    metrics.inc_handle(self.disagreements, 1);
                }
                metrics.observe(&self.rounds_hist, stats.channel_rounds as u64);
                metrics.observe(&self.rewinds_hist, stats.rewinds as u64);
                metrics.observe(&self.energy_hist, stats.energy as u64);
                if stats.rewinds > 0 {
                    metrics.event(
                        self.rewind_storm.clone(),
                        stats.channel_rounds as u64,
                        stats.rewinds as u64,
                    );
                }
            }
            Err(SimError::BudgetExhausted { .. }) => {
                metrics.inc_handle(self.budget_exhausted, 1);
            }
            Err(SimError::UnsupportedNoise { .. }) => {
                metrics.inc_handle(self.unsupported_noise, 1);
            }
        }
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for RepetitionSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RepetitionSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "repetition"
    }

    fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RepetitionSimulator::simulate_over(self, inputs, model, channel)
    }

    fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        RepetitionSimulator::simulate_batch(self, inputs, model, seeds)
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for RewindSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RewindSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "rewind"
    }

    fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RewindSimulator::simulate_over(self, inputs, model, channel)
    }

    fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        RewindSimulator::simulate_batch(self, inputs, model, seeds)
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for HierarchicalSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        HierarchicalSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        HierarchicalSimulator::simulate_over(self, inputs, model, channel)
    }

    fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        HierarchicalSimulator::simulate_batch(self, inputs, model, seeds)
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for OneToZeroSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OneToZeroSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "one_to_zero"
    }

    fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OneToZeroSimulator::simulate_over(self, inputs, model, channel)
    }

    fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        OneToZeroSimulator::simulate_batch(self, inputs, model, seeds)
    }
}

impl<P: UniquelyOwned> Simulator<P::Input, P::Output> for OwnedRoundsSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OwnedRoundsSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "owned_rounds"
    }

    fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OwnedRoundsSimulator::simulate_over(self, inputs, model, channel)
    }

    fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        OwnedRoundsSimulator::simulate_batch(self, inputs, model, seeds)
    }
}

/// The identity "scheme": runs the protocol directly over the noisy
/// channel with **no** coding, as the uncoded baseline several
/// experiments compare against.
///
/// The returned outcome's transcript is party 0's *noisy* view (there
/// is no reconstruction), `agreement` reports whether every party ended
/// with the same view, and all rounds are attributed to the chunk
/// phase. `simulate` never returns an error for a valid noise model —
/// the naked run always finishes in `protocol.length()` rounds; it just
/// may finish wrong.
#[derive(Debug, Clone, Copy)]
pub struct NakedSimulator<'a, P> {
    protocol: &'a P,
}

impl<'a, P: Protocol> NakedSimulator<'a, P> {
    /// Wraps `protocol` for uncoded noisy execution.
    pub fn new(protocol: &'a P) -> Self {
        Self { protocol }
    }

    /// Shapes a noisy execution into the uncoded-baseline outcome:
    /// party 0's view is the "transcript" and every round is a chunk
    /// round.
    fn outcome(&self, execution: NoisyExecution<P::Output>) -> SimOutcome<P::Output> {
        let n = self.protocol.num_parties();
        let t = self.protocol.length();
        let agreement = (1..n).all(|i| execution.views().view(i) == execution.views().view(0));
        let stats = SimStats {
            channel_rounds: t,
            phase_rounds: PhaseRounds {
                chunk: t,
                owners: 0,
                verify: 0,
            },
            protocol_rounds: t,
            chunks_committed: 0,
            rewinds: 0,
            agreement,
            energy: execution.energy(),
            corrupted_rounds: execution.corrupted_rounds(),
        };
        let transcript = execution.views().view(0).to_vec();
        let outputs = execution.into_outputs();
        SimOutcome::new(transcript, outputs, stats)
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for NakedSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        Ok(self.outcome(run_protocol(self.protocol, inputs, model, seed)))
    }

    fn name(&self) -> &'static str {
        "naked"
    }

    fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        mut channel: &mut dyn Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        Ok(self.outcome(run_protocol_over(self.protocol, inputs, &mut channel)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulatorConfig;
    use beeps_channel::run_noiseless;
    use beeps_protocols::InputSet;

    #[test]
    fn dyn_dispatch_covers_all_schemes() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rep = RepetitionSimulator::new(&protocol, config.clone());
        let rewind = RewindSimulator::new(&protocol, config.clone());
        let hier = HierarchicalSimulator::new(&protocol, config.clone());
        let otz = OneToZeroSimulator::new(&protocol, 2, config.budget_factor);
        let naked = NakedSimulator::new(&protocol);
        let schemes: Vec<&dyn Simulator<usize, _>> = vec![&rep, &rewind, &hier, &otz, &naked];
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "repetition",
                "rewind",
                "hierarchical",
                "one_to_zero",
                "naked"
            ]
        );

        let inputs = vec![0usize, 2, 5, 7];
        let truth = run_noiseless(&protocol, &inputs);
        for scheme in schemes {
            let outcome = scheme
                .simulate(&inputs, beeps_channel::NoiseModel::Noiseless, 3)
                .unwrap_or_else(|e| panic!("{} failed noiselessly: {e}", scheme.name()));
            assert_eq!(
                outcome.outputs(),
                truth.outputs(),
                "{} noiseless outputs",
                scheme.name()
            );
        }
    }

    #[test]
    fn simulate_with_metrics_records_phase_breakdown() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rewind = RewindSimulator::new(&protocol, config);
        let inputs = vec![0usize, 2, 5, 7];
        let mut metrics = MetricsRegistry::new();
        let outcome = rewind
            .simulate_with_metrics(
                &inputs,
                beeps_channel::NoiseModel::Correlated { epsilon: 0.05 },
                9,
                &mut metrics,
            )
            .expect("within budget");
        let stats = outcome.stats();
        assert_eq!(metrics.counter("sim.rewind.runs"), 1);
        assert_eq!(
            metrics.counter("sim.rewind.rounds.total"),
            stats.channel_rounds as u64
        );
        assert_eq!(
            metrics.counter("sim.rewind.rounds.chunk")
                + metrics.counter("sim.rewind.rounds.owners")
                + metrics.counter("sim.rewind.rounds.verify"),
            (stats.phase_rounds.chunk + stats.phase_rounds.owners + stats.phase_rounds.verify)
                as u64
        );
        assert_eq!(metrics.counter("sim.rewind.energy"), stats.energy as u64);
        assert_eq!(
            metrics.histogram("sim.rewind.rounds").unwrap().count(),
            1,
            "one run observed"
        );
        // The wall span exists but lives outside the deterministic section.
        assert_eq!(metrics.wall().count(), 1);
    }

    #[test]
    fn noiseless_simulation_records_zero_noise_counters() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rewind = RewindSimulator::new(&protocol, config);
        let inputs = vec![1usize, 3, 4, 6];
        let mut metrics = MetricsRegistry::new();
        rewind
            .simulate_with_metrics(
                &inputs,
                beeps_channel::NoiseModel::Noiseless,
                5,
                &mut metrics,
            )
            .expect("noiseless never exhausts the budget");
        assert_eq!(metrics.counter("sim.rewind.corrupted_rounds"), 0);
        assert_eq!(metrics.counter("sim.rewind.rewinds"), 0);
        assert_eq!(metrics.counter("sim.rewind.disagreements"), 0);
    }

    #[test]
    fn failures_are_counted_by_kind() {
        let protocol = InputSet::new(3);
        let config = SimulatorConfig::builder(3).build();
        let otz = OneToZeroSimulator::new(&protocol, 2, config.budget_factor);
        let mut metrics = MetricsRegistry::new();
        // OneToZero rejects noise that can fabricate beeps.
        let err = otz.simulate_with_metrics(
            &[0usize, 1, 2],
            beeps_channel::NoiseModel::Correlated { epsilon: 0.2 },
            1,
            &mut metrics,
        );
        assert!(err.is_err());
        assert_eq!(metrics.counter("sim.one_to_zero.runs"), 1);
        assert_eq!(
            metrics.counter("sim.one_to_zero.failures.unsupported_noise"),
            1
        );
    }

    #[test]
    fn naked_simulator_reports_uncoded_shape() {
        let protocol = InputSet::new(5);
        let naked = NakedSimulator::new(&protocol);
        let inputs = vec![0usize, 3, 3, 8, 9];
        let outcome = Simulator::simulate(&naked, &inputs, beeps_channel::NoiseModel::Noiseless, 1)
            .expect("noiseless");
        let stats = outcome.stats();
        assert_eq!(stats.channel_rounds, protocol.length());
        assert!((stats.overhead() - 1.0).abs() < 1e-12);
        assert!(stats.agreement);
        assert_eq!(stats.energy, 5, "every party beeps exactly once");
    }
}
