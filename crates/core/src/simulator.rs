//! The [`Simulator`] abstraction: one interface over every coding
//! scheme in this crate.
//!
//! Each scheme (repetition, rewind, hierarchical, `1→0` checkpointing,
//! owned rounds) exposes the same inherent method
//! `simulate(&self, inputs, model, seed)`; this trait lifts that shape
//! into a common, object-safe interface so that experiment harnesses
//! and the CLI can hold a `&dyn Simulator<I, O>` (or a boxed one) and
//! treat every scheme uniformly.
//!
//! The trait is generic over the protocol's `Input`/`Output` types
//! rather than over the protocol itself, which keeps it object-safe:
//! all schemes wrapping protocols with the same input/output types are
//! interchangeable at runtime.
//!
//! # Examples
//!
//! ```
//! use beeps_channel::NoiseModel;
//! use beeps_core::{RepetitionSimulator, RewindSimulator, Simulator, SimulatorConfig};
//! use beeps_protocols::InputSet;
//!
//! let protocol = InputSet::new(5);
//! let config = SimulatorConfig::builder(5).build();
//! let rep = RepetitionSimulator::new(&protocol, config.clone());
//! let rewind = RewindSimulator::new(&protocol, config);
//! let schemes: Vec<&dyn Simulator<_, _>> = vec![&rep, &rewind];
//!
//! let inputs = vec![1usize, 4, 4, 7, 9];
//! for scheme in schemes {
//!     let outcome = scheme
//!         .simulate(&inputs, NoiseModel::Correlated { epsilon: 0.05 }, 1)
//!         .expect("within budget");
//!     assert!(outcome.stats().agreement, "{} disagreed", scheme.name());
//! }
//! ```

use beeps_channel::{run_protocol, NoiseModel, Protocol, UniquelyOwned};

use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::{
    HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator, RepetitionSimulator,
    RewindSimulator,
};

/// A noise-resilient simulation scheme for beeping protocols, viewed
/// through its input/output types only (object-safe).
pub trait Simulator<I, O> {
    /// Simulates the wrapped protocol on `inputs` over a noisy channel
    /// with the given `model` and `seed`.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExhausted`] — the scheme's round budget ran
    ///   out before the protocol was fully committed.
    /// * [`SimError::UnsupportedNoise`] — the scheme cannot run under
    ///   `model` (wrong regime or invalid parameter).
    fn simulate(
        &self,
        inputs: &[I],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<O>, SimError>;

    /// A short stable identifier for tables and logs (e.g. `"rewind"`).
    fn name(&self) -> &'static str;
}

impl<P: Protocol> Simulator<P::Input, P::Output> for RepetitionSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RepetitionSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "repetition"
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for RewindSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RewindSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "rewind"
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for HierarchicalSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        HierarchicalSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for OneToZeroSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OneToZeroSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "one_to_zero"
    }
}

impl<P: UniquelyOwned> Simulator<P::Input, P::Output> for OwnedRoundsSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OwnedRoundsSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "owned_rounds"
    }
}

/// The identity "scheme": runs the protocol directly over the noisy
/// channel with **no** coding, as the uncoded baseline several
/// experiments compare against.
///
/// The returned outcome's transcript is party 0's *noisy* view (there
/// is no reconstruction), `agreement` reports whether every party ended
/// with the same view, and all rounds are attributed to the chunk
/// phase. `simulate` never returns an error for a valid noise model —
/// the naked run always finishes in `protocol.length()` rounds; it just
/// may finish wrong.
#[derive(Debug, Clone, Copy)]
pub struct NakedSimulator<'a, P> {
    protocol: &'a P,
}

impl<'a, P: Protocol> NakedSimulator<'a, P> {
    /// Wraps `protocol` for uncoded noisy execution.
    pub fn new(protocol: &'a P) -> Self {
        Self { protocol }
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for NakedSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        let n = self.protocol.num_parties();
        let t = self.protocol.length();
        let execution = run_protocol(self.protocol, inputs, model, seed);
        let agreement = (1..n).all(|i| execution.views().view(i) == execution.views().view(0));
        let stats = SimStats {
            channel_rounds: t,
            phase_rounds: PhaseRounds {
                chunk: t,
                owners: 0,
                verify: 0,
            },
            protocol_rounds: t,
            chunks_committed: 0,
            rewinds: 0,
            agreement,
            energy: execution.energy(),
        };
        let transcript = execution.views().view(0).to_vec();
        let outputs = execution.into_outputs();
        Ok(SimOutcome::new(transcript, outputs, stats))
    }

    fn name(&self) -> &'static str {
        "naked"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulatorConfig;
    use beeps_channel::run_noiseless;
    use beeps_protocols::InputSet;

    #[test]
    fn dyn_dispatch_covers_all_schemes() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rep = RepetitionSimulator::new(&protocol, config.clone());
        let rewind = RewindSimulator::new(&protocol, config.clone());
        let hier = HierarchicalSimulator::new(&protocol, config.clone());
        let otz = OneToZeroSimulator::new(&protocol, 2, config.budget_factor);
        let naked = NakedSimulator::new(&protocol);
        let schemes: Vec<&dyn Simulator<usize, _>> = vec![&rep, &rewind, &hier, &otz, &naked];
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "repetition",
                "rewind",
                "hierarchical",
                "one_to_zero",
                "naked"
            ]
        );

        let inputs = vec![0usize, 2, 5, 7];
        let truth = run_noiseless(&protocol, &inputs);
        for scheme in schemes {
            let outcome = scheme
                .simulate(&inputs, beeps_channel::NoiseModel::Noiseless, 3)
                .unwrap_or_else(|e| panic!("{} failed noiselessly: {e}", scheme.name()));
            assert_eq!(
                outcome.outputs(),
                truth.outputs(),
                "{} noiseless outputs",
                scheme.name()
            );
        }
    }

    #[test]
    fn naked_simulator_reports_uncoded_shape() {
        let protocol = InputSet::new(5);
        let naked = NakedSimulator::new(&protocol);
        let inputs = vec![0usize, 3, 3, 8, 9];
        let outcome = Simulator::simulate(&naked, &inputs, beeps_channel::NoiseModel::Noiseless, 1)
            .expect("noiseless");
        let stats = outcome.stats();
        assert_eq!(stats.channel_rounds, protocol.length());
        assert!((stats.overhead() - 1.0).abs() < 1e-12);
        assert!(stats.agreement);
        assert_eq!(stats.energy, 5, "every party beeps exactly once");
    }
}
