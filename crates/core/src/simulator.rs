//! The [`Simulator`] abstraction: one interface over every coding
//! scheme in this crate.
//!
//! Each scheme (repetition, rewind, hierarchical, `1→0` checkpointing,
//! owned rounds) exposes the same inherent method
//! `simulate(&self, inputs, model, seed)`; this trait lifts that shape
//! into a common, object-safe interface so that experiment harnesses
//! and the CLI can hold a `&dyn Simulator<I, O>` (or a boxed one) and
//! treat every scheme uniformly.
//!
//! The trait is generic over the protocol's `Input`/`Output` types
//! rather than over the protocol itself, which keeps it object-safe:
//! all schemes wrapping protocols with the same input/output types are
//! interchangeable at runtime.
//!
//! # Examples
//!
//! ```
//! use beeps_channel::NoiseModel;
//! use beeps_core::{RepetitionSimulator, RewindSimulator, Simulator, SimulatorConfig};
//! use beeps_protocols::InputSet;
//!
//! let protocol = InputSet::new(5);
//! let config = SimulatorConfig::builder(5).build();
//! let rep = RepetitionSimulator::new(&protocol, config.clone());
//! let rewind = RewindSimulator::new(&protocol, config);
//! let schemes: Vec<&dyn Simulator<_, _>> = vec![&rep, &rewind];
//!
//! let inputs = vec![1usize, 4, 4, 7, 9];
//! for scheme in schemes {
//!     let outcome = scheme
//!         .simulate(&inputs, NoiseModel::Correlated { epsilon: 0.05 }, 1)
//!         .expect("within budget");
//!     assert!(outcome.stats().agreement, "{} disagreed", scheme.name());
//! }
//! ```

use beeps_channel::{run_protocol, NoiseModel, Protocol, UniquelyOwned};
use beeps_metrics::{MetricsRegistry, Stopwatch};

use crate::outcome::{PhaseRounds, SimError, SimOutcome, SimStats};
use crate::{
    HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator, RepetitionSimulator,
    RewindSimulator,
};

/// A noise-resilient simulation scheme for beeping protocols, viewed
/// through its input/output types only (object-safe).
pub trait Simulator<I, O> {
    /// Simulates the wrapped protocol on `inputs` over a noisy channel
    /// with the given `model` and `seed`.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExhausted`] — the scheme's round budget ran
    ///   out before the protocol was fully committed.
    /// * [`SimError::UnsupportedNoise`] — the scheme cannot run under
    ///   `model` (wrong regime or invalid parameter).
    fn simulate(
        &self,
        inputs: &[I],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<O>, SimError>;

    /// A short stable identifier for tables and logs (e.g. `"rewind"`).
    fn name(&self) -> &'static str;

    /// Like [`Simulator::simulate`], but records the attempt into
    /// `metrics` under the `sim.<name>.*` namespace (see
    /// [`record_simulation`] for the exact counters) plus a wall-clock
    /// span `sim.<name>.simulate` in the non-deterministic section.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::simulate`]; failures are counted
    /// (`sim.<name>.failures.*`) and then propagated.
    fn simulate_with_metrics(
        &self,
        inputs: &[I],
        model: NoiseModel,
        seed: u64,
        metrics: &mut MetricsRegistry,
    ) -> Result<SimOutcome<O>, SimError> {
        let sw = Stopwatch::start();
        let result = self.simulate(inputs, model, seed);
        let elapsed = sw.elapsed();
        record_simulation(self.name(), &result, metrics);
        metrics.record_wall(&format!("sim.{}.simulate", self.name()), elapsed);
        result
    }
}

/// Folds one simulation attempt into `metrics` under `sim.<scheme>.`:
///
/// * counters `runs`, the per-phase breakdown `rounds.chunk` /
///   `rounds.owners` / `rounds.verify` / `rounds.total`,
///   `protocol_rounds`, `chunks_committed`, `rewinds`, `energy`,
///   `corrupted_rounds`, `disagreements`, and on failure
///   `failures.budget_exhausted` / `failures.unsupported_noise`;
/// * histograms `rounds`, `rewinds`, `energy` (per-run distributions);
/// * a `sim.<scheme>.rewind_storm` event whenever a run rewound, carrying
///   the rewind count and anchored to the run's channel-round total.
///
/// Everything recorded is a pure function of the simulation result, so
/// aggregation across seed-deterministic trials is reproducible.
pub fn record_simulation<O>(
    scheme: &str,
    result: &Result<SimOutcome<O>, SimError>,
    metrics: &mut MetricsRegistry,
) {
    let key = |suffix: &str| format!("sim.{scheme}.{suffix}");
    metrics.inc(&key("runs"), 1);
    match result {
        Ok(outcome) => {
            let stats = outcome.stats();
            metrics.inc(&key("rounds.chunk"), stats.phase_rounds.chunk as u64);
            metrics.inc(&key("rounds.owners"), stats.phase_rounds.owners as u64);
            metrics.inc(&key("rounds.verify"), stats.phase_rounds.verify as u64);
            metrics.inc(&key("rounds.total"), stats.channel_rounds as u64);
            metrics.inc(&key("protocol_rounds"), stats.protocol_rounds as u64);
            metrics.inc(&key("chunks_committed"), stats.chunks_committed as u64);
            metrics.inc(&key("rewinds"), stats.rewinds as u64);
            metrics.inc(&key("energy"), stats.energy as u64);
            metrics.inc(&key("corrupted_rounds"), stats.corrupted_rounds as u64);
            if !stats.agreement {
                metrics.inc(&key("disagreements"), 1);
            }
            metrics.observe(&key("rounds"), stats.channel_rounds as u64);
            metrics.observe(&key("rewinds"), stats.rewinds as u64);
            metrics.observe(&key("energy"), stats.energy as u64);
            if stats.rewinds > 0 {
                metrics.event(
                    key("rewind_storm"),
                    stats.channel_rounds as u64,
                    stats.rewinds as u64,
                );
            }
        }
        Err(SimError::BudgetExhausted { .. }) => {
            metrics.inc(&key("failures.budget_exhausted"), 1);
        }
        Err(SimError::UnsupportedNoise { .. }) => {
            metrics.inc(&key("failures.unsupported_noise"), 1);
        }
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for RepetitionSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RepetitionSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "repetition"
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for RewindSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        RewindSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "rewind"
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for HierarchicalSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        HierarchicalSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for OneToZeroSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OneToZeroSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "one_to_zero"
    }
}

impl<P: UniquelyOwned> Simulator<P::Input, P::Output> for OwnedRoundsSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        OwnedRoundsSimulator::simulate(self, inputs, model, seed)
    }

    fn name(&self) -> &'static str {
        "owned_rounds"
    }
}

/// The identity "scheme": runs the protocol directly over the noisy
/// channel with **no** coding, as the uncoded baseline several
/// experiments compare against.
///
/// The returned outcome's transcript is party 0's *noisy* view (there
/// is no reconstruction), `agreement` reports whether every party ended
/// with the same view, and all rounds are attributed to the chunk
/// phase. `simulate` never returns an error for a valid noise model —
/// the naked run always finishes in `protocol.length()` rounds; it just
/// may finish wrong.
#[derive(Debug, Clone, Copy)]
pub struct NakedSimulator<'a, P> {
    protocol: &'a P,
}

impl<'a, P: Protocol> NakedSimulator<'a, P> {
    /// Wraps `protocol` for uncoded noisy execution.
    pub fn new(protocol: &'a P) -> Self {
        Self { protocol }
    }
}

impl<P: Protocol> Simulator<P::Input, P::Output> for NakedSimulator<'_, P> {
    fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        let n = self.protocol.num_parties();
        let t = self.protocol.length();
        let execution = run_protocol(self.protocol, inputs, model, seed);
        let agreement = (1..n).all(|i| execution.views().view(i) == execution.views().view(0));
        let stats = SimStats {
            channel_rounds: t,
            phase_rounds: PhaseRounds {
                chunk: t,
                owners: 0,
                verify: 0,
            },
            protocol_rounds: t,
            chunks_committed: 0,
            rewinds: 0,
            agreement,
            energy: execution.energy(),
            corrupted_rounds: execution.corrupted_rounds(),
        };
        let transcript = execution.views().view(0).to_vec();
        let outputs = execution.into_outputs();
        Ok(SimOutcome::new(transcript, outputs, stats))
    }

    fn name(&self) -> &'static str {
        "naked"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulatorConfig;
    use beeps_channel::run_noiseless;
    use beeps_protocols::InputSet;

    #[test]
    fn dyn_dispatch_covers_all_schemes() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rep = RepetitionSimulator::new(&protocol, config.clone());
        let rewind = RewindSimulator::new(&protocol, config.clone());
        let hier = HierarchicalSimulator::new(&protocol, config.clone());
        let otz = OneToZeroSimulator::new(&protocol, 2, config.budget_factor);
        let naked = NakedSimulator::new(&protocol);
        let schemes: Vec<&dyn Simulator<usize, _>> = vec![&rep, &rewind, &hier, &otz, &naked];
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "repetition",
                "rewind",
                "hierarchical",
                "one_to_zero",
                "naked"
            ]
        );

        let inputs = vec![0usize, 2, 5, 7];
        let truth = run_noiseless(&protocol, &inputs);
        for scheme in schemes {
            let outcome = scheme
                .simulate(&inputs, beeps_channel::NoiseModel::Noiseless, 3)
                .unwrap_or_else(|e| panic!("{} failed noiselessly: {e}", scheme.name()));
            assert_eq!(
                outcome.outputs(),
                truth.outputs(),
                "{} noiseless outputs",
                scheme.name()
            );
        }
    }

    #[test]
    fn simulate_with_metrics_records_phase_breakdown() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rewind = RewindSimulator::new(&protocol, config);
        let inputs = vec![0usize, 2, 5, 7];
        let mut metrics = MetricsRegistry::new();
        let outcome = rewind
            .simulate_with_metrics(
                &inputs,
                beeps_channel::NoiseModel::Correlated { epsilon: 0.05 },
                9,
                &mut metrics,
            )
            .expect("within budget");
        let stats = outcome.stats();
        assert_eq!(metrics.counter("sim.rewind.runs"), 1);
        assert_eq!(
            metrics.counter("sim.rewind.rounds.total"),
            stats.channel_rounds as u64
        );
        assert_eq!(
            metrics.counter("sim.rewind.rounds.chunk")
                + metrics.counter("sim.rewind.rounds.owners")
                + metrics.counter("sim.rewind.rounds.verify"),
            (stats.phase_rounds.chunk + stats.phase_rounds.owners + stats.phase_rounds.verify)
                as u64
        );
        assert_eq!(metrics.counter("sim.rewind.energy"), stats.energy as u64);
        assert_eq!(
            metrics.histogram("sim.rewind.rounds").unwrap().count(),
            1,
            "one run observed"
        );
        // The wall span exists but lives outside the deterministic section.
        assert_eq!(metrics.wall().count(), 1);
    }

    #[test]
    fn noiseless_simulation_records_zero_noise_counters() {
        let protocol = InputSet::new(4);
        let config = SimulatorConfig::builder(4).build();
        let rewind = RewindSimulator::new(&protocol, config);
        let inputs = vec![1usize, 3, 4, 6];
        let mut metrics = MetricsRegistry::new();
        rewind
            .simulate_with_metrics(
                &inputs,
                beeps_channel::NoiseModel::Noiseless,
                5,
                &mut metrics,
            )
            .expect("noiseless never exhausts the budget");
        assert_eq!(metrics.counter("sim.rewind.corrupted_rounds"), 0);
        assert_eq!(metrics.counter("sim.rewind.rewinds"), 0);
        assert_eq!(metrics.counter("sim.rewind.disagreements"), 0);
    }

    #[test]
    fn failures_are_counted_by_kind() {
        let protocol = InputSet::new(3);
        let config = SimulatorConfig::builder(3).build();
        let otz = OneToZeroSimulator::new(&protocol, 2, config.budget_factor);
        let mut metrics = MetricsRegistry::new();
        // OneToZero rejects noise that can fabricate beeps.
        let err = otz.simulate_with_metrics(
            &[0usize, 1, 2],
            beeps_channel::NoiseModel::Correlated { epsilon: 0.2 },
            1,
            &mut metrics,
        );
        assert!(err.is_err());
        assert_eq!(metrics.counter("sim.one_to_zero.runs"), 1);
        assert_eq!(
            metrics.counter("sim.one_to_zero.failures.unsupported_noise"),
            1
        );
    }

    #[test]
    fn naked_simulator_reports_uncoded_shape() {
        let protocol = InputSet::new(5);
        let naked = NakedSimulator::new(&protocol);
        let inputs = vec![0usize, 3, 3, 8, 9];
        let outcome = Simulator::simulate(&naked, &inputs, beeps_channel::NoiseModel::Noiseless, 1)
            .expect("noiseless");
        let stats = outcome.stats();
        assert_eq!(stats.channel_rounds, protocol.length());
        assert!((stats.overhead() - 1.0).abs() < 1e-12);
        assert!(stats.agreement);
        assert_eq!(stats.energy, 5, "every party beeps exactly once");
    }
}
