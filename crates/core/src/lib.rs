//! The interactive-coding schemes of **Noisy Beeps** — the paper's primary
//! contribution, implemented as runnable protocols over `beeps-channel`.
//!
//! Three simulators turn a noiseless beeping protocol `Π` into a
//! noise-resilient protocol `Π'`:
//!
//! * [`RepetitionSimulator`] — footnote 1 of the paper: repeat every round
//!   `O(log n)` times and take a (threshold) majority. Simple, works for
//!   every noise regime, but its error grows linearly with the protocol
//!   length, so it only covers protocols of length polynomial in `n`.
//! * [`RewindSimulator`] — the full Theorem 1.2 scheme: the protocol is
//!   cut into chunks; each chunk is simulated by repetition and then an
//!   **owners phase** (Algorithm 1, [`owners`]) assigns every 1 in the
//!   simulated transcript to a party that actually beeped it; a
//!   **verification phase** lets owners vouch for their 1s (and everyone
//!   for the 0s), and failed verifications rewind. Overhead `O(log n)`
//!   for *any* protocol length, over correlated, one-sided, and
//!   independent noise.
//! * [`HierarchicalSimulator`] — the same guarantees via Appendix D.2's
//!   literal structure: recursive doubling (`A_l`) with binary-search
//!   progress checks that truncate to the exact longest correct prefix;
//!   kept alongside the rewind scheme as an ablation
//!   (`tab5_scheme_ablation`).
//! * [`OneToZeroSimulator`] — the constant-overhead scheme that §2 of the
//!   paper observes is possible when noise can only erase beeps
//!   (`1→0` flips): every error is witnessed by a beeping party the moment
//!   it happens, a raised flag can never be missed, and a hierarchy of
//!   exponentially-spaced checkpoints keeps the overhead independent
//!   of `n`.
//!
//! The asymmetry between the last two — `Θ(log n)` necessary for `0→1`
//! noise (Theorem 1.1), `O(1)` sufficient for `1→0` noise — is the
//! paper's central phenomenon, regenerated empirically by experiment E3.
//!
//! # Examples
//!
//! ```
//! use beeps_channel::{run_noiseless, NoiseModel};
//! use beeps_core::{RewindSimulator, SimulatorConfig};
//! use beeps_protocols::LeaderElection;
//!
//! let protocol = LeaderElection::new(4, 6);
//! let inputs = [11, 47, 2, 33];
//! let truth = run_noiseless(&protocol, &inputs);
//!
//! let sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(4).build());
//! let outcome = sim
//!     .simulate(&inputs, NoiseModel::Correlated { epsilon: 0.1 }, 7)
//!     .expect("within budget");
//! assert_eq!(outcome.transcript(), truth.transcript());
//! assert_eq!(outcome.outputs(), truth.outputs());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod driver;
mod lanes;

pub mod code_cache;
pub mod hierarchical;
pub mod one_to_zero;
pub mod outcome;
pub mod owned_rounds;
pub mod owners;
pub mod params;
pub mod repetition;
pub mod rewind;
pub mod simulator;
pub mod soa;

pub use code_cache::CodeCache;
pub use hierarchical::HierarchicalSimulator;
pub use one_to_zero::OneToZeroSimulator;
pub use outcome::{SimError, SimOutcome, SimStats};
pub use owned_rounds::OwnedRoundsSimulator;
pub use owners::{run_owners_phase, OwnersOutcome};
pub use params::{ResolvedParams, SimulatorConfig, SimulatorConfigBuilder};
pub use repetition::RepetitionSimulator;
pub use rewind::RewindSimulator;
pub use simulator::{record_simulation, NakedSimulator, SimulationRecorder, Simulator};
pub use soa::SoaScratch;
