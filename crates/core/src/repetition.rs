//! The repetition simulation scheme (footnote 1 of the paper).
//!
//! Every round of the noiseless protocol is repeated `R` times over the
//! noisy channel and decoded by a threshold majority. With
//! `R = Θ(log n)` the per-round failure is polynomially small, so by a
//! union bound any protocol of length polynomial in `n` is simulated
//! correctly with high probability — the easy `O(log n)` upper bound the
//! paper contrasts with its general Theorem 1.2.

use crate::driver::{drive, SimParty};
use crate::outcome::{SimError, SimOutcome, SimStats};
use crate::params::{ResolvedParams, SimulatorConfig};
use beeps_channel::{NoiseModel, Protocol, StochasticChannel};

/// Simulates a noiseless protocol by per-round repetition.
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, NoiseModel};
/// use beeps_core::{RepetitionSimulator, SimulatorConfig};
/// use beeps_protocols::InputSet;
///
/// let protocol = InputSet::new(4);
/// let inputs = [1, 6, 6, 3];
/// let sim = RepetitionSimulator::new(&protocol, SimulatorConfig::builder(4).build());
/// let outcome = sim
///     .simulate(&inputs, NoiseModel::Correlated { epsilon: 1.0 / 3.0 }, 99)
///     .expect("repetition simulation is fixed-length");
/// assert_eq!(
///     outcome.transcript(),
///     run_noiseless(&protocol, &inputs).transcript()
/// );
/// ```
#[derive(Debug)]
pub struct RepetitionSimulator<'a, P> {
    protocol: &'a P,
    config: SimulatorConfig,
}

impl<'a, P: Protocol> RepetitionSimulator<'a, P> {
    /// Wraps `protocol`; only [`SimulatorConfig::repetitions`] is used.
    pub fn new(protocol: &'a P, config: SimulatorConfig) -> Self {
        Self { protocol, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Runs the simulation with `repetitions` copies of each round.
    ///
    /// The simulated protocol has fixed length `T · R`, so this never
    /// exhausts a budget; the `Result` only reports invalid noise
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedNoise`] if `model` has an invalid ε.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        self.simulate_with_scratch(inputs, model, seed, &mut crate::soa::SoaScratch::default())
    }

    /// [`RepetitionSimulator::simulate`] with a caller-owned scratch
    /// arena. Shared-delivery models run on the collapsed
    /// struct-of-arrays engine (see [`crate::soa`]) — bitwise identical
    /// to the scalar path; independent noise keeps the per-party state
    /// machines (its deliveries diverge across parties).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedNoise`] if `model` has an invalid ε.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_with_scratch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seed: u64,
        scratch: &mut crate::soa::SoaScratch,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        if matches!(model, NoiseModel::Independent { .. }) {
            let mut channel = StochasticChannel::new(n, model, seed);
            return self.simulate_over(inputs, model, &mut channel);
        }
        crate::soa::repetition_collapsed(self.protocol, &self.config, inputs, model, seed, scratch)
    }

    /// Runs one trial per seed, lane-sliced: up to 64 trials share each
    /// channel word, with per-lane noise drawn from each trial's own
    /// seed stream so every result is bitwise identical to
    /// [`RepetitionSimulator::simulate`] with that seed.
    ///
    /// Shared-noise models run the shared-transcript lane engine;
    /// independent noise runs the per-party lane engine (sparse
    /// span-sampled flips per lane, see
    /// [`crate::lanes`]); only invalid ε falls back to the scalar
    /// per-trial loop.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()`.
    pub fn simulate_batch(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        seeds: &[u64],
    ) -> Vec<Result<SimOutcome<P::Output>, SimError>> {
        if model.validate().is_err() {
            return seeds
                .iter()
                .map(|&seed| self.simulate(inputs, model, seed))
                .collect();
        }
        if matches!(model, NoiseModel::Independent { .. }) {
            return seeds
                .chunks(beeps_channel::LANES)
                .flat_map(|group| {
                    crate::lanes::repetition_lanes_independent(
                        self.protocol,
                        &self.config,
                        inputs,
                        model,
                        group,
                    )
                })
                .collect();
        }
        seeds
            .chunks(beeps_channel::LANES)
            .flat_map(|group| {
                crate::lanes::repetition_lanes(self.protocol, &self.config, inputs, model, group)
            })
            .collect()
    }

    /// Runs the simulation over a caller-supplied channel — the hook for
    /// failure injection and channel-equivalence tests (same shape as
    /// [`crate::RewindSimulator::simulate_over`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedNoise`] if `model` has an invalid ε.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.num_parties()` or the channel is
    /// sized for a different number of parties.
    pub fn simulate_over(
        &self,
        inputs: &[P::Input],
        model: NoiseModel,
        channel: &mut dyn beeps_channel::Channel,
    ) -> Result<SimOutcome<P::Output>, SimError> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        if model.validate().is_err() {
            return Err(SimError::UnsupportedNoise {
                reason: "noise parameter outside [0, 1)",
            });
        }
        let resolved = self.config.resolve(model);
        let r = self.config.repetitions;
        let mut parties: Vec<IndexedParty<'_, P>> = (0..n)
            .map(|i| IndexedParty {
                index: i,
                inner: RepParty {
                    protocol: self.protocol,
                    input: inputs[i].clone(),
                    sim_transcript: Vec::with_capacity(self.protocol.length()),
                    repetitions: r,
                    params: resolved,
                    rep: 0,
                    ones: 0,
                    current: false,
                },
            })
            .collect();
        let budget = self.protocol.length() * r;
        let corrupted_before = channel.corrupted_rounds();
        let result = drive(&mut parties, channel, budget);
        debug_assert!(result.all_done, "fixed-length schedule must finish");

        let transcript = parties[0].inner.sim_transcript.clone();
        let agreement = parties.iter().all(|p| p.inner.sim_transcript == transcript);
        let outputs = parties
            .iter()
            .map(|p| {
                self.protocol
                    .output(p.index, &p.inner.input, &p.inner.sim_transcript)
            })
            .collect();
        Ok(SimOutcome::new(
            transcript,
            outputs,
            SimStats {
                channel_rounds: result.rounds,
                phase_rounds: crate::outcome::PhaseRounds {
                    chunk: result.rounds,
                    ..Default::default()
                },
                protocol_rounds: self.protocol.length(),
                chunks_committed: 0,
                rewinds: 0,
                agreement,
                energy: result.energy,
                corrupted_rounds: channel.corrupted_rounds() - corrupted_before,
            },
        ))
    }
}

/// Per-party state: replays the protocol against the majority-decoded
/// transcript, beeping each decision `R` times.
struct RepParty<'a, P: Protocol> {
    protocol: &'a P,
    input: P::Input,
    sim_transcript: Vec<bool>,
    repetitions: usize,
    params: ResolvedParams,
    rep: usize,
    ones: usize,
    current: bool,
}

impl<P: Protocol> SimParty for IndexedParty<'_, P> {
    fn beep(&mut self) -> bool {
        let inner = &mut self.inner;
        if inner.sim_transcript.len() >= inner.protocol.length() {
            return false;
        }
        if inner.rep == 0 {
            inner.current = inner
                .protocol
                .beep(self.index, &inner.input, &inner.sim_transcript);
        }
        inner.current
    }

    fn hear(&mut self, heard: bool) {
        let inner = &mut self.inner;
        if inner.sim_transcript.len() >= inner.protocol.length() {
            return;
        }
        inner.ones += usize::from(heard);
        inner.rep += 1;
        if inner.rep == inner.repetitions {
            inner
                .sim_transcript
                .push(inner.ones >= inner.params.rep_ones);
            inner.rep = 0;
            inner.ones = 0;
        }
    }

    fn is_done(&self) -> bool {
        self.inner.sim_transcript.len() >= self.inner.protocol.length()
    }
}

/// Pairs a party state machine with its index.
struct IndexedParty<'a, P: Protocol> {
    index: usize,
    inner: RepParty<'a, P>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::run_noiseless;
    use beeps_protocols::{InputSet, LeaderElection, Membership};

    fn cfg(n: usize, eps: f64) -> SimulatorConfig {
        SimulatorConfig::builder(n)
            .model(NoiseModel::Correlated { epsilon: eps })
            .build()
    }

    #[test]
    fn noiseless_channel_reproduces_exactly_with_one_repetition() {
        let p = InputSet::new(5);
        let inputs = [2, 9, 0, 0, 4];
        let mut config = cfg(5, 0.2);
        config.repetitions = 1;
        let sim = RepetitionSimulator::new(&p, config);
        let out = sim.simulate(&inputs, NoiseModel::Noiseless, 0).unwrap();
        let truth = run_noiseless(&p, &inputs);
        assert_eq!(out.transcript(), truth.transcript());
        assert_eq!(out.outputs(), truth.outputs());
        assert_eq!(out.stats().channel_rounds, p.length());
    }

    #[test]
    fn survives_correlated_noise() {
        let p = InputSet::new(8);
        let inputs = [0, 3, 3, 7, 12, 15, 1, 9];
        let sim = RepetitionSimulator::new(&p, cfg(8, 1.0 / 3.0));
        let truth = run_noiseless(&p, &inputs);
        let mut good = 0;
        for seed in 0..20 {
            let out = sim
                .simulate(&inputs, NoiseModel::Correlated { epsilon: 1.0 / 3.0 }, seed)
                .unwrap();
            if out.transcript() == truth.transcript() {
                good += 1;
            }
        }
        assert!(good >= 18, "only {good}/20 clean simulations");
    }

    #[test]
    fn adaptive_protocols_survive() {
        let p = LeaderElection::new(6, 8);
        let inputs = [3, 200, 117, 9, 41, 77];
        let sim = RepetitionSimulator::new(&p, cfg(6, 0.25));
        let out = sim
            .simulate(&inputs, NoiseModel::Correlated { epsilon: 0.25 }, 5)
            .unwrap();
        assert_eq!(out.outputs(), &[200; 6]);
    }

    #[test]
    fn one_sided_down_threshold_is_one() {
        // Under 1->0 noise a single surviving copy proves the 1.
        let p = Membership::new(3, 8);
        let inputs = [Some(2), Some(7), None];
        let config = SimulatorConfig::builder(3)
            .model(NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 })
            .build();
        let sim = RepetitionSimulator::new(&p, config);
        let truth = run_noiseless(&p, &inputs);
        let mut good = 0;
        for seed in 0..20 {
            let out = sim
                .simulate(
                    &inputs,
                    NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 },
                    seed,
                )
                .unwrap();
            if out.transcript() == truth.transcript() {
                good += 1;
            }
        }
        assert!(good >= 18, "only {good}/20 clean simulations");
    }

    #[test]
    fn overhead_equals_repetitions() {
        let p = InputSet::new(4);
        let sim = RepetitionSimulator::new(&p, cfg(4, 0.1));
        let r = sim.config().repetitions;
        let out = sim
            .simulate(&[0, 1, 2, 3], NoiseModel::Correlated { epsilon: 0.1 }, 1)
            .unwrap();
        assert!((out.stats().overhead() - r as f64).abs() < 1e-9);
    }

    #[test]
    fn invalid_noise_is_reported() {
        let p = InputSet::new(2);
        let sim = RepetitionSimulator::new(&p, cfg(2, 0.1));
        let err = sim
            .simulate(&[0, 1], NoiseModel::Correlated { epsilon: 1.5 }, 0)
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedNoise { .. }));
    }
}
