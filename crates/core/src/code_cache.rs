//! Shared cache of owners-phase code tables.
//!
//! Building a symbol code ([`beeps_ecc::RandomCode`] /
//! [`beeps_ecc::ConstantWeightCode`]) costs `O(q · len)` RNG draws plus
//! duplicate rejection — roughly 10 µs at the default experiment sizes —
//! and every `simulate_over` call pays it again. An experiment sweeping a
//! few hundred trials over a handful of distinct configurations therefore
//! rebuilds the same handful of tables hundreds of times. A [`CodeCache`]
//! keys the built table by the exact tuple of inputs the constructors
//! consume, so each distinct configuration builds once per experiment and
//! every later request — from any worker thread — shares the same `Arc`.
//!
//! Determinism: a code table is a pure function of
//! `(chunk_len, code_len, code_weight, code_seed)`, so handing out a
//! shared copy is observationally identical to rebuilding. The
//! `cached_and_uncached_simulations_agree` test in
//! `crates/core/tests/code_cache.rs` pins this bitwise across the rewind
//! and hierarchical simulators.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::owners::SharedCode;
use crate::params::SimulatorConfig;

/// Everything [`SimulatorConfig::build_code`] feeds the code
/// constructors: `chunk_len` fixes the alphabet (`q = chunk_len + 1`),
/// `code_weight` selects random (`None`) versus constant-weight
/// (`Some(w)`) construction, and the remaining fields are passed through.
type CodeKey = (usize, usize, Option<usize>, u64);

/// A thread-safe cache of built symbol-code tables, shared across trials
/// (and worker threads) of an experiment.
///
/// Attach one to a [`SimulatorConfig`] with
/// [`SimulatorConfig::with_code_cache`] or the builder's
/// [`code_cache`](crate::params::SimulatorConfigBuilder::code_cache)
/// setter; `build_code()` then consults the cache transparently, so the
/// simulators need no changes to benefit.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use beeps_core::{CodeCache, SimulatorConfig};
///
/// let cache = Arc::new(CodeCache::new());
/// let config = SimulatorConfig::builder(16)
///     .code_cache(Arc::clone(&cache))
///     .build();
/// let a = config.build_code();
/// let b = config.build_code();
/// assert!(Arc::ptr_eq(&a, &b), "second build is a cache hit");
/// assert_eq!((cache.builds(), cache.hits()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct CodeCache {
    tables: Mutex<BTreeMap<CodeKey, SharedCode>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl CodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the table for `config`'s code parameters, building (and
    /// memoizing) it on first request.
    ///
    /// Construction happens under the cache lock: two workers racing on
    /// the same key would otherwise both pay the build that the cache
    /// exists to eliminate.
    ///
    /// # Panics
    ///
    /// Panics if the underlying code constructor does (see
    /// [`SimulatorConfig::build_code`]) or a previous builder panicked
    /// while holding the lock.
    pub fn get_or_build(&self, config: &SimulatorConfig) -> SharedCode {
        let key = (
            config.chunk_len,
            config.code_len,
            config.code_weight,
            config.code_seed,
        );
        let mut tables = self.tables.lock().expect("code cache lock poisoned");
        if let Some(code) = tables.get(&key) {
            // beeps-lint: allow(atomic-ordering) -- inert monotone stats counter; hits/builds feed diagnostics only and never publish or gate data (the table itself travels under the mutex)
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(code);
        }
        let code = config.build_code_uncached();
        // beeps-lint: allow(atomic-ordering) -- inert monotone stats counter; see the hits counter above
        self.builds.fetch_add(1, Ordering::Relaxed);
        tables.insert(key, Arc::clone(&code));
        code
    }

    /// Number of distinct tables currently memoized.
    pub fn len(&self) -> usize {
        self.tables.lock().expect("code cache lock poisoned").len()
    }

    /// Whether no table has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cache misses, i.e. tables actually built.
    pub fn builds(&self) -> u64 {
        // beeps-lint: allow(atomic-ordering) -- inert diagnostic load: the count is advisory and monotone, no data depends on it
        self.builds.load(Ordering::Relaxed)
    }

    /// Total cache hits served without rebuilding.
    pub fn hits(&self) -> u64 {
        // beeps-lint: allow(atomic-ordering) -- inert diagnostic load: the count is advisory and monotone, no data depends on it
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_parameters_get_distinct_tables() {
        let cache = CodeCache::new();
        let a = SimulatorConfig::builder(8).code_seed(1).build();
        let b = SimulatorConfig::builder(8).code_seed(2).build();
        let ta = cache.get_or_build(&a);
        let tb = cache.get_or_build(&b);
        assert!(!Arc::ptr_eq(&ta, &tb));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn repeat_requests_share_one_table() {
        let cache = CodeCache::new();
        let config = SimulatorConfig::builder(8).build();
        let first = cache.get_or_build(&config);
        for _ in 0..5 {
            assert!(Arc::ptr_eq(&first, &cache.get_or_build(&config)));
        }
        assert_eq!((cache.builds(), cache.hits()), (1, 5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn weight_selects_a_separate_slot() {
        let cache = CodeCache::new();
        let random = SimulatorConfig::builder(8).build();
        let mut light = random.clone();
        light.code_weight = Some(6);
        let tr = cache.get_or_build(&random);
        let tl = cache.get_or_build(&light);
        assert!(!Arc::ptr_eq(&tr, &tl));
        assert_eq!(tr.codeword_len(), tl.codeword_len());
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn concurrent_requests_converge_on_one_build() {
        let cache = Arc::new(CodeCache::new());
        let config = SimulatorConfig::builder(16).build();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let config = config.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        let code = cache.get_or_build(&config);
                        assert_eq!(code.alphabet_size(), config.chunk_len + 1);
                    }
                });
            }
        });
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 31);
    }
}
