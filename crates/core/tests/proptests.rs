//! Property-based tests for the coding schemes: invariants that must hold
//! for arbitrary inputs, not just curated scenarios.

use beeps_channel::{NoiseModel, Protocol};
use beeps_core::{run_owners_phase, RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over a noiseless channel, Algorithm 1's owners phase is valid for
    /// every bit matrix: agreed owners who really beeped.
    #[test]
    fn owners_phase_valid_noiselessly(
        bits in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 5),
            1..6,
        ),
        code_seed in any::<u64>(),
    ) {
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 24, code_seed, 0);
        prop_assert!(out.valid_for(&bits));
    }

    /// First-claimant-in-turn-order: the owner of every 1-round is the
    /// lowest-indexed party that beeped there, when the phase is clean.
    #[test]
    fn owners_are_lowest_beepers_noiselessly(
        bits in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 4),
            1..5,
        ),
    ) {
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 24, 7, 0);
        for j in 0..4 {
            let lowest = (0..bits.len()).find(|&i| bits[i][j]);
            prop_assert_eq!(out.owners[0][j], lowest);
        }
    }

    /// Config sizing is monotone: more noise never shrinks any parameter.
    #[test]
    fn config_monotone_in_eps(n in 1usize..64, step in 1usize..5) {
        let lo = 0.05 * step as f64;
        let hi = (lo + 0.1).min(0.45);
        let a = SimulatorConfig::builder(n).model(NoiseModel::Correlated { epsilon: lo }).build();
        let b = SimulatorConfig::builder(n).model(NoiseModel::Correlated { epsilon: hi }).build();
        prop_assert!(b.repetitions >= a.repetitions);
        prop_assert!(b.code_len >= a.code_len);
        prop_assert!(b.verify_repetitions >= a.verify_repetitions);
    }

    /// Phase-round accounting partitions the run for arbitrary instances.
    #[test]
    fn phase_rounds_partition_channel_rounds(
        n in 2usize..7,
        seed in any::<u64>(),
        input_seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let p = InputSet::new(n);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
        if let Ok(out) = sim.simulate(&inputs, model, seed) {
            let ph = out.stats().phase_rounds;
            prop_assert_eq!(
                ph.chunk + ph.owners + ph.verify,
                out.stats().channel_rounds
            );
            prop_assert!(out.stats().agreement);
            prop_assert_eq!(out.transcript().len(), p.length());
        }
    }

    /// Through the [`beeps_core::Simulator`] trait, every scheme
    /// reproduces the noiseless transcript exactly when the channel is
    /// noise-free.
    #[test]
    fn every_scheme_is_exact_at_zero_noise(
        n in 2usize..7,
        seed in any::<u64>(),
        input_seed in any::<u64>(),
    ) {
        use beeps_core::{
            HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator,
            RepetitionSimulator, Simulator,
        };
        use beeps_protocols::RollCall;
        use rand::{rngs::StdRng, Rng, SeedableRng};

        let p = InputSet::new(n);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let truth = beeps_channel::run_noiseless(&p, &inputs);
        let config = SimulatorConfig::builder(n).model(NoiseModel::Noiseless).build();
        let rep = RepetitionSimulator::new(&p, config.clone());
        let rew = RewindSimulator::new(&p, config.clone());
        let hier = HierarchicalSimulator::new(&p, config);
        let z = OneToZeroSimulator::new(&p, 2, 32.0);
        let schemes: Vec<&dyn Simulator<_, _>> = vec![&rep, &rew, &hier, &z];
        for sim in schemes {
            let out = sim.simulate(&inputs, NoiseModel::Noiseless, seed);
            prop_assert!(out.is_ok(), "{} failed at eps=0", sim.name());
            prop_assert_eq!(
                out.unwrap().transcript(),
                truth.transcript(),
                "{} transcript diverged at eps=0",
                sim.name()
            );
        }

        // The owned-rounds scheme needs a uniquely-owned workload.
        let rc = RollCall::new(n);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let rc_truth = beeps_channel::run_noiseless(&rc, &bits);
        let owned = OwnedRoundsSimulator::new(
            &rc,
            SimulatorConfig::builder(n).model(NoiseModel::Noiseless).build(),
        );
        let owned: &dyn Simulator<_, _> = &owned;
        let out = owned.simulate(&bits, NoiseModel::Noiseless, seed);
        prop_assert!(out.is_ok(), "owned_rounds failed at eps=0");
        prop_assert_eq!(out.unwrap().transcript(), rc_truth.transcript());
    }

    /// Single-party simulations work for any input (degenerate owners
    /// phase, trivial verification).
    #[test]
    fn single_party_simulation(input in 0usize..2, seed in any::<u64>()) {
        let p = InputSet::new(1);
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let sim = RewindSimulator::new(&p, SimulatorConfig::builder(1).model(model).build());
        if let Ok(out) = sim.simulate(&[input], model, seed) {
            let truth = beeps_channel::run_noiseless(&p, &[input]);
            prop_assert_eq!(out.transcript(), truth.transcript());
        }
    }
}
