//! Property-based tests for the coding schemes: invariants that must hold
//! for arbitrary inputs, not just curated scenarios.

use beeps_channel::{NoiseModel, Protocol};
use beeps_core::{run_owners_phase, RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over a noiseless channel, Algorithm 1's owners phase is valid for
    /// every bit matrix: agreed owners who really beeped.
    #[test]
    fn owners_phase_valid_noiselessly(
        bits in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 5),
            1..6,
        ),
        code_seed in any::<u64>(),
    ) {
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 24, code_seed, 0);
        prop_assert!(out.valid_for(&bits));
    }

    /// First-claimant-in-turn-order: the owner of every 1-round is the
    /// lowest-indexed party that beeped there, when the phase is clean.
    #[test]
    fn owners_are_lowest_beepers_noiselessly(
        bits in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 4),
            1..5,
        ),
    ) {
        let out = run_owners_phase(&bits, NoiseModel::Noiseless, 24, 7, 0);
        for j in 0..4 {
            let lowest = (0..bits.len()).find(|&i| bits[i][j]);
            prop_assert_eq!(out.owners[0][j], lowest);
        }
    }

    /// Config sizing is monotone: more noise never shrinks any parameter.
    #[test]
    fn config_monotone_in_eps(n in 1usize..64, step in 1usize..5) {
        let lo = 0.05 * step as f64;
        let hi = (lo + 0.1).min(0.45);
        let a = SimulatorConfig::for_channel(n, NoiseModel::Correlated { epsilon: lo });
        let b = SimulatorConfig::for_channel(n, NoiseModel::Correlated { epsilon: hi });
        prop_assert!(b.repetitions >= a.repetitions);
        prop_assert!(b.code_len >= a.code_len);
        prop_assert!(b.verify_repetitions >= a.verify_repetitions);
    }

    /// Phase-round accounting partitions the run for arbitrary instances.
    #[test]
    fn phase_rounds_partition_channel_rounds(
        n in 2usize..7,
        seed in any::<u64>(),
        input_seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let p = InputSet::new(n);
        let mut rng = StdRng::seed_from_u64(input_seed);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let sim = RewindSimulator::new(&p, SimulatorConfig::for_channel(n, model));
        if let Ok(out) = sim.simulate(&inputs, model, seed) {
            let ph = out.stats().phase_rounds;
            prop_assert_eq!(
                ph.chunk + ph.owners + ph.verify,
                out.stats().channel_rounds
            );
            prop_assert!(out.stats().agreement);
            prop_assert_eq!(out.transcript().len(), p.length());
        }
    }

    /// Single-party simulations work for any input (degenerate owners
    /// phase, trivial verification).
    #[test]
    fn single_party_simulation(input in 0usize..2, seed in any::<u64>()) {
        let p = InputSet::new(1);
        let model = NoiseModel::Correlated { epsilon: 0.1 };
        let sim = RewindSimulator::new(&p, SimulatorConfig::for_channel(1, model));
        if let Ok(out) = sim.simulate(&[input], model, seed) {
            let truth = beeps_channel::run_noiseless(&p, &[input]);
            prop_assert_eq!(out.transcript(), truth.transcript());
        }
    }
}
