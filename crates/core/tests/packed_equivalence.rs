//! Property tests for the word-packed delivery path: every scheme must
//! behave **bit-identically** whether per-party deliveries travel as the
//! packed [`BitVec`] the channel produces or are round-tripped through a
//! plain `Vec<bool>` and re-packed.
//!
//! This pins the `BitVec` adapter layer (`to_bools` / `from_bools` /
//! `uniform`) against the reference representation: if packing, tail
//! masking, or the uniform-delivery fast path ever disagreed with the
//! boolean semantics, some scheme's transcript would diverge here.

use beeps_channel::{
    run_protocol, run_protocol_over, BitVec, Channel, Delivery, NoiseModel, StochasticChannel,
};
use beeps_core::{
    HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator, RepetitionSimulator,
    RewindSimulator, SimulatorConfig,
};
use beeps_protocols::{InputSet, RollCall};

/// Delegates to a [`StochasticChannel`] but re-materialises every
/// per-party delivery through `Vec<bool>`, so downstream code consumes a
/// freshly re-packed `BitVec` instead of the channel's original words.
struct RoundtripChannel {
    inner: StochasticChannel,
}

impl RoundtripChannel {
    fn new(n: usize, model: NoiseModel, seed: u64) -> Self {
        Self {
            inner: StochasticChannel::new(n, model, seed),
        }
    }
}

impl Channel for RoundtripChannel {
    fn num_parties(&self) -> usize {
        self.inner.num_parties()
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        match self.inner.transmit(true_or) {
            Delivery::Shared(bit) => Delivery::Shared(bit),
            Delivery::PerParty(bits) => {
                let bools = bits.to_bools();
                assert_eq!(bits, bools, "packed bits disagree with bool view");
                Delivery::PerParty(BitVec::from_bools(&bools))
            }
            Delivery::Sparse(sparse) => {
                // Expand the flip list through the boolean reference
                // representation, so consumers of this channel exercise
                // the dense path on bits the sparse path produced.
                let bools: Vec<bool> = (0..sparse.len()).map(|i| sparse.heard_by(i)).collect();
                let dense = BitVec::from_bools(&bools);
                assert_eq!(sparse, dense, "sparse delivery disagrees with dense view");
                Delivery::PerParty(dense)
            }
        }
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn corrupted_rounds(&self) -> usize {
        self.inner.corrupted_rounds()
    }
}

/// The noise regimes to sweep: every shared regime plus the only regime
/// that produces genuinely per-party (divergent) deliveries.
fn models() -> Vec<NoiseModel> {
    vec![
        NoiseModel::Noiseless,
        NoiseModel::Correlated { epsilon: 0.1 },
        NoiseModel::OneSidedZeroToOne { epsilon: 0.2 },
        NoiseModel::OneSidedOneToZero { epsilon: 0.2 },
        NoiseModel::Independent { epsilon: 0.05 },
    ]
}

#[test]
fn naked_execution_matches_roundtrip() {
    let p = InputSet::new(6);
    let inputs = [3, 0, 8, 8, 11, 5];
    for model in models() {
        for seed in 0..4 {
            let packed = run_protocol(&p, &inputs, model, seed);
            let mut rt = RoundtripChannel::new(6, model, seed);
            let unpacked = run_protocol_over(&p, &inputs, &mut rt);
            for i in 0..6 {
                assert_eq!(
                    packed.views().view(i),
                    unpacked.views().view(i),
                    "party {i} view diverged over {model} seed {seed}"
                );
            }
            assert_eq!(packed.outputs(), unpacked.outputs());
            assert_eq!(packed.energy(), unpacked.energy());
            assert_eq!(packed.corrupted_rounds(), unpacked.corrupted_rounds());
        }
    }
}

#[test]
fn repetition_scheme_matches_roundtrip() {
    let p = InputSet::new(5);
    let inputs = [2, 9, 0, 0, 4];
    let config = SimulatorConfig::builder(5)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RepetitionSimulator::new(&p, config);
    for model in models() {
        for seed in 0..3 {
            let packed = sim.simulate(&inputs, model, seed).unwrap();
            let mut rt = RoundtripChannel::new(5, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt).unwrap();
            assert_eq!(packed.transcript(), unpacked.transcript());
            assert_eq!(packed.outputs(), unpacked.outputs());
            assert_eq!(packed.stats(), unpacked.stats());
        }
    }
}

#[test]
fn rewind_scheme_matches_roundtrip() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RewindSimulator::new(&p, config);
    for model in models() {
        for seed in 0..2 {
            let packed = sim.simulate(&inputs, model, seed);
            let mut rt = RoundtripChannel::new(4, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt);
            match (packed, unpacked) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch over {model}"),
            }
        }
    }
}

#[test]
fn hierarchical_scheme_matches_roundtrip() {
    let p = InputSet::new(4);
    let inputs = [1, 6, 6, 3];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = HierarchicalSimulator::new(&p, config);
    for model in models() {
        for seed in 0..2 {
            let packed = sim.simulate(&inputs, model, seed);
            let mut rt = RoundtripChannel::new(4, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt);
            match (packed, unpacked) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch over {model}"),
            }
        }
    }
}

#[test]
fn owned_rounds_scheme_matches_roundtrip() {
    let p = RollCall::new(8);
    let inputs = [true, false, true, true, false, false, true, false];
    let config = SimulatorConfig::builder(8)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = OwnedRoundsSimulator::new(&p, config);
    for model in models() {
        for seed in 0..2 {
            let packed = sim.simulate(&inputs, model, seed);
            let mut rt = RoundtripChannel::new(8, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt);
            match (packed, unpacked) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch over {model}"),
            }
        }
    }
}

/// Transposition proof for the lane-sliced repetition engine: a 64-lane
/// batch must be bitwise equal, trial by trial, to the scalar path.
#[test]
fn repetition_batch_matches_per_trial() {
    let p = InputSet::new(5);
    let inputs = [2, 9, 0, 0, 4];
    let config = SimulatorConfig::builder(5)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RepetitionSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..9).map(|i| i * 1_000_003 + 17).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed).unwrap();
            let sliced = sliced.unwrap();
            assert_eq!(
                scalar.transcript(),
                sliced.transcript(),
                "transcript diverged over {model} seed {seed}"
            );
            assert_eq!(scalar.outputs(), sliced.outputs());
            assert_eq!(scalar.stats(), sliced.stats());
        }
    }
}

/// Transposition proof for the lane-sliced rewind engine, including the
/// `BudgetExhausted` error path (transcripts, stats, and errors must all
/// be bitwise equal to the scalar path, trial by trial).
#[test]
fn rewind_batch_matches_per_trial() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RewindSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..9).map(|i| i * 6_700_417 + 3).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed);
            match (scalar, sliced) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.transcript(),
                        b.transcript(),
                        "transcript diverged over {model} seed {seed}"
                    );
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.err(), b.err(), "error mismatch over {model} seed {seed}"),
            }
        }
    }
}

/// A rewind batch under a starved budget must reproduce the scalar
/// path's `BudgetExhausted` errors exactly (rounds and committed count).
#[test]
fn rewind_batch_matches_per_trial_when_budget_starved() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.2 })
        .budget_factor(1.0)
        .build();
    let sim = RewindSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..16).collect();
    let model = NoiseModel::Correlated { epsilon: 0.2 };
    let batch = sim.simulate_batch(&inputs, model, &seeds);
    let mut exhausted = 0;
    for (&seed, sliced) in seeds.iter().zip(batch) {
        let scalar = sim.simulate(&inputs, model, seed);
        match (scalar, sliced) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.transcript(), b.transcript(), "seed {seed}");
                assert_eq!(a.stats(), b.stats());
            }
            (a, b) => {
                assert_eq!(a.err(), b.err(), "error mismatch seed {seed}");
                exhausted += 1;
            }
        }
    }
    assert!(exhausted > 0, "starved budget never exhausted: weak test");
}

/// Degenerate party counts: a single party (every delivery word is all
/// tail) and 65 parties (one bit past a word boundary, so the packed
/// path straddles two words). The rewind scheme must stay bitwise
/// identical between the packed and roundtrip representations at both,
/// in every noise regime.
#[test]
fn degenerate_party_counts_match_roundtrip() {
    for n in [1usize, 65] {
        let p = InputSet::new(n);
        let inputs: Vec<usize> = (0..n).map(|i| (7 * i + 1) % (2 * n)).collect();
        let config = SimulatorConfig::builder(n)
            .model(NoiseModel::Correlated { epsilon: 0.1 })
            .build();
        let sim = RewindSimulator::new(&p, config);
        for model in models() {
            for seed in 0..2 {
                let packed = sim.simulate(&inputs, model, seed);
                let mut rt = RoundtripChannel::new(n, model, seed);
                let unpacked = sim.simulate_over(&inputs, model, &mut rt);
                match (packed, unpacked) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.transcript(), b.transcript(), "n={n} {model} seed {seed}");
                        assert_eq!(a.outputs(), b.outputs());
                        assert_eq!(a.stats(), b.stats());
                    }
                    (a, b) => assert_eq!(
                        a.is_err(),
                        b.is_err(),
                        "error mismatch n={n} over {model} seed {seed}"
                    ),
                }
            }
        }
    }
}

/// Sparse flip lists and forced-dense rows are two encodings of the
/// same delivery: round by round they must compare equal (the semantic
/// `Delivery` equality) in every regime and at the degenerate party
/// counts. The saturated case drives noise hard enough that rounds
/// where *every* party's bit flips occur, forcing the sparse→dense
/// fallback — both encodings must agree through the crossover too.
#[test]
fn sparse_and_forced_dense_deliveries_agree_across_regimes() {
    let mut cases = models();
    cases.push(NoiseModel::Independent { epsilon: 0.97 });
    for n in [1usize, 65] {
        for &model in &cases {
            let mut sparse = StochasticChannel::new(n, model, 0xD15E);
            let mut dense = StochasticChannel::new(n, model, 0xD15E);
            dense.set_dense_deliveries(true);
            let mut fallbacks = 0usize;
            let mut all_flipped = 0usize;
            for round in 0..400 {
                let or = round % 3 == 0;
                let a = sparse.transmit(or);
                let b = dense.transmit(or);
                assert_eq!(a, b, "n={n} round {round} over {model}");
                if let Delivery::PerParty(_) = a {
                    fallbacks += 1;
                }
                if (0..n).all(|i| a.heard_by(i) != or) {
                    all_flipped += 1;
                }
            }
            if n == 65 && matches!(model, NoiseModel::Independent { epsilon } if epsilon > 0.5) {
                assert!(
                    fallbacks > 0,
                    "saturated noise never tripped the dense fallback"
                );
                assert!(
                    all_flipped > 0,
                    "saturated noise never flipped all parties in one round"
                );
            }
        }
    }
}

/// Windowed committed-transcript retention is a pure memory
/// optimization: sweeping the verification window from its minimum to
/// effectively unbounded must not move a bit of any collapsed scheme's
/// transcript, outputs, or stats relative to the default window, in any
/// regime.
#[test]
fn windowed_retention_matches_full_for_every_scheme() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let owned_p = RollCall::new(8);
    let owned_inputs = [true, false, true, true, false, false, true, false];
    let config = |window: Option<usize>| {
        let mut b = SimulatorConfig::builder(4).model(NoiseModel::Correlated { epsilon: 0.1 });
        if let Some(w) = window {
            b = b.verify_window(w);
        }
        b.build()
    };
    for model in models() {
        for seed in 0..2 {
            let reference = RewindSimulator::new(&p, config(None)).simulate(&inputs, model, seed);
            let hier_ref =
                HierarchicalSimulator::new(&p, config(None)).simulate(&inputs, model, seed);
            for window in [1usize, 2, usize::MAX] {
                let windowed =
                    RewindSimulator::new(&p, config(Some(window))).simulate(&inputs, model, seed);
                match (&reference, &windowed) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.transcript(),
                            b.transcript(),
                            "rewind window {window} over {model} seed {seed}"
                        );
                        assert_eq!(a.outputs(), b.outputs());
                        assert_eq!(a.stats(), b.stats());
                    }
                    (a, b) => assert_eq!(a.is_err(), b.is_err(), "window {window} over {model}"),
                }
                let hier = HierarchicalSimulator::new(&p, config(Some(window)))
                    .simulate(&inputs, model, seed);
                match (&hier_ref, &hier) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.transcript(),
                            b.transcript(),
                            "hierarchical window {window} over {model} seed {seed}"
                        );
                        assert_eq!(a.stats(), b.stats());
                    }
                    (a, b) => assert_eq!(a.is_err(), b.is_err(), "window {window} over {model}"),
                }
            }
            let owned_config = |window: Option<usize>| {
                let mut b =
                    SimulatorConfig::builder(8).model(NoiseModel::Correlated { epsilon: 0.1 });
                if let Some(w) = window {
                    b = b.verify_window(w);
                }
                b.build()
            };
            let owned_ref = OwnedRoundsSimulator::new(&owned_p, owned_config(None)).simulate(
                &owned_inputs,
                model,
                seed,
            );
            for window in [1usize, usize::MAX] {
                let owned = OwnedRoundsSimulator::new(&owned_p, owned_config(Some(window)))
                    .simulate(&owned_inputs, model, seed);
                match (&owned_ref, &owned) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.transcript(),
                            b.transcript(),
                            "owned_rounds window {window} over {model} seed {seed}"
                        );
                        assert_eq!(a.stats(), b.stats());
                    }
                    (a, b) => assert_eq!(a.is_err(), b.is_err(), "window {window} over {model}"),
                }
            }
        }
    }
}

/// A starved budget must exhaust at the identical round regardless of
/// the retention window: `BudgetExhausted { rounds_used, committed }`
/// is part of the bitwise contract, and rematerializing evicted window
/// entries must not perturb it.
#[test]
fn windowed_retention_matches_full_when_budget_starved() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let model = NoiseModel::Correlated { epsilon: 0.2 };
    let config = |window: Option<usize>| {
        let mut b = SimulatorConfig::builder(4).model(model).budget_factor(1.0);
        if let Some(w) = window {
            b = b.verify_window(w);
        }
        b.build()
    };
    let mut exhausted = 0usize;
    for seed in 0..16 {
        let reference = RewindSimulator::new(&p, config(None)).simulate(&inputs, model, seed);
        if reference.is_err() {
            exhausted += 1;
        }
        for window in [1usize, usize::MAX] {
            let windowed =
                RewindSimulator::new(&p, config(Some(window))).simulate(&inputs, model, seed);
            match (&reference, &windowed) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.transcript(),
                        b.transcript(),
                        "window {window} seed {seed}"
                    );
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(
                    a.as_ref().err(),
                    b.as_ref().err(),
                    "budget error mismatch window {window} seed {seed}"
                ),
            }
        }
    }
    assert!(exhausted > 0, "starved budget never exhausted: weak test");
}

/// Transposition proof for the lane-sliced hierarchical engine: a batch
/// must be bitwise equal, trial by trial, to the scalar path in every
/// regime (independent noise falls back to the per-seed loop, which
/// must be equally invisible).
#[test]
fn hierarchical_batch_matches_per_trial() {
    let p = InputSet::new(4);
    let inputs = [1, 6, 6, 3];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = HierarchicalSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..9).map(|i| i * 999_983 + 29).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed);
            match (scalar, sliced) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.transcript(),
                        b.transcript(),
                        "transcript diverged over {model} seed {seed}"
                    );
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.err(), b.err(), "error mismatch over {model} seed {seed}"),
            }
        }
    }
}

/// A hierarchical batch under a starved budget must reproduce the
/// scalar path's `BudgetExhausted` errors exactly through the
/// lane-sliced engine (rounds and committed count).
#[test]
fn hierarchical_batch_matches_per_trial_when_budget_starved() {
    let p = InputSet::new(8);
    let inputs = [1, 5, 5, 2, 9, 0, 12, 3];
    let model = NoiseModel::Correlated { epsilon: 0.2 };
    let config = SimulatorConfig::builder(8)
        .model(model)
        .budget_factor(0.5)
        .build();
    let sim = HierarchicalSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..32).collect();
    let batch = sim.simulate_batch(&inputs, model, &seeds);
    let mut exhausted = 0;
    for (&seed, sliced) in seeds.iter().zip(batch) {
        let scalar = sim.simulate(&inputs, model, seed);
        match (scalar, sliced) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.transcript(), b.transcript(), "seed {seed}");
                assert_eq!(a.stats(), b.stats());
            }
            (a, b) => {
                assert_eq!(a.err(), b.err(), "error mismatch seed {seed}");
                exhausted += 1;
            }
        }
    }
    assert!(exhausted > 0, "starved budget never exhausted: weak test");
}

/// Transposition proof for the lane-sliced owned-rounds engine across
/// every regime (shared regimes ride the lane channel, independent
/// noise the per-seed fallback — both must match the scalar path).
#[test]
fn owned_rounds_batch_matches_per_trial() {
    let p = RollCall::new(8);
    let inputs = [true, false, true, true, false, false, true, false];
    let config = SimulatorConfig::builder(8)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = OwnedRoundsSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..9).map(|i| i * 104_729 + 7).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed);
            match (scalar, sliced) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.transcript(),
                        b.transcript(),
                        "transcript diverged over {model} seed {seed}"
                    );
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.err(), b.err(), "error mismatch over {model} seed {seed}"),
            }
        }
    }
}

/// Transposition proof for the lane-sliced one-to-zero engine. The
/// sweep includes the regimes the scheme rejects: those must surface
/// the identical `UnsupportedNoise` error from the batch path.
#[test]
fn one_to_zero_batch_matches_per_trial() {
    let p = InputSet::new(5);
    let inputs = [2, 8, 8, 1, 0];
    let sim = OneToZeroSimulator::new(&p, 2, 32.0);
    let seeds: Vec<u64> = (0..9).map(|i| i * 15_485_863 + 11).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed);
            match (scalar, sliced) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.transcript(),
                        b.transcript(),
                        "transcript diverged over {model} seed {seed}"
                    );
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.err(), b.err(), "error mismatch over {model} seed {seed}"),
            }
        }
    }
}

/// A one-to-zero batch at the minimum legal budget under heavy erasure
/// must reproduce the scalar path's `BudgetExhausted` errors exactly
/// through the lane-sliced engine.
#[test]
fn one_to_zero_batch_matches_per_trial_when_budget_starved() {
    let p = InputSet::new(5);
    let inputs = [2, 8, 8, 1, 0];
    let sim = OneToZeroSimulator::new(&p, 2, 2.0);
    let model = NoiseModel::OneSidedOneToZero { epsilon: 0.45 };
    let seeds: Vec<u64> = (0..24).collect();
    let batch = sim.simulate_batch(&inputs, model, &seeds);
    let mut exhausted = 0;
    for (&seed, sliced) in seeds.iter().zip(batch) {
        let scalar = sim.simulate(&inputs, model, seed);
        match (scalar, sliced) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.transcript(), b.transcript(), "seed {seed}");
                assert_eq!(a.stats(), b.stats());
            }
            (a, b) => {
                assert_eq!(a.err(), b.err(), "error mismatch seed {seed}");
                exhausted += 1;
            }
        }
    }
    assert!(exhausted > 0, "starved budget never exhausted: weak test");
}

/// A batch one trial past a full lane group (65 seeds = 64 + 1) must
/// split cleanly: the full group and the single-lane remainder both
/// bitwise match the scalar path.
#[test]
fn partial_final_lane_group_matches_per_trial() {
    let p = InputSet::new(5);
    let inputs = [2, 9, 0, 0, 4];
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let config = SimulatorConfig::builder(5).model(model).build();
    let sim = RepetitionSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..65).map(|i| i * 2_097_593 + 41).collect();
    let batch = sim.simulate_batch(&inputs, model, &seeds);
    assert_eq!(batch.len(), seeds.len());
    for (&seed, sliced) in seeds.iter().zip(batch) {
        let scalar = sim.simulate(&inputs, model, seed).unwrap();
        let sliced = sliced.unwrap();
        assert_eq!(
            scalar.transcript(),
            sliced.transcript(),
            "transcript diverged at seed {seed}"
        );
        assert_eq!(scalar.outputs(), sliced.outputs());
        assert_eq!(scalar.stats(), sliced.stats());
    }
}

/// Independent noise through the repetition lane engine at the
/// degenerate party counts: one party (a delivery word that is all
/// tail) and 65 parties (the flip calendar straddles a word boundary).
/// Both must stay bitwise identical to the scalar path.
#[test]
fn independent_repetition_batch_matches_at_degenerate_party_counts() {
    let model = NoiseModel::Independent { epsilon: 0.05 };
    for n in [1usize, 65] {
        let p = InputSet::new(n);
        let inputs: Vec<usize> = (0..n).map(|i| (7 * i + 1) % (2 * n)).collect();
        let config = SimulatorConfig::builder(n).model(model).build();
        let sim = RepetitionSimulator::new(&p, config);
        let seeds: Vec<u64> = (0..6).map(|i| i * 32_452_843 + 13).collect();
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed).unwrap();
            let sliced = sliced.unwrap();
            assert_eq!(
                scalar.transcript(),
                sliced.transcript(),
                "transcript diverged at n={n} seed {seed}"
            );
            assert_eq!(scalar.outputs(), sliced.outputs());
            assert_eq!(scalar.stats(), sliced.stats());
        }
    }
}

#[test]
fn one_to_zero_scheme_matches_roundtrip() {
    let p = InputSet::new(5);
    let inputs = [2, 8, 8, 1, 0];
    let sim = OneToZeroSimulator::new(&p, 2, 32.0);
    let model = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    for seed in 0..4 {
        let packed = sim.simulate(&inputs, model, seed);
        let mut rt = RoundtripChannel::new(5, model, seed);
        let unpacked = sim.simulate_over(&inputs, model, &mut rt);
        match (packed, unpacked) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.transcript(), b.transcript());
                assert_eq!(a.outputs(), b.outputs());
                assert_eq!(a.stats(), b.stats());
            }
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch seed {seed}"),
        }
    }
}
