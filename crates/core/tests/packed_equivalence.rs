//! Property tests for the word-packed delivery path: every scheme must
//! behave **bit-identically** whether per-party deliveries travel as the
//! packed [`BitVec`] the channel produces or are round-tripped through a
//! plain `Vec<bool>` and re-packed.
//!
//! This pins the `BitVec` adapter layer (`to_bools` / `from_bools` /
//! `uniform`) against the reference representation: if packing, tail
//! masking, or the uniform-delivery fast path ever disagreed with the
//! boolean semantics, some scheme's transcript would diverge here.

use beeps_channel::{
    run_protocol, run_protocol_over, BitVec, Channel, Delivery, NoiseModel, StochasticChannel,
};
use beeps_core::{
    HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator, RepetitionSimulator,
    RewindSimulator, SimulatorConfig,
};
use beeps_protocols::{InputSet, RollCall};

/// Delegates to a [`StochasticChannel`] but re-materialises every
/// per-party delivery through `Vec<bool>`, so downstream code consumes a
/// freshly re-packed `BitVec` instead of the channel's original words.
struct RoundtripChannel {
    inner: StochasticChannel,
}

impl RoundtripChannel {
    fn new(n: usize, model: NoiseModel, seed: u64) -> Self {
        Self {
            inner: StochasticChannel::new(n, model, seed),
        }
    }
}

impl Channel for RoundtripChannel {
    fn num_parties(&self) -> usize {
        self.inner.num_parties()
    }

    fn transmit(&mut self, true_or: bool) -> Delivery {
        match self.inner.transmit(true_or) {
            Delivery::Shared(bit) => Delivery::Shared(bit),
            Delivery::PerParty(bits) => {
                let bools = bits.to_bools();
                assert_eq!(bits, bools, "packed bits disagree with bool view");
                Delivery::PerParty(BitVec::from_bools(&bools))
            }
        }
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn corrupted_rounds(&self) -> usize {
        self.inner.corrupted_rounds()
    }
}

/// The noise regimes to sweep: every shared regime plus the only regime
/// that produces genuinely per-party (divergent) deliveries.
fn models() -> Vec<NoiseModel> {
    vec![
        NoiseModel::Noiseless,
        NoiseModel::Correlated { epsilon: 0.1 },
        NoiseModel::OneSidedZeroToOne { epsilon: 0.2 },
        NoiseModel::OneSidedOneToZero { epsilon: 0.2 },
        NoiseModel::Independent { epsilon: 0.05 },
    ]
}

#[test]
fn naked_execution_matches_roundtrip() {
    let p = InputSet::new(6);
    let inputs = [3, 0, 8, 8, 11, 5];
    for model in models() {
        for seed in 0..4 {
            let packed = run_protocol(&p, &inputs, model, seed);
            let mut rt = RoundtripChannel::new(6, model, seed);
            let unpacked = run_protocol_over(&p, &inputs, &mut rt);
            for i in 0..6 {
                assert_eq!(
                    packed.views().view(i),
                    unpacked.views().view(i),
                    "party {i} view diverged over {model} seed {seed}"
                );
            }
            assert_eq!(packed.outputs(), unpacked.outputs());
            assert_eq!(packed.energy(), unpacked.energy());
            assert_eq!(packed.corrupted_rounds(), unpacked.corrupted_rounds());
        }
    }
}

#[test]
fn repetition_scheme_matches_roundtrip() {
    let p = InputSet::new(5);
    let inputs = [2, 9, 0, 0, 4];
    let config = SimulatorConfig::builder(5)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RepetitionSimulator::new(&p, config);
    for model in models() {
        for seed in 0..3 {
            let packed = sim.simulate(&inputs, model, seed).unwrap();
            let mut rt = RoundtripChannel::new(5, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt).unwrap();
            assert_eq!(packed.transcript(), unpacked.transcript());
            assert_eq!(packed.outputs(), unpacked.outputs());
            assert_eq!(packed.stats(), unpacked.stats());
        }
    }
}

#[test]
fn rewind_scheme_matches_roundtrip() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RewindSimulator::new(&p, config);
    for model in models() {
        for seed in 0..2 {
            let packed = sim.simulate(&inputs, model, seed);
            let mut rt = RoundtripChannel::new(4, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt);
            match (packed, unpacked) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch over {model}"),
            }
        }
    }
}

#[test]
fn hierarchical_scheme_matches_roundtrip() {
    let p = InputSet::new(4);
    let inputs = [1, 6, 6, 3];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = HierarchicalSimulator::new(&p, config);
    for model in models() {
        for seed in 0..2 {
            let packed = sim.simulate(&inputs, model, seed);
            let mut rt = RoundtripChannel::new(4, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt);
            match (packed, unpacked) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch over {model}"),
            }
        }
    }
}

#[test]
fn owned_rounds_scheme_matches_roundtrip() {
    let p = RollCall::new(8);
    let inputs = [true, false, true, true, false, false, true, false];
    let config = SimulatorConfig::builder(8)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = OwnedRoundsSimulator::new(&p, config);
    for model in models() {
        for seed in 0..2 {
            let packed = sim.simulate(&inputs, model, seed);
            let mut rt = RoundtripChannel::new(8, model, seed);
            let unpacked = sim.simulate_over(&inputs, model, &mut rt);
            match (packed, unpacked) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch over {model}"),
            }
        }
    }
}

/// Transposition proof for the lane-sliced repetition engine: a 64-lane
/// batch must be bitwise equal, trial by trial, to the scalar path.
#[test]
fn repetition_batch_matches_per_trial() {
    let p = InputSet::new(5);
    let inputs = [2, 9, 0, 0, 4];
    let config = SimulatorConfig::builder(5)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RepetitionSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..9).map(|i| i * 1_000_003 + 17).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed).unwrap();
            let sliced = sliced.unwrap();
            assert_eq!(
                scalar.transcript(),
                sliced.transcript(),
                "transcript diverged over {model} seed {seed}"
            );
            assert_eq!(scalar.outputs(), sliced.outputs());
            assert_eq!(scalar.stats(), sliced.stats());
        }
    }
}

/// Transposition proof for the lane-sliced rewind engine, including the
/// `BudgetExhausted` error path (transcripts, stats, and errors must all
/// be bitwise equal to the scalar path, trial by trial).
#[test]
fn rewind_batch_matches_per_trial() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.1 })
        .build();
    let sim = RewindSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..9).map(|i| i * 6_700_417 + 3).collect();
    for model in models() {
        let batch = sim.simulate_batch(&inputs, model, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, sliced) in seeds.iter().zip(batch) {
            let scalar = sim.simulate(&inputs, model, seed);
            match (scalar, sliced) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.transcript(),
                        b.transcript(),
                        "transcript diverged over {model} seed {seed}"
                    );
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(a.err(), b.err(), "error mismatch over {model} seed {seed}"),
            }
        }
    }
}

/// A rewind batch under a starved budget must reproduce the scalar
/// path's `BudgetExhausted` errors exactly (rounds and committed count).
#[test]
fn rewind_batch_matches_per_trial_when_budget_starved() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let config = SimulatorConfig::builder(4)
        .model(NoiseModel::Correlated { epsilon: 0.2 })
        .budget_factor(1.0)
        .build();
    let sim = RewindSimulator::new(&p, config);
    let seeds: Vec<u64> = (0..16).collect();
    let model = NoiseModel::Correlated { epsilon: 0.2 };
    let batch = sim.simulate_batch(&inputs, model, &seeds);
    let mut exhausted = 0;
    for (&seed, sliced) in seeds.iter().zip(batch) {
        let scalar = sim.simulate(&inputs, model, seed);
        match (scalar, sliced) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.transcript(), b.transcript(), "seed {seed}");
                assert_eq!(a.stats(), b.stats());
            }
            (a, b) => {
                assert_eq!(a.err(), b.err(), "error mismatch seed {seed}");
                exhausted += 1;
            }
        }
    }
    assert!(exhausted > 0, "starved budget never exhausted: weak test");
}

#[test]
fn one_to_zero_scheme_matches_roundtrip() {
    let p = InputSet::new(5);
    let inputs = [2, 8, 8, 1, 0];
    let sim = OneToZeroSimulator::new(&p, 2, 32.0);
    let model = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    for seed in 0..4 {
        let packed = sim.simulate(&inputs, model, seed);
        let mut rt = RoundtripChannel::new(5, model, seed);
        let unpacked = sim.simulate_over(&inputs, model, &mut rt);
        match (packed, unpacked) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.transcript(), b.transcript());
                assert_eq!(a.outputs(), b.outputs());
                assert_eq!(a.stats(), b.stats());
            }
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "error mismatch seed {seed}"),
        }
    }
}
