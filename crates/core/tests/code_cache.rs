//! Bitwise equivalence of cached and uncached code construction: a
//! [`CodeCache`] must be a pure memoization, invisible to everything a
//! simulation observes.
//!
//! Both code-using schemes (rewind and hierarchical) run the same seeds
//! twice — once with a shared cache attached to the config, once without —
//! and every transcript, output vector, and stats block must agree
//! exactly. A second test pins the sharing itself: across repeated
//! simulations and both schemes, each distinct parameter tuple is built
//! exactly once.

use std::sync::Arc;

use beeps_channel::NoiseModel;
use beeps_core::{CodeCache, HierarchicalSimulator, RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;

fn models() -> Vec<NoiseModel> {
    vec![
        NoiseModel::Noiseless,
        NoiseModel::Correlated { epsilon: 0.1 },
        NoiseModel::OneSidedZeroToOne { epsilon: 0.2 },
        NoiseModel::Independent { epsilon: 0.05 },
    ]
}

#[test]
fn cached_and_uncached_simulations_agree() {
    let p = InputSet::new(4);
    let inputs = [1, 5, 5, 2];
    let cache = Arc::new(CodeCache::new());
    for model in models() {
        let plain = SimulatorConfig::builder(4).model(model).build();
        let cached = plain.clone().with_code_cache(Arc::clone(&cache));
        assert_eq!(plain, cached, "the cache must not affect config equality");

        let rewind_plain = RewindSimulator::new(&p, plain.clone());
        let rewind_cached = RewindSimulator::new(&p, cached.clone());
        let hier_plain = HierarchicalSimulator::new(&p, plain);
        let hier_cached = HierarchicalSimulator::new(&p, cached);
        for seed in 0..3 {
            let a = rewind_plain.simulate(&inputs, model, seed);
            let b = rewind_cached.simulate(&inputs, model, seed);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(
                    a.is_err(),
                    b.is_err(),
                    "rewind error mismatch over {model} seed {seed}"
                ),
            }
            let a = hier_plain.simulate(&inputs, model, seed);
            let b = hier_cached.simulate(&inputs, model, seed);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.transcript(), b.transcript());
                    assert_eq!(a.outputs(), b.outputs());
                    assert_eq!(a.stats(), b.stats());
                }
                (a, b) => assert_eq!(
                    a.is_err(),
                    b.is_err(),
                    "hierarchical error mismatch over {model} seed {seed}"
                ),
            }
        }
    }
    assert!(cache.hits() > 0, "cached runs must actually hit the cache");
}

#[test]
fn one_build_per_distinct_parameter_tuple() {
    let p = InputSet::new(4);
    let inputs = [2, 0, 7, 3];
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let cache = Arc::new(CodeCache::new());
    let config = SimulatorConfig::builder(4)
        .model(model)
        .code_cache(Arc::clone(&cache))
        .build();

    // The rewind and hierarchical schemes share one parameter tuple, so
    // across all these simulate calls exactly one table is built.
    let rewind = RewindSimulator::new(&p, config.clone());
    let hier = HierarchicalSimulator::new(&p, config);
    for seed in 0..4 {
        let _ = rewind.simulate(&inputs, model, seed);
        let _ = hier.simulate(&inputs, model, seed);
    }
    assert_eq!(cache.builds(), 1, "one distinct tuple, one build");
    assert_eq!(cache.hits(), 7, "every later simulate call shares it");
    assert_eq!(cache.len(), 1);

    // A different seed is a different tuple: a second slot, not a reuse.
    let other = SimulatorConfig::builder(4)
        .model(model)
        .code_seed(0xD15C)
        .code_cache(Arc::clone(&cache))
        .build();
    let rewind_other = RewindSimulator::new(&p, other);
    let _ = rewind_other.simulate(&inputs, model, 0);
    assert_eq!(cache.builds(), 2);
    assert_eq!(cache.len(), 2);
}
