//! Fixed-shape log₂ histograms.
//!
//! Buckets are powers of two, so the shape never depends on the data
//! (no re-bucketing, no quantile sketches with merge-order sensitivity):
//! value `0` lands in bucket 0 and value `v > 0` in bucket
//! `⌊log₂ v⌋ + 1`. Merging is element-wise addition, which commutes —
//! the property the deterministic-aggregation guarantee rests on.

/// Number of buckets: one for zero plus one per possible `⌊log₂ v⌋`.
pub(crate) const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// # Examples
///
/// ```
/// use beeps_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// h.observe(0);
/// h.observe(7);
/// h.observe(9);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 16);
/// assert_eq!(h.min(), Some(0));
/// assert_eq!(h.max(), Some(9));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `value`: 0 for 0, else `⌊log₂ v⌋ + 1`.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize + 1
        }
    }

    /// The exclusive upper bound of bucket `idx` (`1` for bucket 0,
    /// `2^idx` for the rest; `u64::MAX` for the final bucket).
    #[must_use]
    pub fn bucket_upper_bound(idx: usize) -> u64 {
        if idx >= 64 {
            u64::MAX
        } else {
            1u64 << idx
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The non-empty buckets as `(bucket_index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Forgets every observation in place, returning the histogram to
    /// the state of [`Histogram::new`] without reallocating — the
    /// scratch-reuse path of the trial runner resets between trials.
    pub fn reset(&mut self) {
        self.buckets = [0; BUCKETS];
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Adds every observation of `other` into `self` (element-wise; the
    /// operation is commutative and associative).
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_track_observations() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [5u64, 10, 15] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 30);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(15));
        assert!((h.mean().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 100, 7] {
            a.observe(v);
        }
        for v in [0u64, 64, 65] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.min(), Some(0));
        assert_eq!(ab.max(), Some(100));
    }

    #[test]
    fn reset_returns_to_fresh() {
        let mut h = Histogram::new();
        h.observe(5);
        h.observe(1000);
        h.reset();
        assert_eq!(h, Histogram::new());
        h.observe(3);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(3));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merging_empty_keeps_min_max() {
        let mut a = Histogram::new();
        a.observe(3);
        a.merge_from(&Histogram::new());
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(3));
    }
}
