//! A bounded, deterministic event log.
//!
//! Long rewind storms can produce millions of noteworthy moments; an
//! unbounded `Vec` of them is exactly the OOM the old unbounded
//! `TracingChannel` log risked. [`EventLog`] is a fixed-capacity ring
//! buffer: it always retains the **most recent** `capacity` events and
//! counts (but drops) the rest, so memory is bounded while totals stay
//! exact.

use std::collections::VecDeque;

/// One recorded event: a label, the round it happened at (in whatever
/// round-space the recorder uses), and a free-form value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What happened (e.g. `"channel.flip"`, `"sim.rewind.rewind_storm"`).
    pub label: String,
    /// Round index the event is anchored to.
    pub round: u64,
    /// Event payload (flip direction, rewind count, …).
    pub value: u64,
}

/// A ring buffer of [`Event`]s keeping the most recent `capacity`.
///
/// # Examples
///
/// ```
/// use beeps_metrics::EventLog;
///
/// let mut log = EventLog::with_capacity(2);
/// log.push("a", 0, 0);
/// log.push("b", 1, 0);
/// log.push("c", 2, 0);
/// assert_eq!(log.recorded(), 3);
/// assert_eq!(log.dropped(), 1);
/// let labels: Vec<&str> = log.iter().map(|e| e.label.as_str()).collect();
/// assert_eq!(labels, ["b", "c"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    buf: VecDeque<Event>,
    capacity: usize,
    recorded: u64,
}

/// Default ring capacity (events, not bytes); enough to see the tail of
/// a storm without letting a pathological run grow without bound.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// An empty log retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "event log needs a positive capacity");
        Self {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            recorded: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, label: impl Into<String>, round: u64, value: u64) {
        self.recorded += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(Event {
            label: label.into(),
            round,
            value,
        });
    }

    /// The retention capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by the ring bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Currently retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Forgets every event in place (retained and counted alike),
    /// returning the log to the state of [`EventLog::with_capacity`]
    /// with the same capacity, keeping the ring's allocation.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.recorded = 0;
    }

    /// Appends every retained event of `other` (in `other`'s order) and
    /// carries over its evicted-event count. Callers who need
    /// determinism must fix the merge order themselves (the trial runner
    /// merges in trial-index order).
    pub fn merge_from(&mut self, other: &EventLog) {
        // Events evicted inside `other` stay evicted; count them first
        // so `recorded` stays exact.
        self.recorded += other.dropped();
        for e in other.iter() {
            self.recorded += 1;
            if self.buf.len() == self.capacity {
                self.buf.pop_front();
            }
            self.buf.push_back(e.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..10u64 {
            log.push("tick", i, i * 2);
        }
        assert_eq!(log.recorded(), 10);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.len(), 3);
        let rounds: Vec<u64> = log.iter().map(|e| e.round).collect();
        assert_eq!(rounds, [7, 8, 9]);
    }

    #[test]
    fn merge_preserves_totals_and_order() {
        let mut a = EventLog::with_capacity(4);
        a.push("a", 0, 0);
        let mut b = EventLog::with_capacity(2);
        for i in 0..5u64 {
            b.push("b", i, 0);
        }
        a.merge_from(&b);
        assert_eq!(a.recorded(), 6);
        assert_eq!(a.dropped(), 3);
        let rounds: Vec<(String, u64)> = a.iter().map(|e| (e.label.clone(), e.round)).collect();
        assert_eq!(rounds, [("a".into(), 0), ("b".into(), 3), ("b".into(), 4)]);
    }

    #[test]
    fn reset_empties_but_keeps_capacity() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5u64 {
            log.push("t", i, 0);
        }
        log.reset();
        assert_eq!(log, EventLog::with_capacity(3));
        for i in 0..5u64 {
            log.push("t", i, 0);
        }
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = EventLog::with_capacity(0);
    }
}
