//! Deterministic metrics and event tracing for the simulation stack.
//!
//! The paper's claims are quantitative — round overhead, rewinds,
//! energy — so every layer of this repository (channel executor,
//! simulators, trial runner, CLI, experiment binaries) reports into one
//! instrumentation API instead of ad-hoc per-binary counters. The crate
//! is zero-dependency and split into two strictly separated sections:
//!
//! * **Deterministic section** — [`MetricsRegistry`] counters,
//!   log₂-bucketed [`Histogram`]s, and the bounded [`EventLog`]. These
//!   depend only on what the simulation computed, never on scheduling:
//!   merging per-trial registries in trial-index order (what
//!   `beeps_bench::TrialRunner::run_with_metrics` does) yields **bitwise
//!   identical** aggregates at any thread count.
//! * **Wall-clock section** — [`WallTiming`]s fed by [`Stopwatch`] /
//!   [`MetricsRegistry::time`]. These measure real elapsed time, are
//!   inherently non-deterministic, and are excluded from every
//!   reproducibility surface (experiment JSON logs, the default metrics
//!   rendering, byte-identity tests). They only appear in the explicitly
//!   marked wall section of [`MetricsRegistry::render_wall`] and in the
//!   Prometheus exposition.
//!
//! # Examples
//!
//! ```
//! use beeps_metrics::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.inc("sim.rewind.rewinds", 2);
//! m.observe("sim.rewind.rounds", 1800);
//! m.event("sim.rewind.rewind_storm", 1800, 2);
//!
//! let mut other = MetricsRegistry::new();
//! other.inc("sim.rewind.rewinds", 1);
//! m.merge_from(&other);
//! assert_eq!(m.counter("sim.rewind.rewinds"), 3);
//! // Counter sums commute, so merge order cannot change them; event
//! // order is fixed by the caller merging in trial-index order.
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod events;
pub mod histogram;
pub mod registry;
pub mod render;

pub use events::{Event, EventLog};
pub use histogram::Histogram;
pub use registry::{CounterHandle, MetricsRegistry, Stopwatch, WallTiming};
